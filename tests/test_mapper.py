"""Tests for the DP tree-covering technology mapper."""

import pytest

from repro.cover.cover import Cover
from repro.spp.pseudocube import Pseudocube, make_xor_factor
from repro.spp.spp_cover import SppCover
from repro.techmap.area import (
    area_of_bidecomposition,
    area_of_covers,
    area_of_spp_covers,
    map_network,
)
from repro.techmap.genlib import parse_genlib
from repro.techmap.library_data import default_library
from repro.techmap.mapper import MappingError, map_network_for_area
from repro.techmap.network import LogicNetwork


def test_single_gates_map_to_themselves():
    library = default_library()
    cases = [
        ("and", "and2"),
        ("or", "or2"),
        ("xor", "xor2"),
    ]
    for kind, gate_name in cases:
        net = LogicNetwork(["a", "b"])
        net.set_output("f", net.binary(kind, net.input_id("a"), net.input_id("b")))
        result = map_network_for_area(net, library)
        assert result.area == library[gate_name].area
        assert result.gate_histogram() == {gate_name: 1}


def test_nand_is_cheaper_than_and_plus_inv():
    library = default_library()
    net = LogicNetwork(["a", "b"])
    net.set_output(
        "f",
        net.negate(net.binary("and", net.input_id("a"), net.input_id("b"))),
    )
    result = map_network_for_area(net, library)
    assert result.gate_histogram() == {"nand2": 1}
    assert result.area == library["nand2"].area


def test_nand3_chain_recognized():
    library = default_library()
    net = LogicNetwork(["a", "b", "c"])
    inner = net.binary("and", net.input_id("a"), net.input_id("b"))
    net.set_output("f", net.negate(net.binary("and", inner, net.input_id("c"))))
    result = map_network_for_area(net, library)
    assert result.gate_histogram() == {"nand3": 1}


def test_xnor_recognized():
    library = default_library()
    net = LogicNetwork(["a", "b"])
    net.set_output(
        "f",
        net.negate(net.binary("xor", net.input_id("a"), net.input_id("b"))),
    )
    result = map_network_for_area(net, library)
    assert result.gate_histogram() == {"xnor2": 1}


def test_aoi21_recognized():
    library = default_library()
    net = LogicNetwork(["a", "b", "c"])
    inner = net.binary("and", net.input_id("a"), net.input_id("b"))
    net.set_output("f", net.negate(net.binary("or", inner, net.input_id("c"))))
    result = map_network_for_area(net, library)
    assert result.area == library["aoi21"].area


def test_multi_fanout_breaks_cones():
    # shared = a & b feeds two outputs: its gate is counted once.
    library = default_library()
    net = LogicNetwork(["a", "b", "c"])
    shared = net.binary("and", net.input_id("a"), net.input_id("b"))
    net.set_output("f", net.binary("or", shared, net.input_id("c")))
    net.set_output("g", net.binary("xor", shared, net.input_id("c")))
    result = map_network_for_area(net, library)
    histogram = result.gate_histogram()
    assert histogram["and2"] == 1
    assert result.area == (
        library["and2"].area + library["or2"].area + library["xor2"].area
    )


def test_constant_outputs_are_free():
    library = default_library()
    net = LogicNetwork(["a"])
    net.set_output("f", net.const(0))
    result = map_network_for_area(net, library)
    assert result.area == 0.0


def test_incomplete_library_raises():
    tiny = parse_genlib("GATE inv 1.0 O=!a;\n")
    net = LogicNetwork(["a", "b"])
    net.set_output("f", net.binary("and", net.input_id("a"), net.input_id("b")))
    with pytest.raises(MappingError):
        map_network_for_area(net, tiny)


def test_mapping_is_functionally_consistent():
    """Mapped gate functions, composed over the chosen cover, reproduce
    each cone's logic (spot check on a nontrivial network)."""
    library = default_library()
    net = LogicNetwork(["a", "b", "c", "d"])
    expr = net.binary(
        "or",
        net.binary("and", net.input_id("a"), net.negate(net.input_id("b"))),
        net.binary("xor", net.input_id("c"), net.input_id("d")),
    )
    net.set_output("f", expr)
    result = map_network_for_area(net, library)
    assert result.area > 0
    # Every chosen gate root lies in the network.
    for mapped in result.gates:
        assert 0 <= mapped.root < len(net.nodes)


def test_area_of_covers_and_spp():
    cover = Cover.from_strings(["11--", "--11"])
    names = ("x1", "x2", "x3", "x4")
    sop_area = area_of_covers([cover], names)
    pc = Pseudocube(4, xors=frozenset({make_xor_factor(0, 1, 1)}))
    spp_area = area_of_spp_covers([SppCover(4, [pc])], names)
    assert sop_area > 0
    assert spp_area == default_library()["xor2"].area


def test_area_of_bidecomposition_all_operators():
    names = ("x1", "x2", "x3", "x4")
    g_cover = SppCover(4, [Pseudocube(4, pos=0b0001)])
    h_cover = SppCover(4, [Pseudocube(4, pos=0b0010)])
    from repro.core.operators import OPERATORS

    for name in OPERATORS:
        area = area_of_bidecomposition([(g_cover, h_cover)], name, names)
        assert area > 0, name


def test_map_network_default_library():
    net = LogicNetwork(["a", "b"])
    net.set_output("f", net.binary("and", net.input_id("a"), net.input_id("b")))
    assert map_network(net).area == default_library()["and2"].area
