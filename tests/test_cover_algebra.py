"""Differential tests for the mask-native cover algebra.

Every ``mask_*`` primitive and every :class:`CoverAlgebra` operation is
pinned three ways: against the :class:`~repro.cover.cube.Cube` /
:class:`~repro.cover.cover.Cover` reference implementations, against a
BDD oracle where the operation has a semantic reading (containment,
intersection, sharp), and — for the minimizer entry points — against
the retained ``algebra=False`` object paths, which must produce
byte-identical covers.
"""

from __future__ import annotations

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.convert import truthtable_to_function
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable
from repro.cover.algebra import (
    CoverAlgebra,
    mask_consensus,
    mask_contains,
    mask_distance,
    mask_intersects,
    mask_sharp,
    mask_supercube,
)
from repro.cover.cover import Cover
from repro.cover.cube import Cube
from repro.spp.synthesis import minimize_spp_heuristic
from repro.twolevel.espresso import espresso_minimize
from repro.twolevel.quine_mccluskey import minimize_exact
from repro.utils.rng import make_rng

N_VARS = 5


def _random_cube(rng) -> Cube:
    pos = neg = 0
    for var in range(N_VARS):
        roll = rng.random()
        if roll < 0.35:
            pos |= 1 << var
        elif roll < 0.7:
            neg |= 1 << var
    return Cube(N_VARS, pos, neg)


def _random_cubes(seed: str, count: int) -> list[Cube]:
    rng = make_rng(seed)
    return [_random_cube(rng) for _ in range(count)]


def _cube_fn(mgr: BDD, cube: Cube):
    return cube.to_function(mgr)


@pytest.fixture
def mgr():
    return BDD([f"x{i + 1}" for i in range(N_VARS)])


# ---------------------------------------------------------------------------
# Mask primitives vs Cube reference vs BDD oracle
# ---------------------------------------------------------------------------


def test_mask_contains_matches_cube_and_bdd(mgr):
    for a in _random_cubes("algebra-contains-a", 25):
        for b in _random_cubes("algebra-contains-b", 25):
            expected = a.contains_cube(b)
            assert mask_contains(a.pos, a.neg, b.pos, b.neg) == expected
            assert (_cube_fn(mgr, b) <= _cube_fn(mgr, a)) == expected


def test_mask_intersects_matches_cube_and_bdd(mgr):
    for a in _random_cubes("algebra-inter-a", 25):
        for b in _random_cubes("algebra-inter-b", 25):
            expected = a.intersect(b) is not None
            assert mask_intersects(a.pos, a.neg, b.pos, b.neg) == expected
            bdd_overlap = not (_cube_fn(mgr, a) & _cube_fn(mgr, b)).is_false
            assert expected == bdd_overlap


def test_mask_distance_matches_cube(mgr):
    for a in _random_cubes("algebra-dist-a", 25):
        for b in _random_cubes("algebra-dist-b", 25):
            assert mask_distance(a.pos, a.neg, b.pos, b.neg) == a.distance(b)


def test_mask_supercube_matches_cube_and_bdd(mgr):
    for a in _random_cubes("algebra-super-a", 20):
        for b in _random_cubes("algebra-super-b", 20):
            pos, neg = mask_supercube(a.pos, a.neg, b.pos, b.neg)
            reference = a.supercube(b)
            assert (pos, neg) == (reference.pos, reference.neg)
            union = _cube_fn(mgr, a) | _cube_fn(mgr, b)
            assert union <= _cube_fn(mgr, Cube(N_VARS, pos, neg))


def test_mask_consensus_matches_cube(mgr):
    hits = 0
    for a in _random_cubes("algebra-cons-a", 30):
        for b in _random_cubes("algebra-cons-b", 30):
            result = mask_consensus(a.pos, a.neg, b.pos, b.neg)
            reference = a.consensus(b)
            if reference is None:
                assert result is None
            else:
                assert result == (reference.pos, reference.neg)
                hits += 1
    assert hits > 0, "no distance-1 pairs sampled; weak test"


def test_mask_sharp_covers_difference_exactly(mgr):
    """``a # b`` must equal ``a ∧ ¬b`` as a function (BDD oracle)."""
    for a in _random_cubes("algebra-sharp-a", 15):
        for b in _random_cubes("algebra-sharp-b", 15):
            pieces = mask_sharp(a.pos, a.neg, b.pos, b.neg)
            realized = mgr.false
            for pos, neg in pieces:
                realized = realized | _cube_fn(mgr, Cube(N_VARS, pos, neg))
            expected = _cube_fn(mgr, a) - _cube_fn(mgr, b)
            assert realized == expected


def test_mask_sharp_term_order_is_deterministic():
    # Positive literals of b first (ascending variable), then negative.
    pieces = mask_sharp(0, 0, 0b101, 0b010)
    assert pieces == [(0, 0b001), (0, 0b100), (0b010, 0)]


# ---------------------------------------------------------------------------
# CoverAlgebra vs Cover reference
# ---------------------------------------------------------------------------


def _paired(seed: str, count: int = 12) -> tuple[Cover, CoverAlgebra]:
    cover = Cover(N_VARS, _random_cubes(seed, count))
    return cover, CoverAlgebra.from_cover(cover)


def test_roundtrip_and_measures():
    cover, algebra = _paired("algebra-measures")
    assert algebra.to_cover().cubes == cover.cubes
    assert algebra.cube_count() == cover.cube_count()
    assert algebra.literal_count() == cover.literal_count()
    assert algebra.literal_counts() == [
        cube.literal_count for cube in cover.cubes
    ]


def test_from_masks_matches_from_cover():
    cover, algebra = _paired("algebra-from-masks")
    rebuilt = CoverAlgebra.from_masks(N_VARS, algebra.masks())
    assert rebuilt.pos == algebra.pos and rebuilt.neg == algebra.neg


def test_has_tautology():
    _, algebra = _paired("algebra-taut")
    assert not algebra.has_tautology() or any(
        pos == neg == 0 for pos, neg in algebra.masks()
    )
    algebra.append(0, 0)
    assert algebra.has_tautology()


def test_query_families_match_cube_reference():
    cover, algebra = _paired("algebra-queries")
    for probe in _random_cubes("algebra-probes", 20):
        expected_supersets = [
            i for i, c in enumerate(cover.cubes) if c.contains_cube(probe)
        ]
        assert algebra.supersets_of(probe.pos, probe.neg) == expected_supersets
        assert algebra.any_superset_of(probe.pos, probe.neg) == bool(
            expected_supersets
        )
        expected_subsets = [
            i for i, c in enumerate(cover.cubes) if probe.contains_cube(c)
        ]
        assert algebra.subsets_of(probe.pos, probe.neg) == expected_subsets
        expected_intersecting = [
            i
            for i, c in enumerate(cover.cubes)
            if c.intersect(probe) is not None
        ]
        assert (
            algebra.intersecting(probe.pos, probe.neg)
            == expected_intersecting
        )
        assert algebra.distances_to(probe.pos, probe.neg) == [
            c.distance(probe) for c in cover.cubes
        ]
        expected_consensus = [
            (r.pos, r.neg)
            for c in cover.cubes
            if (r := c.consensus(probe)) is not None
        ]
        assert (
            algebra.consensus_with(probe.pos, probe.neg) == expected_consensus
        )


def test_sharp_with_matches_bdd(mgr):
    cover, algebra = _paired("algebra-sharp-cover", 8)
    for probe in _random_cubes("algebra-sharp-probe", 8):
        sharped = algebra.sharp_with(probe.pos, probe.neg)
        realized = sharped.to_cover().to_function(mgr)
        expected = cover.to_function(mgr) - _cube_fn(mgr, probe)
        assert realized == expected


def test_supercube_contains_cover(mgr):
    cover, algebra = _paired("algebra-supercube", 9)
    pos, neg = algebra.supercube()
    assert cover.to_function(mgr) <= _cube_fn(mgr, Cube(N_VARS, pos, neg))
    for cube in cover.cubes:
        assert mask_contains(pos, neg, cube.pos, cube.neg)
    assert CoverAlgebra(N_VARS).supercube() is None


def test_single_cube_containment_matches_cover_reference():
    cover, algebra = _paired("algebra-scc", 18)
    reference = cover.single_cube_containment()
    result = algebra.single_cube_containment().to_cover()
    assert result.cubes == reference.cubes


def test_deduplicated_keeps_first_occurrences():
    _, algebra = _paired("algebra-dedup", 6)
    doubled = CoverAlgebra.from_masks(
        N_VARS, list(algebra.masks()) + list(algebra.masks())
    )
    deduped = doubled.deduplicated()
    assert deduped.pos == algebra.deduplicated().pos
    assert len(deduped) <= len(algebra)


# ---------------------------------------------------------------------------
# Minimizer entry points: algebra path vs object path, byte-identical
# ---------------------------------------------------------------------------


def _random_isfs(mgr: BDD, count: int = 8) -> list[ISF]:
    rng = make_rng("algebra-minimizers")
    out = []
    for _ in range(count):
        table = TruthTable.random(N_VARS, rng, density=0.4)
        out.append(
            ISF.completely_specified(truthtable_to_function(mgr, table))
        )
    return out


def test_espresso_algebra_path_identical(mgr):
    for isf in _random_isfs(mgr):
        fast = espresso_minimize(isf, algebra=True)
        reference = espresso_minimize(isf, algebra=False)
        assert fast.cubes == reference.cubes


def test_qm_algebra_path_identical(mgr):
    for isf in _random_isfs(mgr):
        minterms = sorted(isf.on.minterms())
        fast = minimize_exact(N_VARS, minterms, algebra=True)
        reference = minimize_exact(N_VARS, minterms, algebra=False)
        assert fast.cubes == reference.cubes


def test_spp_algebra_path_identical(mgr):
    for isf in _random_isfs(mgr):
        fast = minimize_spp_heuristic(isf, algebra=True)
        reference = minimize_spp_heuristic(isf, algebra=False)
        assert fast.pseudocubes == reference.pseudocubes
