"""Tests for the dense truth-table backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.truthtable import TruthTable
from repro.utils.rng import make_rng

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


def test_constants():
    assert TruthTable.zeros(3).is_false
    assert TruthTable.ones(3).is_true
    assert TruthTable.ones(3).count() == 8


def test_variable_msb_convention():
    x0 = TruthTable.variable(3, 0)
    assert [x0(m) for m in range(8)] == [False] * 4 + [True] * 4
    x2 = TruthTable.variable(3, 2)
    assert [x2(m) for m in range(8)] == [False, True] * 4


def test_variable_bounds():
    with pytest.raises(ValueError):
        TruthTable.variable(3, 3)
    with pytest.raises(ValueError):
        TruthTable.variable(3, -1)


def test_from_function_majority():
    maj = TruthTable.from_function(3, lambda a, b, c: a + b + c >= 2)
    assert maj.count() == 4
    assert maj(0b110) and maj(0b011) and not maj(0b100)


def test_from_minterms_roundtrip():
    table = TruthTable.from_minterms(4, [1, 5, 9])
    assert list(table.minterms()) == [1, 5, 9]
    assert table.count() == 3


@given(tt_bits, tt_bits)
@settings(max_examples=60, deadline=None)
def test_boolean_algebra(bits_a, bits_b):
    a = TruthTable(4, bits_a)
    b = TruthTable(4, bits_b)
    for m in range(16):
        assert (a & b)(m) == (a(m) and b(m))
        assert (a | b)(m) == (a(m) or b(m))
        assert (a ^ b)(m) == (a(m) != b(m))
        assert (a - b)(m) == (a(m) and not b(m))
        assert (~a)(m) == (not a(m))


@given(tt_bits, tt_bits)
@settings(max_examples=40, deadline=None)
def test_order_and_disjoint(bits_a, bits_b):
    a = TruthTable(4, bits_a)
    b = TruthTable(4, bits_b)
    assert (a <= b) == all(not a(m) or b(m) for m in range(16))
    assert a.disjoint(b) == all(not (a(m) and b(m)) for m in range(16))
    assert a.error_count(b) == sum(a(m) != b(m) for m in range(16))


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        _ = TruthTable.zeros(3) & TruthTable.zeros(4)
    with pytest.raises(TypeError):
        _ = TruthTable.zeros(3) & 7  # type: ignore[operator]


@given(tt_bits)
@settings(max_examples=40, deadline=None)
def test_cofactor_is_independent_of_variable(bits):
    table = TruthTable(4, bits)
    for index in range(4):
        for value in (0, 1):
            cofactor = table.cofactor(index, value)
            var = TruthTable.variable(4, index)
            # Independence: both halves agree.
            assert cofactor.cofactor(index, 0) == cofactor.cofactor(index, 1)
            # Agreement with original on the selected half.
            half = var if value else ~var
            assert (cofactor & half) == (table & half)


@given(tt_bits)
@settings(max_examples=30, deadline=None)
def test_shannon_expansion(bits):
    table = TruthTable(4, bits)
    for index in range(4):
        var = TruthTable.variable(4, index)
        rebuilt = (var & table.cofactor(index, 1)) | (
            ~var & table.cofactor(index, 0)
        )
        assert rebuilt == table


def test_random_density_is_reproducible():
    rng_a = make_rng(7)
    rng_b = make_rng(7)
    assert TruthTable.random(6, rng_a) == TruthTable.random(6, rng_b)


def test_repr_small_and_large():
    small = TruthTable(2, 0b1010)
    assert "0b" in repr(small)
    large = TruthTable(8, 7)
    assert "count=3" in repr(large)


def test_hash_consistency():
    a = TruthTable(3, 0b10110100)
    b = TruthTable(3, 0b10110100)
    assert a == b and hash(a) == hash(b)
    assert a != TruthTable(3, 0)
