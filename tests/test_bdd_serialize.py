"""Round-trip and canonicity tests for the BDD wire format."""

import json

import pytest

from repro.bdd.expr import parse_expression
from repro.bdd.manager import BDD
from repro.bdd.ops import transfer
from repro.bdd.serialize import (
    FORMAT,
    SerializationError,
    canonical_hash,
    dump,
    dump_many,
    dumps,
    function_fingerprint,
    load,
    load_many,
    loads,
)
from repro.boolfunc.isf import ISF
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager


def _semantically_equal(a, b) -> bool:
    """Compare two functions from different managers by truth table."""
    n = max(a.mgr.n_vars, b.mgr.n_vars)
    assert a.mgr.n_vars == b.mgr.n_vars == n
    return all(bool(a(m)) == bool(b(m)) for m in range(1 << n))


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


def test_roundtrip_into_fresh_manager(mgr4):
    f = parse_expression(mgr4, "x1 & x2 & x4 | x2 & x3 & x4")
    g = load(dump(f))
    assert g.mgr is not mgr4
    assert g.mgr.var_names == mgr4.var_names
    assert _semantically_equal(f, g)


def test_roundtrip_constants(mgr4):
    assert load(dump(mgr4.false)).is_false
    assert load(dump(mgr4.true)).is_true


def test_roundtrip_into_explicit_manager(mgr4):
    f = parse_expression(mgr4, "x1 ^ x3 | x2 & x4")
    target = fresh_manager(4)
    g = load(dump(f), target)
    assert g.mgr is target
    assert _semantically_equal(f, g)
    # Loading into the source manager is the identity on semantics.
    assert load(dump(f), mgr4) == f


def test_roundtrip_matches_transfer_into_wider_manager(mgr4):
    """Loading into a manager with extra variables agrees with transfer."""
    f = parse_expression(mgr4, "x1 & ~x3 | x2 & x4")
    wide = BDD(["x1", "x2", "x3", "x4", "x5"])
    assert load(dump(f), wide) == transfer(f, wide)


def test_roundtrip_random_functions():
    rng = make_rng("serialize-roundtrip")
    for n_vars in (1, 2, 3, 5):
        mgr = fresh_manager(n_vars)
        for _ in range(10):
            f = ISF.random(mgr, rng).on
            assert _semantically_equal(f, load(dump(f)))


def test_json_text_roundtrip(mgr4):
    f = parse_expression(mgr4, "x1 & x2 | ~x3 & x4")
    text = dumps(f)
    json.loads(text)  # valid JSON
    assert _semantically_equal(f, loads(text))


def test_dump_many_roundtrips_all_roots(mgr4):
    f = parse_expression(mgr4, "x1 & x2")
    g = parse_expression(mgr4, "x1 & x2 | x3")
    data = dump_many([("f", f), ("g", g)])
    roots = load_many(data)
    assert _semantically_equal(f, roots["f"])
    assert _semantically_equal(g, roots["g"])


def test_roundtrip_through_transfer_and_back(mgr4):
    """dump → load → transfer back to the source manager is the identity."""
    f = parse_expression(mgr4, "(x1 | x2) & (x3 ^ x4)")
    rebuilt = load(dump(f))
    assert transfer(rebuilt, mgr4) == f
    # And the other way: transfer first, dump from the copy.
    wide = BDD(["x1", "x2", "x3", "x4"])
    moved = transfer(f, wide)
    assert load(dump(moved), mgr4) == f


# ---------------------------------------------------------------------------
# Canonicity / stable hashing
# ---------------------------------------------------------------------------


def test_dump_is_independent_of_construction_history():
    """Equal functions from differently-grown managers dump identically."""
    mgr_a = fresh_manager(4)
    # Build lots of unrelated junk first so node ids diverge.
    junk = parse_expression(mgr_a, "x1 ^ x2 ^ x3 ^ x4")
    junk = junk | parse_expression(mgr_a, "x2 & ~x4")
    f_a = parse_expression(mgr_a, "x1 & x2 | x3 & x4")

    mgr_b = fresh_manager(4)
    f_b = parse_expression(mgr_b, "x3 & x4 | x1 & x2")  # different clause order

    assert dump(f_a) == dump(f_b)
    assert function_fingerprint(f_a) == function_fingerprint(f_b)


def test_fingerprint_distinguishes_functions_and_vars(mgr4):
    f = parse_expression(mgr4, "x1 & x2")
    g = parse_expression(mgr4, "x1 | x2")
    assert function_fingerprint(f) != function_fingerprint(g)
    # The declared variable slice is part of the identity.
    wide = BDD(["x1", "x2", "x3", "x4", "x5"])
    assert function_fingerprint(f) != function_fingerprint(transfer(f, wide))


def test_canonical_hash_is_order_insensitive_for_dicts():
    assert canonical_hash({"a": 1, "b": 2}) == canonical_hash({"b": 2, "a": 1})
    assert canonical_hash({"a": 1}) != canonical_hash({"a": 2})


def test_shared_subgraphs_are_dumped_once(mgr4):
    """A shared-DAG dump reuses nodes across roots instead of copying."""
    f = parse_expression(mgr4, "x2 & x3 | x2 & x4 | x3 & x4")
    g = f | parse_expression(mgr4, "x1")
    combined = dump_many([("f", f), ("g", g)])
    separate = len(dump(f)["nodes"]) + len(dump(g)["nodes"])
    assert len(combined["nodes"]) < separate
    # f's root must be an interior reference of g's DAG as well.
    roots = load_many(combined)
    assert _semantically_equal(roots["f"], f)
    assert _semantically_equal(roots["g"], g)


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


def test_load_rejects_foreign_payloads(mgr4):
    with pytest.raises(SerializationError, match="format"):
        load({"format": "something-else/9", "vars": [], "nodes": [], "roots": {}})
    with pytest.raises(SerializationError):
        load({"format": FORMAT})  # missing keys
    with pytest.raises(SerializationError, match="JSON"):
        loads("{not json")


def test_load_rejects_undeclared_variable(mgr4):
    f = parse_expression(mgr4, "x1 & x4")
    narrow = BDD(["x1", "x2"])
    # The dump carries the manager's whole variable slice, so the first
    # undeclared name (x3) is the one reported.
    with pytest.raises(SerializationError, match="does not declare"):
        load(dump(f), narrow)


def test_load_rejects_incompatible_order(mgr4):
    f = parse_expression(mgr4, "x1 & x2 | x3")
    reordered = BDD(["x4", "x3", "x2", "x1"])
    with pytest.raises(SerializationError, match="incompatible"):
        load(dump(f), reordered)


def test_load_rejects_corrupt_node_list(mgr4):
    data = dump(parse_expression(mgr4, "x1 & x2"))
    bad = dict(data, nodes=[[99, 0, 1]])  # level out of range
    with pytest.raises(SerializationError, match="out of range"):
        load(bad)
    bad = dict(data, nodes=[[0, 57, 1]])  # dangling child reference
    with pytest.raises(SerializationError):
        load(bad)
    # Negative refs must not silently resolve via negative indexing.
    bad = dict(data, nodes=[[0, -1, 1], [1, 0, 1]])
    with pytest.raises(SerializationError, match="out of range"):
        load(bad)
    bad = dict(data, roots={"f": -2})
    with pytest.raises(SerializationError, match="root ref"):
        load(bad)


def test_dump_many_rejects_mixed_managers(mgr4):
    other = fresh_manager(4)
    with pytest.raises(ValueError, match="share one manager"):
        dump_many([("a", mgr4.true), ("b", other.true)])
    with pytest.raises(ValueError, match="at least one"):
        dump_many([])
