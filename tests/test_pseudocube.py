"""Tests for 2-pseudoproducts (pseudocubes with 2-literal XOR factors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover.cube import Cube
from repro.spp.pseudocube import Pseudocube, XorFactor, make_xor_factor
from tests.conftest import fresh_manager


def pseudocube_strategy(n_vars=4):
    """Random valid pseudocubes: partition variables into roles."""

    @st.composite
    def build(draw):
        roles = draw(
            st.lists(
                st.sampled_from(["free", "pos", "neg", "pair"]),
                min_size=n_vars,
                max_size=n_vars,
            )
        )
        pos = neg = 0
        pair_pool = []
        for var, role in enumerate(roles):
            if role == "pos":
                pos |= 1 << var
            elif role == "neg":
                neg |= 1 << var
            elif role == "pair":
                pair_pool.append(var)
        xors = set()
        while len(pair_pool) >= 2:
            i = pair_pool.pop(0)
            j = pair_pool.pop(0)
            phase = draw(st.integers(min_value=0, max_value=1))
            xors.add(make_xor_factor(i, j, phase))
        return Pseudocube(n_vars, pos, neg, frozenset(xors))

    return build()


def minterm_set(pc: Pseudocube) -> set[int]:
    return {m for m in range(1 << pc.n_vars) if pc.contains_minterm(m)}


class TestXorFactor:
    def test_normalization(self):
        assert make_xor_factor(3, 1, 1) == XorFactor(1, 3, 1)
        assert make_xor_factor(1, 3, 2) == XorFactor(1, 3, 0)

    def test_same_variable_rejected(self):
        with pytest.raises(ValueError):
            make_xor_factor(2, 2, 1)

    def test_evaluate(self):
        factor = make_xor_factor(0, 1, 1)  # x1 ^ x2 (MSB positions)
        assert factor.evaluate(0b10_00, 4)
        assert factor.evaluate(0b01_00, 4)
        assert not factor.evaluate(0b11_00, 4)
        assert not factor.evaluate(0b00_00, 4)

    def test_to_function_matches_evaluate(self):
        mgr = fresh_manager(4)
        for phase in (0, 1):
            factor = make_xor_factor(1, 3, phase)
            fn = factor.to_function(mgr)
            for m in range(16):
                assert fn(m) == factor.evaluate(m, 4)


class TestValidity:
    def test_variable_reuse_across_xors_rejected(self):
        with pytest.raises(ValueError):
            Pseudocube(
                4,
                xors=frozenset(
                    {make_xor_factor(0, 1, 1), make_xor_factor(1, 2, 0)}
                ),
            )

    def test_variable_as_literal_and_xor_rejected(self):
        with pytest.raises(ValueError):
            Pseudocube(4, pos=0b0001, xors=frozenset({make_xor_factor(0, 1, 1)}))

    def test_contradictory_literals_rejected(self):
        with pytest.raises(ValueError):
            Pseudocube(4, pos=0b0001, neg=0b0001)


class TestSemantics:
    @given(pseudocube_strategy())
    @settings(max_examples=60, deadline=None)
    def test_minterm_count(self, pc):
        assert pc.minterm_count() == len(minterm_set(pc))

    @given(pseudocube_strategy())
    @settings(max_examples=60, deadline=None)
    def test_to_function_matches_contains(self, pc):
        mgr = fresh_manager(4)
        fn = pc.to_function(mgr)
        for m in range(16):
            assert fn(m) == pc.contains_minterm(m)

    def test_paper_example_pseudoproduct(self):
        # x1 (x3 ^ x4): the building block of Figure 2.
        pc = Pseudocube(4, pos=0b0001, xors=frozenset({make_xor_factor(2, 3, 1)}))
        assert pc.literal_count == 3
        assert pc.minterm_count() == 4
        assert minterm_set(pc) == {0b1001, 0b1010, 0b1101, 0b1110}

    def test_cube_roundtrip(self):
        cube = Cube.from_string("1-0-")
        pc = Pseudocube.from_cube(cube)
        assert pc.is_plain_cube
        assert pc.to_cube() == cube
        with_xor = Pseudocube(4, xors=frozenset({make_xor_factor(0, 1, 1)}))
        with pytest.raises(ValueError):
            with_xor.to_cube()


class TestMeasures:
    def test_literal_count_xor_is_two(self):
        pc = Pseudocube(
            4, pos=0b0001, xors=frozenset({make_xor_factor(1, 2, 0)})
        )
        assert pc.literal_count == 3
        assert pc.factor_count == 2
        assert pc.bound_mask == 0b0111

    def test_tautology(self):
        pc = Pseudocube.tautology(4)
        assert pc.literal_count == 0
        assert pc.minterm_count() == 16


class TestExpansions:
    @given(pseudocube_strategy())
    @settings(max_examples=50, deadline=None)
    def test_single_step_expansions_double_coverage(self, pc):
        base = minterm_set(pc)
        for expanded in pc.expansions():
            grown = minterm_set(expanded)
            assert base <= grown
            assert len(grown) == 2 * len(base)

    def test_drop_literal_and_xor(self):
        factor = make_xor_factor(2, 3, 1)
        pc = Pseudocube(4, pos=0b0001, xors=frozenset({factor}))
        no_literal = pc.drop_literal(0)
        assert no_literal.pos == 0 and no_literal.xors == {factor}
        no_xor = pc.drop_xor(factor)
        assert no_xor.pos == 0b0001 and not no_xor.xors

    def test_pair_literals_covers_both_patterns(self):
        pc = Pseudocube(4, pos=0b0001, neg=0b0010)  # x1 & ~x2
        paired = pc.pair_literals(0, 1)
        assert len(paired.xors) == 1
        (factor,) = paired.xors
        assert factor.phase == 1  # 1 ^ 0
        original = minterm_set(pc)
        mirrored = {m ^ 0b1100 for m in original}
        assert minterm_set(paired) == original | mirrored

    def test_pair_literals_requires_bound_vars(self):
        pc = Pseudocube(4, pos=0b0001)
        with pytest.raises(ValueError):
            pc.pair_literals(0, 1)

    def test_expression_rendering(self):
        names = ("x1", "x2", "x3", "x4")
        pc = Pseudocube(
            4, pos=0b0001, neg=0b0010, xors=frozenset({make_xor_factor(2, 3, 0)})
        )
        text = pc.to_expression(names)
        assert "x1" in text and "~x2" in text and "~(x3 ^ x4)" in text
        assert Pseudocube.tautology(4).to_expression(names) == "1"


class TestContainment:
    @given(pseudocube_strategy(), pseudocube_strategy())
    @settings(max_examples=60, deadline=None)
    def test_structural_containment_is_sound(self, a, b):
        # contains_pseudocube is a sound (no false positives) pre-filter.
        if a.contains_pseudocube(b):
            assert minterm_set(b) <= minterm_set(a)

    def test_containment_via_literals_fixing_xor(self):
        outer = Pseudocube(4, xors=frozenset({make_xor_factor(0, 1, 1)}))
        inner = Pseudocube(4, pos=0b0001, neg=0b0010)  # x1 ~x2: parity 1
        assert outer.contains_pseudocube(inner)
        wrong = Pseudocube(4, pos=0b0011)  # x1 x2: parity 0
        assert not outer.contains_pseudocube(wrong)
