"""Tests for the strategy-driven decomposition engine."""

import pytest

from repro.bdd.expr import parse_expression
from repro.bdd.manager import BDD
from repro.bdd.ops import transfer
from repro.benchgen.registry import load_benchmark
from repro.boolfunc.isf import ISF
from repro.core.operators import OPERATORS, TABLE_I_ORDER
from repro.core.quotient import InvalidDivisorError
from repro.engine import (
    APPROXIMATORS,
    MINIMIZERS,
    Decomposer,
    DecomposeResult,
    Divisor,
    StrategyRegistry,
    UnknownStrategyError,
    VerificationError,
    register_approximator,
    register_minimizer,
)
from tests.conftest import fresh_manager, isf_from_masks


def figure1_isf(mgr):
    return ISF.completely_specified(
        parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    )


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------


def test_builtin_strategy_names():
    assert {"expand-full", "expand-bounded", "random", "exact"} <= set(
        APPROXIMATORS.names()
    )
    assert {"spp", "espresso", "exact", "none"} <= set(MINIMIZERS.names())


def test_unknown_strategy_errors():
    with pytest.raises(UnknownStrategyError, match="no-such-strategy"):
        APPROXIMATORS.resolve("no-such-strategy")
    with pytest.raises(UnknownStrategyError, match="registered"):
        MINIMIZERS.resolve("no-such-minimizer")
    # Unknown-name errors are KeyErrors, like operator_by_name's.
    assert issubclass(UnknownStrategyError, KeyError)


def test_unknown_strategy_error_from_decomposer():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer()
    with pytest.raises(UnknownStrategyError):
        engine.decompose(f, "AND", approximator="bogus")
    with pytest.raises(UnknownStrategyError):
        engine.decompose(f, "AND", minimizer="bogus")


def test_parameterized_specs():
    bounded = APPROXIMATORS.resolve("expand-bounded:0.1")
    assert bounded.name == "expand-bounded:0.1"
    with pytest.raises(UnknownStrategyError, match="error budget"):
        APPROXIMATORS.resolve("expand-bounded")
    # Non-parameterized names reject a parameter.
    with pytest.raises(UnknownStrategyError, match="no parameter"):
        MINIMIZERS.resolve("spp:fast")
    # Resolution is memoized: same spec, same strategy object.
    assert APPROXIMATORS.resolve("random:0.3").func is APPROXIMATORS.resolve(
        "random:0.3"
    ).func


def test_register_decorator_and_replacement():
    registry = StrategyRegistry("test")

    @registry.register("mine")
    def mine(f, op):
        return f.on

    assert registry.resolve("mine").func is mine
    assert "mine" in registry.names()

    def other(f, op):
        return f.on

    registry.register("mine", other)  # replacement drops the stale resolution
    assert registry.resolve("mine").func is other

    with pytest.raises(ValueError, match="may not contain"):
        registry.register("bad:name", other)


def test_registered_approximator_usable_by_name():
    name = "test-upper-bound"

    @register_approximator(name, kind_pure=True)
    def upper(f, op):
        from repro.core.operators import ApproximationKind

        if op.approximation in (
            ApproximationKind.UNDER_F,
            ApproximationKind.UNDER_COMPLEMENT,
        ):
            return f.mgr.false
        return f.mgr.true

    try:
        mgr = fresh_manager(4)
        f = figure1_isf(mgr)
        result = Decomposer().decompose(f, "AND", approximator=name)
        assert result.verified
        assert result.approximator_name == name
        assert result.decomposition.g == mgr.true
    finally:
        APPROXIMATORS._entries.pop(name, None)
        APPROXIMATORS._resolved.pop(name, None)


def test_registered_minimizer_usable_by_name():
    name = "test-espresso-alias"

    @register_minimizer(name)
    def alias(isf):
        from repro.twolevel.espresso import espresso_minimize

        return espresso_minimize(isf)

    try:
        mgr = fresh_manager(4)
        f = figure1_isf(mgr)
        result = Decomposer().decompose(f, "AND", minimizer=name)
        assert result.verified
        assert result.minimizer_name == name
    finally:
        MINIMIZERS._entries.pop(name, None)
        MINIMIZERS._resolved.pop(name, None)


# ---------------------------------------------------------------------------
# Single-operator decomposition
# ---------------------------------------------------------------------------


def test_decompose_named_strategies_figure1():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    result = Decomposer().decompose(f, "AND")
    assert result.verified
    assert result.op_name == "AND"
    assert result.approximator_name == "expand-full"
    assert result.minimizer_name == "spp"
    assert result.literal_cost == result.decomposition.literal_cost()
    assert set(result.timings) == {
        "approximate",
        "quotient",
        "minimize",
        "verify",
        "total",
    }
    assert result.timings["total"] >= 0.0


def test_decompose_all_builtin_minimizers():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer()
    for minimizer in ("spp", "espresso", "exact", "none"):
        result = engine.decompose(f, "AND", minimizer=minimizer)
        assert result.verified, minimizer
    none_result = engine.decompose(f, "AND", minimizer="none")
    # The requested minimizer is authoritative for g and h alike: the
    # built-in expansion strategies hand over only the bare divisor.
    assert none_result.decomposition.g_cover is None
    assert none_result.decomposition.h_cover is None
    assert none_result.literal_cost == 0
    # And a non-default minimizer produces its own framework's cover for
    # both g and h (no 2-SPP pass-through from the expansion).
    from repro.cover.cover import Cover

    espresso_result = engine.decompose(f, "AND", minimizer="espresso")
    assert isinstance(espresso_result.decomposition.g_cover, Cover)
    assert isinstance(espresso_result.decomposition.h_cover, Cover)


def test_decompose_every_operator_with_expansion():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)"))
    engine = Decomposer()
    for op_name in TABLE_I_ORDER:
        result = engine.decompose(f, op_name)
        assert result.verified, op_name


def test_decompose_accepts_function_input_and_ready_divisor():
    mgr = fresh_manager(4)
    f_fn = parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    g = parse_expression(mgr, "x2 & x4")
    result = Decomposer().decompose(f_fn, "AND", approximator=g)
    assert result.verified
    assert result.decomposition.g == g
    assert result.literal_cost == 4  # paper Figure 1


def test_invalid_ready_divisor_raises():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1 | x2"))
    with pytest.raises(InvalidDivisorError):
        Decomposer().decompose(f, "AND", approximator=mgr.false)


def test_verification_error_is_assertion_error():
    assert issubclass(VerificationError, AssertionError)


def test_verify_false_skips_check_on_both_paths():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer(verify=False)
    single = engine.decompose(f, "AND")
    auto = engine.decompose(f, op="auto")
    # Neither path ran the care-set check: no verify time, verified=False.
    assert single.verified is False and single.timings["verify"] == 0.0
    assert auto.verified is False and auto.timings["verify"] == 0.0
    assert all(not c.verified and not c.reason for c in auto.candidates)
    # The decompositions themselves are still sound.
    assert single.decomposition.verify() and auto.decomposition.verify()


def test_malformed_numeric_parameter_errors():
    with pytest.raises(UnknownStrategyError, match="must be a number"):
        APPROXIMATORS.resolve("expand-bounded:5%")
    with pytest.raises(UnknownStrategyError, match="must be a number"):
        APPROXIMATORS.resolve("random:abc")


def test_decompose_suite_honors_configured_engine():
    from repro.harness.experiment import decompose_suite

    engine = Decomposer(approximator="random:0.1", minimizer="espresso")
    results = decompose_suite(["z4"], op="AND", engine=engine)
    assert all(r.approximator_name == "random:0.1" for r in results)
    assert all(r.minimizer_name == "espresso" for r in results)


# ---------------------------------------------------------------------------
# Operator auto-search
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bench_name", ["z4", "newtpla2", "radd"])
def test_auto_search_verified_on_paper_benchmarks(bench_name):
    instance = load_benchmark(bench_name)
    f = instance.outputs[0]
    result = Decomposer().decompose(f, op="auto")
    assert isinstance(result, DecomposeResult)
    assert result.verified
    assert result.op_name in OPERATORS
    assert result.decomposition.verify()
    # Every Table I operator was tried (the expansion adapter covers all
    # five approximation kinds), and the pick is cost-minimal.
    tried = [c.op_name for c in result.candidates]
    assert tried == list(TABLE_I_ORDER)
    eligible = [c for c in result.candidates if c.verified]
    assert result.literal_cost == min(c.literal_cost for c in eligible)


def test_auto_shares_divisors_within_operator_family():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer()
    engine.decompose(f, op="auto")
    # Ten operators, but only one divisor computation per approximation
    # kind: the second operator of each Table I family hits the memo.
    assert engine.stats["divisor_misses"] == 5
    assert engine.stats["divisor_hits"] == 5


def test_auto_with_ready_divisor_skips_incompatible_operators():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    g = parse_expression(mgr, "x2 & x4")  # a strict over-approximation of f
    result = Decomposer().decompose(f, op="auto", approximator=g)
    assert result.verified
    by_op = {c.op_name: c for c in result.candidates}
    # g violates the UNDER_F requirement of OR, so that candidate was
    # rejected at divisor validation, with the reason recorded.
    assert not by_op["OR"].verified
    assert by_op["OR"].reason
    assert by_op["AND"].verified


def test_auto_restricted_operator_pool():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer(operators=("XOR", "XNOR"))
    result = engine.decompose(f, op="auto")
    assert result.verified
    assert result.op_name in ("XOR", "XNOR")
    assert len(result.candidates) == 2


def test_result_to_dict_round_trips_to_json():
    import json

    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    result = Decomposer().decompose(f, op="auto", name="fig1")
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["name"] == "fig1"
    assert payload["op"] == result.op_name
    assert payload["verified"] is True
    assert len(payload["candidates"]) == len(TABLE_I_ORDER)
    assert payload["timings"]["total"] >= 0.0


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


def test_decompose_many_shares_one_manager_across_benchmarks():
    # Outputs of two Table III suite benchmarks live in distinct managers;
    # the batch runs them over one shared manager.
    instances = [load_benchmark("newtpla2"), load_benchmark("br1")]
    assert instances[0].mgr is not instances[1].mgr
    labeled = [
        (f"{instance.name}/o{i}", f)
        for instance in instances
        for i, f in enumerate(instance.outputs[:2])
    ]
    engine = Decomposer()
    results = engine.decompose_many(labeled, op="AND")
    assert len(results) == 4
    shared = results[0].decomposition.f.mgr
    assert all(r.decomposition.f.mgr is shared for r in results)
    assert all(r.verified for r in results)
    # The shared manager declares the union of the variables.
    assert set(shared.var_names) >= set(instances[0].mgr.var_names)
    assert set(shared.var_names) >= set(instances[1].mgr.var_names)


def test_decompose_many_matches_per_call_results():
    instance = load_benchmark("z4")
    engine = Decomposer()
    batch = engine.decompose_many(
        [(f"o{i}", f) for i, f in enumerate(instance.outputs)], op="auto"
    )
    for result, f in zip(batch, instance.outputs):
        solo = Decomposer().decompose(f, op="auto")
        assert result.op_name == solo.op_name
        assert result.literal_cost == solo.literal_cost
        assert result.error_rate == solo.error_rate
        assert result.decomposition.g == solo.decomposition.g
        assert result.decomposition.h == solo.decomposition.h


def test_decompose_many_memoizes_repeated_functions():
    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    engine = Decomposer()
    engine.decompose_many([("a", f), ("b", f)], op="AND")
    assert engine.stats["divisor_hits"] >= 1
    assert engine.stats["cover_hits"] >= 1
    engine.clear_caches()
    assert not engine._divisor_cache and not engine._cover_cache


def test_decompose_many_merges_interleaved_compatible_orders():
    # [x1, x3] embeds in [x1, x2, x3]: the merged order must respect both.
    a = BDD(["x1", "x3"])
    b = BDD(["x1", "x2", "x3"])
    f_a = a.var("x1") & a.var("x3")
    f_b = parse_expression(b, "x1 | x2 & x3")
    results = Decomposer().decompose_many([f_a, f_b], op="AND")
    shared = results[0].decomposition.f.mgr
    assert list(shared.var_names) == ["x1", "x2", "x3"]
    assert all(r.verified for r in results)


def test_decompose_many_rejects_conflicting_orders():
    a = BDD(["p", "q"])
    b = BDD(["q", "p"])
    with pytest.raises(ValueError, match="incompatible"):
        Decomposer().decompose_many(
            [a.var("p") & a.var("q"), b.var("q") | b.var("p")], op="AND"
        )


def test_decompose_many_reports_original_n_vars():
    # br1 has 12 inputs; batched next to a wider benchmark it must still
    # report 12, not the shared manager's variable count.
    instances = [load_benchmark("newtpla2"), load_benchmark("br1")]
    labeled = [
        (instance.name, instance.outputs[0]) for instance in instances
    ]
    results = Decomposer().decompose_many(labeled, op="AND")
    by_name = {r.name: r.to_dict() for r in results}
    assert by_name["newtpla2"]["n_vars"] == 10
    assert by_name["br1"]["n_vars"] == 12


def test_decompose_many_accepts_bare_functions_and_explicit_manager():
    mgr = fresh_manager(3)
    shared = fresh_manager(3)
    fns = [parse_expression(mgr, "x1 & x2"), parse_expression(mgr, "x2 | x3")]
    results = Decomposer().decompose_many(fns, op="AND", mgr=shared)
    assert [r.name for r in results] == ["f0", "f1"]
    assert all(r.decomposition.f.mgr is shared for r in results)
    assert all(r.verified for r in results)


# ---------------------------------------------------------------------------
# Manager transfer primitive
# ---------------------------------------------------------------------------


def test_transfer_preserves_semantics():
    source = fresh_manager(3)
    target = fresh_manager(5)  # superset of variables
    f = parse_expression(source, "x1 & x2 | ~x3")
    moved = transfer(f, target)
    assert moved.mgr is target
    for m in range(1 << 3):
        # Pad the minterm: x4, x5 are unused by the moved function.
        for pad in range(1 << 2):
            assert moved((m << 2) | pad) == f(m)


def test_transfer_rejects_missing_variable():
    source = fresh_manager(4)
    target = BDD(["x1", "x2"])
    f = parse_expression(source, "x3 & x4")
    with pytest.raises(ValueError, match="does not declare"):
        transfer(f, target)


def test_transfer_rejects_incompatible_order():
    source = BDD(["a", "b"])
    target = BDD(["b", "a"])
    f = source.var("a") & source.var("b")
    with pytest.raises(ValueError, match="incompatible"):
        transfer(f, target)


def test_transfer_same_manager_is_identity():
    mgr = fresh_manager(2)
    f = mgr.var("x1")
    assert transfer(f, mgr) is f


# ---------------------------------------------------------------------------
# Divisor passthrough and wrapper compatibility
# ---------------------------------------------------------------------------


def test_divisor_cover_passthrough_skips_reminimization():
    from repro.spp.synthesis import minimize_spp

    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    g = parse_expression(mgr, "x2 & x4")
    g_cover = minimize_spp(ISF.completely_specified(g))
    divisor = Divisor(g=g, g_cover=g_cover, name="precomputed")
    result = Decomposer().decompose(f, "AND", approximator=divisor)
    assert result.decomposition.g_cover is g_cover
    assert result.approximator_name == "precomputed"
    assert result.verified


def test_bidecompose_wrapper_still_works():
    from repro.core.bidecomposition import BiDecomposition, bidecompose

    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    g = parse_expression(mgr, "x2 & x4")
    dec = bidecompose(f, "AND", g)
    assert isinstance(dec, BiDecomposition)
    assert dec.verify()
    assert dec.literal_cost() == 4


def test_verify_checks_g_cover_round_trip():
    from repro.spp.pseudocube import Pseudocube
    from repro.spp.spp_cover import SppCover

    mgr = fresh_manager(4)
    f = figure1_isf(mgr)
    g = parse_expression(mgr, "x2 & x4")
    result = Decomposer().decompose(f, "AND", approximator=g)
    dec = result.decomposition
    assert dec.verify()
    # A g_cover realizing a different function than g must be caught even
    # if the rebuilt function happens to match f on the care set.
    dec.g_cover = SppCover(4, [Pseudocube.tautology(4)])
    dec.h_cover = None
    dec.h = ISF(f.on, mgr.false)
    assert dec.reconstruct() == f.on  # care-set equality alone would pass
    assert not dec.verify()
