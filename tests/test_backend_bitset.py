"""Bitset backend: protocol conformance, BDD-oracle properties, identity.

Three layers of guarantees:

* **protocol** — :class:`BitsetBDD`/:class:`BitsetFunction` satisfy the
  :mod:`repro.backend.protocol` ABCs and the full Function surface;
* **semantics** — every operation agrees with the BDD backend on random
  functions (negation, connectives, ordering, cofactors, quantifiers,
  composition, satcount, support, evaluation, quotients);
* **identity** — serialization is byte-identical across backends
  (canonical hashes, dumps, isop cube sequences), which is what makes
  cache keys and wire payloads backend-independent.
"""

import pytest

from repro.backend import (
    MAX_BITSET_VARS,
    BitsetBDD,
    BitsetFunction,
    BooleanFunction,
    BooleanManager,
    backend_of,
    choose_backend,
    from_truthtable,
    support_size,
    to_truthtable,
)
from repro.bdd import serialize
from repro.bdd.manager import BDD, Function
from repro.bdd.ops import isop, isop_cubes, transfer
from repro.boolfunc.convert import function_to_truthtable, truthtable_to_function
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable
from repro.core.flexibility import semantic_full_quotient
from repro.core.operators import TABLE_I_ORDER, ApproximationKind, operator_by_name
from repro.core.quotient import full_quotient
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager


def bitset_manager(n_vars: int) -> BitsetBDD:
    return BitsetBDD([f"x{i + 1}" for i in range(n_vars)])


def random_pair(rng, n):
    """Equal random functions in both backends plus their raw bits."""
    bits = rng.randrange(1 << (1 << n))
    bdd_mgr = fresh_manager(n)
    bit_mgr = bitset_manager(n)
    f_bdd = truthtable_to_function(bdd_mgr, TruthTable(n, bits))
    f_bit = from_truthtable(bit_mgr, TruthTable(n, bits))
    return f_bdd, f_bit, bits


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


def test_protocol_registration():
    assert issubclass(BDD, BooleanManager)
    assert issubclass(BitsetBDD, BooleanManager)
    assert issubclass(Function, BooleanFunction)
    assert issubclass(BitsetFunction, BooleanFunction)
    mgr = bitset_manager(3)
    assert isinstance(mgr, BooleanManager)
    assert isinstance(mgr.true, BooleanFunction)
    assert backend_of(mgr) == "bitset"
    assert backend_of(mgr.false) == "bitset"
    assert backend_of(fresh_manager(2)) == "bdd"


def test_backend_of_rejects_foreign_objects():
    with pytest.raises(TypeError):
        backend_of(object())


def test_choose_backend_policy():
    mgr = fresh_manager(6)
    f = ISF.completely_specified(mgr.var("x1") & mgr.var("x2"))
    assert choose_backend(f, "auto") == "bitset"
    assert choose_backend(f, "bdd") == "bdd"
    assert choose_backend(f, "bitset") == "bitset"
    assert choose_backend(f, "auto", support_threshold=1) == "bdd"
    assert choose_backend(f, "auto", max_vars=5) == "bdd"
    with pytest.raises(ValueError):
        choose_backend(f, "dense")
    wide = BDD([f"y{i}" for i in range(MAX_BITSET_VARS + 1)])
    g = ISF.completely_specified(wide.var("y0"))
    assert choose_backend(g, "auto") == "bdd"
    with pytest.raises(ValueError):
        choose_backend(g, "bitset")


def test_support_size_counts_union_of_on_and_dc():
    mgr = bitset_manager(5)
    f = ISF(mgr.var("x1") & mgr.var("x2"), mgr.var("x4") - (mgr.var("x1") & mgr.var("x2")))
    assert support_size(f) == 3


# ---------------------------------------------------------------------------
# Semantics vs the BDD oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_operations_match_bdd_backend(seed):
    rng = make_rng(("bitset-ops", seed))
    n = 2 + seed % 4
    f_bdd, f_bit, _ = random_pair(rng, n)
    g_bdd = truthtable_to_function(f_bdd.mgr, TruthTable(n, rng.randrange(1 << (1 << n))))
    g_bit = from_truthtable(f_bit.mgr, function_to_truthtable(g_bdd))

    def same(a: Function, b: BitsetFunction):
        assert function_to_truthtable(a).bits == to_truthtable(b).bits

    same(~f_bdd, ~f_bit)
    same(f_bdd & g_bdd, f_bit & g_bit)
    same(f_bdd | g_bdd, f_bit | g_bit)
    same(f_bdd ^ g_bdd, f_bit ^ g_bit)
    same(f_bdd - g_bdd, f_bit - g_bit)
    same(f_bdd.implies(g_bdd), f_bit.implies(g_bit))
    same(f_bdd.equiv(g_bdd), f_bit.equiv(g_bit))
    same(f_bdd.ite(g_bdd, ~g_bdd), f_bit.ite(g_bit, ~g_bit))
    assert (f_bdd <= g_bdd) == (f_bit <= g_bit)
    assert (f_bdd >= g_bdd) == (f_bit >= g_bit)
    assert (f_bdd < g_bdd) == (f_bit < g_bit)
    assert f_bdd.disjoint(g_bdd) == f_bit.disjoint(g_bit)
    assert f_bdd.satcount() == f_bit.satcount()
    assert list(f_bdd.minterms()) == list(f_bit.minterms())
    assert f_bdd.support() == f_bit.support()
    assert f_bdd.size() == f_bit.size()
    assert f_bdd.is_false == f_bit.is_false
    assert f_bdd.is_true == f_bit.is_true
    for m in range(1 << n):
        assert f_bdd(m) == f_bit(m)
    name = f_bdd.mgr.var_names[rng.randrange(n)]
    same(f_bdd.cofactor(name, 1), f_bit.cofactor(name, 1))
    same(f_bdd.cofactor(name, 0), f_bit.cofactor(name, 0))
    same(f_bdd.restrict({name: 1}), f_bit.restrict({name: 1}))
    same(f_bdd.exists([name]), f_bit.exists([name]))
    same(f_bdd.forall([name]), f_bit.forall([name]))
    same(f_bdd.compose(name, g_bdd), f_bit.compose(name, g_bit))


def test_equality_and_hash_are_value_based():
    mgr = bitset_manager(3)
    a = mgr.var("x1") & mgr.var("x2")
    b = mgr.var("x2") & mgr.var("x1")
    assert a == b and hash(a) == hash(b)
    other = bitset_manager(3)
    assert a != (other.var("x1") & other.var("x2"))  # different manager
    assert a != ~a


def test_manager_surface_parity():
    mgr = bitset_manager(4)
    assert mgr.n_vars == 4
    assert mgr.var_names == ("x1", "x2", "x3", "x4")
    assert mgr.level_of("x3") == 2
    assert mgr.var_at(0) == mgr.var("x1")
    assert mgr.false.is_false and mgr.true.is_true
    cube = mgr.cube({"x1": 1, "x3": 0})
    assert cube.satcount() == 4
    assert mgr.minterm(5).satcount() == 1
    stats = mgr.stats()
    assert stats["backend"] == "bitset" and "tables" in stats
    assert mgr.gc()["swept"] == 0
    with pytest.raises(ValueError):
        mgr.add_var("x1")


def test_mixing_managers_raises():
    a, b = bitset_manager(2), bitset_manager(2)
    with pytest.raises(ValueError):
        a.true & b.true


def test_add_var_realigns_live_handles():
    mgr = bitset_manager(2)
    f = mgr.var("x1") & mgr.var("x2")
    assert f.satcount() == 1
    mgr.add_var("x3")
    assert f.satcount() == 2  # duplicated along the new deepest axis
    assert f.support() == ("x1", "x2")
    oracle = fresh_manager(3)
    expected = oracle.var("x1") & oracle.var("x2")
    assert function_to_truthtable(expected).bits == to_truthtable(f).bits


def test_bitset_var_cap():
    with pytest.raises(ValueError):
        BitsetBDD([f"x{i}" for i in range(MAX_BITSET_VARS + 1)])


# ---------------------------------------------------------------------------
# Quotients (the paper's core algebra) on the bitset backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("op_name", TABLE_I_ORDER)
def test_full_quotient_round_trip_matches_bdd(op_name):
    rng = make_rng(("bitset-quotient", op_name))
    n = 4
    op = operator_by_name(op_name)
    for _ in range(3):
        on = rng.randrange(1 << (1 << n))
        dc = rng.randrange(1 << (1 << n)) & ~on
        bdd_mgr, bit_mgr = fresh_manager(n), bitset_manager(n)
        f_bdd = ISF(
            truthtable_to_function(bdd_mgr, TruthTable(n, on)),
            truthtable_to_function(bdd_mgr, TruthTable(n, dc)),
        )
        f_bit = ISF(
            from_truthtable(bit_mgr, TruthTable(n, on)),
            from_truthtable(bit_mgr, TruthTable(n, dc)),
        )
        divisors = {
            ApproximationKind.OVER_F: (f_bdd.upper, f_bit.upper),
            ApproximationKind.UNDER_F: (f_bdd.on, f_bit.on),
            ApproximationKind.OVER_COMPLEMENT: (~f_bdd.on, ~f_bit.on),
            ApproximationKind.UNDER_COMPLEMENT: (f_bdd.off, f_bit.off),
            ApproximationKind.ANY: (f_bdd.on, f_bit.on),
        }
        g_bdd, g_bit = divisors[op.approximation]
        h_bdd = full_quotient(f_bdd, g_bdd, op)
        h_bit = full_quotient(f_bit, g_bit, op)
        assert function_to_truthtable(h_bdd.on).bits == to_truthtable(h_bit.on).bits
        assert function_to_truthtable(h_bdd.dc).bits == to_truthtable(h_bit.dc).bits
        # The semantic (Table-II-free) derivation agrees on the backend too.
        semantic = semantic_full_quotient(f_bit, g_bit, op)
        assert semantic == h_bit


# ---------------------------------------------------------------------------
# Serialization identity (cache keys, wire payloads)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_dump_and_fingerprint_identical_across_backends(seed):
    rng = make_rng(("bitset-serialize", seed))
    n = 1 + seed
    f_bdd, f_bit, bits = random_pair(rng, n)
    assert serialize.dump(f_bdd) == serialize.dump(f_bit)
    assert serialize.function_fingerprint(f_bdd) == serialize.function_fingerprint(
        f_bit
    )
    # Round trips in all four direction pairs.
    assert to_truthtable(serialize.load(serialize.dump(f_bdd), bitset_manager(n))).bits == bits
    reloaded = serialize.load(serialize.dump(f_bit), fresh_manager(n))
    assert function_to_truthtable(reloaded).bits == bits


def test_shared_dag_dump_identity():
    rng = make_rng("bitset-dag")
    n = 4
    bdd_mgr, bit_mgr = fresh_manager(n), bitset_manager(n)
    pairs = []
    for label in ("a", "b", "c"):
        bits = rng.randrange(1 << (1 << n))
        pairs.append(
            (
                label,
                truthtable_to_function(bdd_mgr, TruthTable(n, bits)),
                from_truthtable(bit_mgr, TruthTable(n, bits)),
            )
        )
    dump_bdd = serialize.dump_many([(l, f) for l, f, _ in pairs])
    dump_bit = serialize.dump_many([(l, f) for l, _, f in pairs])
    assert dump_bdd == dump_bit


def test_transfer_cross_backend_round_trip():
    rng = make_rng("bitset-transfer")
    n = 5
    f_bdd, f_bit, bits = random_pair(rng, n)
    moved = transfer(f_bdd, f_bit.mgr)
    assert moved == f_bit
    back = transfer(f_bit, f_bdd.mgr)
    assert back == f_bdd
    # Into a wider bitset manager (extra deepest variable).
    wider = BitsetBDD([f"x{i + 1}" for i in range(n)] + ["extra"])
    widened = transfer(f_bdd, wider)
    assert widened.support() == f_bdd.support()
    assert widened.satcount() == 2 * f_bdd.satcount()
    with pytest.raises(ValueError):
        transfer(f_bit, BitsetBDD(["z1"]))


@pytest.mark.parametrize("seed", range(4))
def test_isop_identical_cube_sequences(seed):
    rng = make_rng(("bitset-isop", seed))
    n = 3 + seed
    on = rng.randrange(1 << (1 << n))
    dc = rng.randrange(1 << (1 << n)) & ~on
    bdd_mgr, bit_mgr = fresh_manager(n), bitset_manager(n)
    lower_bdd = truthtable_to_function(bdd_mgr, TruthTable(n, on))
    upper_bdd = truthtable_to_function(bdd_mgr, TruthTable(n, on | dc))
    lower_bit = from_truthtable(bit_mgr, TruthTable(n, on))
    upper_bit = from_truthtable(bit_mgr, TruthTable(n, on | dc))
    cubes_bdd, realized_bdd = isop(lower_bdd, upper_bdd)
    cubes_bit, realized_bit = isop(lower_bit, upper_bit)
    assert cubes_bdd == cubes_bit
    assert serialize.dump(realized_bdd) == serialize.dump(realized_bit)
    # Lazy streams replay the eager order on both backends.
    assert list(isop_cubes(lower_bdd, upper_bdd)) == cubes_bdd
    assert list(isop_cubes(lower_bit, upper_bit)) == cubes_bit
