"""Tests for Karnaugh rendering and the regenerated paper figures."""

import pytest

from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.harness.figures import render_figure1, render_figure2, render_karnaugh
from tests.conftest import fresh_manager


def test_karnaugh_layout():
    mgr = fresh_manager(4)
    f = ISF.from_sets(mgr, on_minterms=[0b0111], dc_minterms=[0b0000])
    text = render_karnaugh(f, "test")
    lines = text.splitlines()
    assert lines[0] == "test"
    assert "00  01  11  10" in lines[1]
    # Row 00 column 00 is the dc minterm.
    row00 = lines[2]
    assert row00.strip().startswith("00")
    assert "-" in row00
    # Minterm 0111 = row (x1x2) 01, column (x3x4) 11.
    row01 = lines[3]
    cells = row01.split()[1:]
    assert cells[2] == "1"  # third Gray column is 11


def test_karnaugh_requires_four_variables():
    mgr = fresh_manager(3)
    with pytest.raises(ValueError):
        render_karnaugh(ISF.completely_specified(mgr.false))


def test_karnaugh_accepts_plain_function():
    mgr = fresh_manager(4)
    text = render_karnaugh(mgr.true)
    assert text.count("1") >= 16


class TestFigure1:
    def test_exact_paper_artifacts(self):
        data = render_figure1()
        assert data.f_text == "x1 & x2 & x4 | x2 & x3 & x4"
        assert data.g_text == "x2 & x4"
        assert set(data.h_text.split(" | ")) == {"x1", "x3"}
        # f has 3 on-set minterms; g adds exactly one.
        assert data.f.on.satcount() == 3
        assert (data.g - data.f.on).satcount() == 1

    def test_quotient_flexibility(self):
        data = render_figure1()
        assert data.h.dc.satcount() == 12  # g_off
        assert sorted(data.h.off.minterms()) == [5]

    def test_rendering_contains_three_maps(self):
        text = render_figure1().rendering
        assert text.count("(a)") == 1
        assert text.count("(b)") == 1
        assert text.count("(c)") == 1
        assert "6 literals" in text
        assert "2 literals" in text


class TestFigure2:
    def test_exact_paper_artifacts(self):
        data = render_figure2()
        assert "x3 ^ x4" in data.g_text
        assert set(data.h_text.split(" | ")) == {"x1", "x2"}
        # The 2-SPP of f has 6 literals; the SOP needs 12.
        assert "6 literals" in data.rendering

    def test_expansion_introduces_two_errors(self):
        data = render_figure2()
        flipped = data.g - data.f.on
        assert sorted(flipped.minterms()) == [0b0001, 0b0010]

    def test_sop_baseline_is_twelve_literals(self):
        from repro.twolevel.quine_mccluskey import minimize_exact

        mgr = fresh_manager(4)
        f = parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
        sop = minimize_exact(4, list(f.minterms()))
        assert sop.cube_count() == 4
        assert sop.literal_count() == 12
