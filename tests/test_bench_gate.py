"""The CI perf regression gate, exercised on synthetic reports.

``benchmarks/check_regression.py`` must fail a build on a >25% geomean
regression (calibration-normalized), pass an equal-or-faster build, not
punish a uniformly slower machine, and flag canonical-hash drift.  Also
regression-tests the committed baselines: suite-function hashes in the
new backend-era reports must match the committed PR-3 report, proving
the wire format survived the multi-backend refactor byte for byte.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCH_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = load_gate()


def make_report(walls: dict, calibration: float = 0.05, hashes=None) -> dict:
    return {
        "format": "repro-bench-bdd/1",
        "calibration_s": calibration,
        "workloads": {name: {"wall_s": wall} for name, wall in walls.items()},
        "hashes": hashes or {},
    }


def write(tmp_path: Path, name: str, report: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path


def run_gate(tmp_path, current, baseline, *extra) -> int:
    return gate.main(
        [
            str(write(tmp_path, "current.json", current)),
            "--baseline",
            str(write(tmp_path, "baseline.json", baseline)),
            *extra,
        ]
    )


def test_gate_passes_on_equal_reports(tmp_path):
    report = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    assert run_gate(tmp_path, report, report) == 0


def test_gate_fails_on_large_regression(tmp_path):
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    slower = make_report({"kernel:a": 0.15, "suite:b": 0.75})  # 33% slower
    assert run_gate(tmp_path, slower, baseline) == 1


def test_gate_tolerates_small_regression(tmp_path):
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    slightly = make_report({"kernel:a": 0.11, "suite:b": 0.55})  # 10% slower
    assert run_gate(tmp_path, slightly, baseline) == 0


def test_gate_normalizes_by_calibration(tmp_path):
    """A uniformly 2x slower machine is not a regression."""
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5}, calibration=0.05)
    slow_machine = make_report(
        {"kernel:a": 0.2, "suite:b": 1.0}, calibration=0.10
    )
    assert run_gate(tmp_path, slow_machine, baseline) == 0
    # ...and a fast machine cannot mask a real regression.
    fast_but_regressed = make_report(
        {"kernel:a": 0.09, "suite:b": 0.45}, calibration=0.025
    )
    assert run_gate(tmp_path, fast_but_regressed, baseline) == 1


def test_gate_fails_on_hash_drift_with_check_hashes(tmp_path):
    baseline = make_report({"suite:b": 0.5}, hashes={"b": ["aa"]})
    current = make_report({"suite:b": 0.5}, hashes={"b": ["bb"]})
    assert run_gate(tmp_path, current, baseline, "--check-hashes") == 1
    assert run_gate(tmp_path, current, baseline) == 0  # opt-in only


def test_gate_fails_without_common_workloads(tmp_path):
    baseline = make_report({"kernel:a": 0.1})
    current = make_report({"kernel:z": 0.1})
    assert run_gate(tmp_path, current, baseline) == 1


def test_gate_custom_threshold(tmp_path):
    baseline = make_report({"kernel:a": 0.1})
    slower = make_report({"kernel:a": 0.12})
    assert run_gate(tmp_path, slower, baseline, "--max-regression", "0.1") == 1
    assert run_gate(tmp_path, slower, baseline, "--max-regression", "0.3") == 0


# ---------------------------------------------------------------------------
# Committed-baseline regression: wire stability across the backend era
# ---------------------------------------------------------------------------


def committed(name: str) -> dict:
    return json.loads((BENCH_DIR / "output" / name).read_text())


def test_committed_reports_exist_and_are_consistent():
    pr3 = committed("BENCH_BDD_post_pr3.json")
    pr4 = committed("BENCH_BDD_backends_pr4.json")
    ci = committed("BENCH_BDD_ci_baseline.json")
    assert ci["quick"] and ci["calibration_s"] > 0
    # Every suite function hash PR-3 recorded must be reproduced
    # byte-identically by the backend-era report.
    common = set(pr3["hashes"]) & set(pr4["hashes"])
    assert common, "no common suite rows between PR-3 and PR-4 reports"
    for name in common:
        assert pr4["hashes"][name] == pr3["hashes"][name], name
    comparison = pr4["backend_comparison"]
    assert comparison["geomean_speedup_bitset_small_support"] >= 5.0
    assert comparison["max_auto_vs_best"] <= 1.10
    for row in comparison["rows"].values():
        assert row["bitset_s"] > 0 and row["bdd_s"] > 0


def test_committed_ci_baseline_passes_its_own_gate(tmp_path):
    """The gate must accept the baseline against itself (sanity)."""
    assert (
        gate.main(
            [
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--baseline",
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--check-hashes",
            ]
        )
        == 0
    )


def test_suite_function_hashes_reproducible_on_bitset_backend():
    """Rebuild a committed suite benchmark's functions through the bitset
    backend and check their fingerprints against the committed PR-3
    baseline — the strongest wire-stability statement available."""
    from repro.backend import BitsetBDD
    from repro.bdd.ops import transfer
    from repro.bdd.serialize import function_fingerprint
    from repro.benchgen.registry import load_benchmark

    pr3 = committed("BENCH_BDD_post_pr3.json")
    instance = load_benchmark("newtpla2")
    shadow = BitsetBDD(instance.mgr.var_names)
    fingerprints = [
        function_fingerprint(transfer(isf.on, shadow))
        for isf in instance.outputs
    ]
    assert fingerprints == pr3["hashes"]["newtpla2"]


def make_multiout_report(rows: dict, calibration: float = 0.05) -> dict:
    """Synthetic bench_multiout report; rows map name -> record fields."""
    return {
        "format": "repro-bench-multiout/1",
        "calibration_s": calibration,
        "workloads": {
            f"netsyn:{name}": dict(record) for name, record in rows.items()
        },
    }


def netsyn_row(wall=0.1, shared=100.0, isolated=150.0, verified=True) -> dict:
    return {
        "wall_s": wall,
        "shared_area": shared,
        "isolated_area": isolated,
        "verified": verified,
    }


def run_gate_with_netsyn(tmp_path, current, baseline, ns_current, ns_baseline):
    return gate.main(
        [
            str(write(tmp_path, "current.json", current)),
            "--baseline",
            str(write(tmp_path, "baseline.json", baseline)),
            "--netsyn",
            str(write(tmp_path, "ns_current.json", ns_current)),
            "--netsyn-baseline",
            str(write(tmp_path, "ns_baseline.json", ns_baseline)),
        ]
    )


def test_gate_merges_netsyn_rows_into_geomean(tmp_path):
    report = make_report({"suite:b": 0.5})
    ns = make_multiout_report({"z4": netsyn_row()})
    assert run_gate_with_netsyn(tmp_path, report, report, ns, ns) == 0


def test_gate_fails_on_netsyn_slowdown(tmp_path):
    report = make_report({"suite:b": 0.5})
    fast = make_multiout_report({"z4": netsyn_row(wall=0.1)})
    slow = make_multiout_report({"z4": netsyn_row(wall=10.0)})
    assert run_gate_with_netsyn(tmp_path, report, report, slow, fast) == 1


def test_gate_fails_when_sharing_loses(tmp_path):
    report = make_report({"suite:b": 0.5})
    good = make_multiout_report({"z4": netsyn_row()})
    bad = make_multiout_report(
        {"z4": netsyn_row(shared=200.0, isolated=150.0)}
    )
    assert run_gate_with_netsyn(tmp_path, report, report, bad, good) == 1


def test_gate_fails_on_netsyn_functional_mismatch(tmp_path):
    report = make_report({"suite:b": 0.5})
    good = make_multiout_report({"z4": netsyn_row()})
    bad = make_multiout_report({"z4": netsyn_row(verified=False)})
    assert run_gate_with_netsyn(tmp_path, report, report, bad, good) == 1


def test_netsyn_invariants_reports_offending_rows():
    ok = make_multiout_report({"a": netsyn_row()})
    assert gate.netsyn_invariants(ok) == []
    bad = make_multiout_report(
        {
            "a": netsyn_row(shared=5.0, isolated=1.0),
            "b": netsyn_row(verified=False),
        }
    )
    failures = gate.netsyn_invariants(bad)
    assert len(failures) == 2


def test_gate_requires_paired_netsyn_arguments(tmp_path):
    report = make_report({"suite:b": 0.5})
    with pytest.raises(SystemExit):
        gate.main(
            [
                str(write(tmp_path, "c.json", report)),
                "--baseline",
                str(write(tmp_path, "b.json", report)),
                "--netsyn",
                str(write(tmp_path, "n.json", report)),
            ]
        )


def test_committed_multiout_reports_exist_and_hold_invariants():
    full = committed("BENCH_MULTIOUT_pr5.json")
    ci = committed("BENCH_MULTIOUT_ci_baseline.json")
    assert ci["quick"] and not full["quick"]
    for report in (full, ci):
        assert gate.netsyn_invariants(report) == []
        for record in report["workloads"].values():
            assert record["verified"] is True
            assert record["shared_area"] <= record["isolated_area"]
    # The PR acceptance bar: strictly lower on at least a third of the
    # suite (the committed run is strictly lower on every row).
    rows = list(full["workloads"].values())
    strictly = sum(1 for r in rows if r["shared_area"] < r["isolated_area"])
    assert strictly * 3 >= len(rows)
    assert all("pool_hit_rate" in r for r in rows)


def test_committed_multiout_baseline_passes_combined_gate():
    assert (
        gate.main(
            [
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--baseline",
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--netsyn",
                str(BENCH_DIR / "output" / "BENCH_MULTIOUT_ci_baseline.json"),
                "--netsyn-baseline",
                str(BENCH_DIR / "output" / "BENCH_MULTIOUT_ci_baseline.json"),
            ]
        )
        == 0
    )


def test_gate_fails_when_main_pair_has_no_overlap_despite_netsyn(tmp_path):
    # Netsyn rows joining the geomean must not mask a stale BDD baseline.
    current = make_report({"suite:new": 0.5})
    baseline = make_report({"suite:old": 0.5})
    ns = make_multiout_report({"z4": netsyn_row()})
    assert run_gate_with_netsyn(tmp_path, current, baseline, ns, ns) == 1


def test_gate_fails_when_netsyn_pair_has_no_overlap(tmp_path):
    report = make_report({"suite:b": 0.5})
    ns_current = make_multiout_report({"z4": netsyn_row()})
    ns_baseline = make_multiout_report({"adr4": netsyn_row()})
    assert (
        run_gate_with_netsyn(tmp_path, report, report, ns_current, ns_baseline)
        == 1
    )


def test_multiout_sampled_check_skips_dont_cares():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_multiout", BENCH_DIR / "bench_multiout.py"
    )
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    from types import SimpleNamespace

    from repro.bdd.manager import BDD
    from repro.boolfunc.isf import ISF
    from repro.techmap.network import LogicNetwork

    mgr = BDD(["x1", "x2"])
    # Interval [x1 & x2, x1]: the constant-completion network below
    # outputs 1 on the dc minterm x1 & ~x2 — correct, not a mismatch.
    isf = ISF(mgr.var("x1") & mgr.var("x2"), mgr.var("x1") & ~mgr.var("x2"))
    network = LogicNetwork(["x1", "x2"])
    network.set_output("o0", network.input_id("x1"))
    instance = SimpleNamespace(mgr=mgr, outputs=[isf], name="dc-probe")
    assert bench._sampled_check(instance, network)
    # A genuine care-set violation still fails.
    wrong = LogicNetwork(["x1", "x2"])
    wrong.set_output("o0", wrong.const(0))
    assert not bench._sampled_check(instance, wrong)
