"""The CI perf regression gate, exercised on synthetic reports.

``benchmarks/check_regression.py`` must fail a build on a >25% geomean
regression (calibration-normalized), pass an equal-or-faster build, not
punish a uniformly slower machine, and flag canonical-hash drift.  Also
regression-tests the committed baselines: suite-function hashes in the
new backend-era reports must match the committed PR-3 report, proving
the wire format survived the multi-backend refactor byte for byte.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCH_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = load_gate()


def make_report(walls: dict, calibration: float = 0.05, hashes=None) -> dict:
    return {
        "format": "repro-bench-bdd/1",
        "calibration_s": calibration,
        "workloads": {name: {"wall_s": wall} for name, wall in walls.items()},
        "hashes": hashes or {},
    }


def write(tmp_path: Path, name: str, report: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path


def run_gate(tmp_path, current, baseline, *extra) -> int:
    return gate.main(
        [
            str(write(tmp_path, "current.json", current)),
            "--baseline",
            str(write(tmp_path, "baseline.json", baseline)),
            *extra,
        ]
    )


def test_gate_passes_on_equal_reports(tmp_path):
    report = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    assert run_gate(tmp_path, report, report) == 0


def test_gate_fails_on_large_regression(tmp_path):
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    slower = make_report({"kernel:a": 0.15, "suite:b": 0.75})  # 33% slower
    assert run_gate(tmp_path, slower, baseline) == 1


def test_gate_tolerates_small_regression(tmp_path):
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5})
    slightly = make_report({"kernel:a": 0.11, "suite:b": 0.55})  # 10% slower
    assert run_gate(tmp_path, slightly, baseline) == 0


def test_gate_normalizes_by_calibration(tmp_path):
    """A uniformly 2x slower machine is not a regression."""
    baseline = make_report({"kernel:a": 0.1, "suite:b": 0.5}, calibration=0.05)
    slow_machine = make_report(
        {"kernel:a": 0.2, "suite:b": 1.0}, calibration=0.10
    )
    assert run_gate(tmp_path, slow_machine, baseline) == 0
    # ...and a fast machine cannot mask a real regression.
    fast_but_regressed = make_report(
        {"kernel:a": 0.09, "suite:b": 0.45}, calibration=0.025
    )
    assert run_gate(tmp_path, fast_but_regressed, baseline) == 1


def test_gate_fails_on_hash_drift_with_check_hashes(tmp_path):
    baseline = make_report({"suite:b": 0.5}, hashes={"b": ["aa"]})
    current = make_report({"suite:b": 0.5}, hashes={"b": ["bb"]})
    assert run_gate(tmp_path, current, baseline, "--check-hashes") == 1
    assert run_gate(tmp_path, current, baseline) == 0  # opt-in only


def test_gate_fails_without_common_workloads(tmp_path):
    baseline = make_report({"kernel:a": 0.1})
    current = make_report({"kernel:z": 0.1})
    assert run_gate(tmp_path, current, baseline) == 1


def test_gate_custom_threshold(tmp_path):
    baseline = make_report({"kernel:a": 0.1})
    slower = make_report({"kernel:a": 0.12})
    assert run_gate(tmp_path, slower, baseline, "--max-regression", "0.1") == 1
    assert run_gate(tmp_path, slower, baseline, "--max-regression", "0.3") == 0


# ---------------------------------------------------------------------------
# Committed-baseline regression: wire stability across the backend era
# ---------------------------------------------------------------------------


def committed(name: str) -> dict:
    return json.loads((BENCH_DIR / "output" / name).read_text())


def test_committed_reports_exist_and_are_consistent():
    pr3 = committed("BENCH_BDD_post_pr3.json")
    pr4 = committed("BENCH_BDD_backends_pr4.json")
    ci = committed("BENCH_BDD_ci_baseline.json")
    assert ci["quick"] and ci["calibration_s"] > 0
    # Every suite function hash PR-3 recorded must be reproduced
    # byte-identically by the backend-era report.
    common = set(pr3["hashes"]) & set(pr4["hashes"])
    assert common, "no common suite rows between PR-3 and PR-4 reports"
    for name in common:
        assert pr4["hashes"][name] == pr3["hashes"][name], name
    comparison = pr4["backend_comparison"]
    assert comparison["geomean_speedup_bitset_small_support"] >= 5.0
    assert comparison["max_auto_vs_best"] <= 1.10
    for row in comparison["rows"].values():
        assert row["bitset_s"] > 0 and row["bdd_s"] > 0


def test_committed_ci_baseline_passes_its_own_gate(tmp_path):
    """The gate must accept the baseline against itself (sanity)."""
    assert (
        gate.main(
            [
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--baseline",
                str(BENCH_DIR / "output" / "BENCH_BDD_ci_baseline.json"),
                "--check-hashes",
            ]
        )
        == 0
    )


def test_suite_function_hashes_reproducible_on_bitset_backend():
    """Rebuild a committed suite benchmark's functions through the bitset
    backend and check their fingerprints against the committed PR-3
    baseline — the strongest wire-stability statement available."""
    from repro.backend import BitsetBDD
    from repro.bdd.ops import transfer
    from repro.bdd.serialize import function_fingerprint
    from repro.benchgen.registry import load_benchmark

    pr3 = committed("BENCH_BDD_post_pr3.json")
    instance = load_benchmark("newtpla2")
    shadow = BitsetBDD(instance.mgr.var_names)
    fingerprints = [
        function_fingerprint(transfer(isf.on, shadow))
        for isf in instance.outputs
    ]
    assert fingerprints == pr3["hashes"]["newtpla2"]
