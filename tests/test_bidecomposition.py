"""Tests for the end-to-end bi-decomposition driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.generic import approximation_for_operator
from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import BiDecomposition, apply_operator, bidecompose
from repro.core.operators import OPERATORS
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)
op_names = st.sampled_from(sorted(OPERATORS))


@given(tt_bits, tt_bits, op_names)
@settings(max_examples=40, deadline=None)
def test_apply_operator_matches_truth_table(bits_g, bits_h, op_name):
    mgr = fresh_manager(4)
    from repro.boolfunc.convert import truthtable_to_function
    from repro.boolfunc.truthtable import TruthTable

    g = truthtable_to_function(mgr, TruthTable(4, bits_g))
    h = truthtable_to_function(mgr, TruthTable(4, bits_h))
    op = OPERATORS[op_name]
    combined = apply_operator(op, g, h)
    for m in range(16):
        assert combined(m) == op(g(m), h(m))


@given(tt_bits, op_names, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_bidecompose_all_operators(on_bits, op_name, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    op = OPERATORS[op_name]
    rng = make_rng(seed)

    def approximator(isf, operator):
        return approximation_for_operator(isf, operator, rate=0.3, rng=rng)

    dec = bidecompose(f, op, approximator)
    assert dec.verify()
    assert dec.op is op
    # The minimized covers define a completely specified realization.
    rebuilt = dec.reconstruct()
    assert (rebuilt & f.care) == (f.on & f.care)


def test_bidecompose_accepts_ready_divisor():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(
        parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    )
    g = parse_expression(mgr, "x2 & x4")
    dec = bidecompose(f, "AND", g)
    assert isinstance(dec, BiDecomposition)
    assert dec.verify()
    assert dec.g == g
    # Paper Figure 1: total 4 literals (2 for g, 2 for h).
    assert dec.literal_cost() == 4


def test_error_metrics():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(
        parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    )
    g = parse_expression(mgr, "x2 & x4")
    dec = bidecompose(f, "AND", g)
    assert dec.error_set.satcount() == 1
    assert dec.error_rate() == pytest.approx(1 / 16)


def test_bidecompose_invalid_divisor_raises():
    from repro.core.quotient import InvalidDivisorError

    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1 | x2"))
    with pytest.raises(InvalidDivisorError):
        bidecompose(f, "AND", mgr.false)


def test_h_completion_prefers_cover():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)"))
    g = parse_expression(mgr, "x3 ^ x4")
    dec = bidecompose(f, "AND", g)
    completion = dec.h_completion()
    # The completion must be a completion of the full quotient.
    assert dec.h.is_completion(completion)


def test_verify_catches_bad_covers():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1 & x2"))
    g = parse_expression(mgr, "x1")
    dec = bidecompose(f, "AND", g)
    # Sabotage the h cover.
    from repro.spp.pseudocube import Pseudocube
    from repro.spp.spp_cover import SppCover

    dec.h_cover = SppCover(4, [Pseudocube.tautology(4)])
    assert not dec.verify()


def test_xor_decomposition_of_parity_is_free():
    # f = x1 ^ x2 ^ x3, g = x1 ^ x2 (a 0<->1 approximation): h must be x3.
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1 ^ x2 ^ x3"))
    g = parse_expression(mgr, "x1 ^ x2")
    dec = bidecompose(f, "XOR", g)
    assert dec.verify()
    assert dec.h.on == mgr.var("x3")
