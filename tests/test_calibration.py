"""The ``auto`` dispatch boundary is derived from committed evidence.

``DEFAULT_BITSET_SUPPORT`` is no longer a hard-coded constant: it is
computed from the embedded PR-4 backend-calibration rows
(:mod:`repro.backend.calibration`), and the committed
``BACKEND_CALIBRATION_pr8.json`` artifact must stay in sync with the
module so a reviewer can audit the boundary without re-running the
bench.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backend.calibration import (
    CALIBRATION_ROWS,
    boundary_row,
    calibration_payload,
    support_boundary,
)
from repro.backend.protocol import (
    DEFAULT_BITSET_MAX_VARS,
    DEFAULT_BITSET_SUPPORT,
    choose_backend,
)
from repro.bdd.manager import BDD
from repro.boolfunc.isf import ISF

ARTIFACT = (
    Path(__file__).parent.parent
    / "benchmarks"
    / "output"
    / "BACKEND_CALIBRATION_pr8.json"
)


def test_boundary_is_sixteen_via_ex7():
    assert support_boundary() == 16
    assert DEFAULT_BITSET_SUPPORT == support_boundary()
    row = boundary_row()
    assert row["name"] == "ex7"
    assert row["max_support"] == 16
    assert row["speedup_bitset"] > 1.0


def test_boundary_requires_a_winning_row():
    losing = [
        {"name": "slow", "max_support": 4, "speedup_bitset": 0.5},
    ]
    with pytest.raises(ValueError):
        support_boundary(losing)


def test_committed_artifact_matches_module():
    payload = calibration_payload()
    committed = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert committed == json.loads(json.dumps(payload))
    assert committed["support_boundary"] == DEFAULT_BITSET_SUPPORT
    assert committed["boundary_row"]["name"] == "ex7"
    assert len(committed["rows"]) == len(CALIBRATION_ROWS)


def _isf_with_support(n_vars: int, support: int) -> ISF:
    mgr = BDD([f"v{i}" for i in range(n_vars)])
    f = mgr.true
    for i in range(support):
        f = f & mgr.var(f"v{i}")
    return ISF.completely_specified(f)


def test_auto_routes_boundary_support_to_bitset():
    # An ex7-class request: 16-var support in a densely feasible space.
    isf = _isf_with_support(DEFAULT_BITSET_MAX_VARS, DEFAULT_BITSET_SUPPORT)
    assert choose_backend(isf, "auto") == "bitset"


def test_auto_routes_past_boundary_to_bdd():
    isf = _isf_with_support(
        DEFAULT_BITSET_MAX_VARS, DEFAULT_BITSET_SUPPORT + 1
    )
    assert choose_backend(isf, "auto") == "bdd"


def test_auto_respects_declared_space_bound():
    # Small support in an infeasibly wide declaration still goes to BDD.
    isf = _isf_with_support(DEFAULT_BITSET_MAX_VARS + 1, 4)
    assert choose_backend(isf, "auto") == "bdd"
