"""Engine backend dispatch: auto routing, batches, cache sharing, gates.

The contract under test: the backend is a pure execution detail — for
any request, serial/parallel/cached runs under ``bdd``, ``bitset``, and
``auto`` produce identical covers, metrics, wire payloads, and cache
keys; ``auto`` routes per request by support; results always come back
in the caller's manager.
"""

import json

import pytest

from repro.backend import BitsetBDD, backend_of
from repro.bdd.manager import BDD
from repro.boolfunc.convert import truthtable_to_function
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable
from repro.engine import Decomposer, Divisor, ResultCache
from repro.engine import wire
from repro.engine.cache import as_result_cache
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks


def random_isf(seed: int, n_vars: int, mgr=None) -> ISF:
    rng = make_rng(("engine-backend", seed, n_vars))
    mgr = mgr if mgr is not None else fresh_manager(n_vars)
    space = 1 << (1 << n_vars)
    on = rng.randrange(space)
    dc = rng.randrange(space) & rng.randrange(space)
    return isf_from_masks(mgr, on, dc)


def identity(result) -> dict:
    payload = wire.result_to_payload(result)
    payload.pop("timings")
    payload.pop("bdd_stats")
    return payload


def test_auto_dispatch_routes_by_support():
    engine = Decomposer(bitset_support=3)
    small_mgr = fresh_manager(3)
    small = ISF.completely_specified(small_mgr.var("x1") & small_mgr.var("x2"))
    engine.decompose(small, "AND")
    assert engine.stats["backend_bitset"] == 1
    wide = random_isf(1, 5)
    engine.decompose(wide, "AND")
    assert engine.stats["backend_bdd"] == 1


def test_explicit_backend_param_on_request_overrides_engine_default():
    engine = Decomposer(backend="bdd")
    f = random_isf(2, 4)
    engine.decompose(f, "AND")
    assert engine.stats["backend_bitset"] == 0
    engine.decompose(f, "AND", backend="bitset")
    assert engine.stats["backend_bitset"] == 1


def test_results_reassembled_into_callers_manager():
    f = random_isf(3, 4)
    result = Decomposer(backend="bitset").decompose(f, "AND")
    assert result.decomposition.g.mgr is f.mgr
    assert result.decomposition.h.mgr is f.mgr
    assert result.decomposition.f is f
    assert result.verified


def test_bitset_native_input_runs_without_conversion():
    mgr = BitsetBDD([f"x{i + 1}" for i in range(4)])
    f = ISF.completely_specified(mgr.var("x1") ^ mgr.var("x3"))
    result = Decomposer().decompose(f, "XOR")
    assert result.verified
    assert backend_of(result.decomposition.g.mgr) == "bitset"


def test_all_backends_identical_serial(tmp_path):
    batch = [(f"f{i}", random_isf(10 + i, 4)) for i in range(4)]
    outputs = {}
    for backend in ("bdd", "bitset", "auto"):
        engine = Decomposer(backend=backend)
        results = engine.decompose_many(
            [(name, isf) for name, isf in batch], "auto"
        )
        outputs[backend] = [identity(r) for r in results]
    assert outputs["bdd"] == outputs["bitset"] == outputs["auto"]


def test_parallel_jobs_respect_backend_and_match_serial():
    batch = [(f"f{i}", random_isf(20 + i, 4)) for i in range(4)]
    serial = Decomposer(backend="bitset").decompose_many(batch, "AND")
    parallel = Decomposer(backend="bitset").decompose_many(batch, "AND", jobs=2)
    assert [identity(r) for r in serial] == [identity(r) for r in parallel]


def test_cache_keys_and_entries_shared_across_backends(tmp_path):
    batch = [(f"f{i}", random_isf(30 + i, 4)) for i in range(3)]
    cache_dir = tmp_path / "cache"

    warm = Decomposer(backend="bdd")
    warm_results = warm.decompose_many(batch, "AND", cache=str(cache_dir))
    stored = len(as_result_cache(str(cache_dir)))
    assert stored == len(batch)

    cold = Decomposer(backend="bitset")
    cached_results = cold.decompose_many(batch, "AND", cache=str(cache_dir))
    assert cold.stats["result_cache_hits"] == len(batch)
    assert cold.stats["result_cache_misses"] == 0
    assert [identity(r) for r in warm_results] == [
        identity(r) for r in cached_results
    ]
    # The key itself is backend-free: recompute it directly.
    payload = wire.isf_to_payload(batch[0][1])
    key = ResultCache.key_for(payload, "AND", "expand-full", "spp", True)
    assert (cache_dir / key[:2] / f"{key}.json").exists()


def test_ready_divisor_converts_with_explicit_backend():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(
        truthtable_to_function(mgr, TruthTable(4, 0x0F0F))
    )
    g = truthtable_to_function(mgr, TruthTable(4, 0x0F0F))
    result = Decomposer().decompose(
        f, "AND", approximator=Divisor(g=g, name="exactly-f"), backend="bitset"
    )
    assert result.verified
    assert result.approximator_name == "exactly-f"
    assert result.decomposition.g.mgr is mgr


def test_auto_pins_callable_strategies_to_native_backend():
    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1") & mgr.var("x2"))

    def custom_approx(isf, op):
        return isf.on

    engine = Decomposer(approximator=custom_approx)
    result = engine.decompose(f, "AND")
    assert result.verified
    assert engine.stats["backend_bdd"] == 1  # pinned despite small support


def test_explicit_backend_with_callable_raises():
    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1"))
    engine = Decomposer(minimizer=lambda isf: None)
    with pytest.raises(ValueError, match="registry-name"):
        engine.decompose(f, "AND", backend="bitset")


def test_bitset_stats_surface_in_results():
    f = random_isf(40, 4)
    result = Decomposer(backend="bitset").decompose(f, "AND")
    assert result.bdd_stats["backend"] == "bitset"
    assert "tables" in result.bdd_stats


def test_clear_caches_drops_shadow_managers():
    engine = Decomposer(backend="bitset")
    engine.decompose(random_isf(60, 4), "AND")
    assert engine._shadow_managers
    engine.clear_caches()
    assert not engine._shadow_managers


def test_gc_threshold_bounds_shadow_managers_too():
    """Converted batches must trip the auto-gc even though the shared
    manager itself stays small (the nodes live in the shadows)."""
    mgr = fresh_manager(4)
    batch = [(f"f{i}", random_isf(70 + i, 4, mgr)) for i in range(3)]
    engine = Decomposer(backend="bitset")
    results = engine.decompose_many(batch, "AND", gc_threshold=1)
    assert all(r.verified for r in results)
    assert mgr.stats()["gc_runs"] >= 1


def test_engine_payloads_byte_identical_across_backends():
    """The wire identity that licenses cross-backend cache sharing."""
    f1 = random_isf(50, 5)
    f2 = random_isf(50, 5)
    r_bdd = Decomposer(backend="bdd").decompose(f1, "OR")
    r_bit = Decomposer(backend="bitset").decompose(f2, "OR")
    text_bdd = json.dumps(identity(r_bdd), sort_keys=True)
    text_bit = json.dumps(identity(r_bit), sort_keys=True)
    assert text_bdd == text_bit
