"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "XNOR" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "TABLE II" in out
    assert "h_dc" in out


def test_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "x2 & x4" in out


def test_fig2(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "x3 ^ x4" in out


def test_bench_single(capsys):
    assert main(["bench", "z4", "--no-paper"]) == 0
    out = capsys.readouterr().out
    assert "z4 (7/4)" in out


def test_table_subset(capsys):
    assert main(["table4", "--names", "z4"]) == 0
    out = capsys.readouterr().out
    assert "z4" in out
    assert "shape summary" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
