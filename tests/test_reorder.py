"""Dynamic variable reordering: semantics, invisibility, and the win.

``BDD.reorder()`` (Rudell sifting over in-place adjacent-level swaps)
must satisfy two contracts at once:

* **semantic identity** — every live handle still denotes the same
  Boolean function: evaluation, satcount, minterm enumeration, support,
  and follow-on operations are unchanged;
* **observational invisibility** — everything serialized or hashed is
  declaration-order-normalized, so dumps, fingerprints, covers, and
  decomposition results are *byte-identical* before and after any
  number of reorders.

Plus the point of the exercise: on order-sensitive functions the node
count actually drops (exponential to linear on the blocked
interconnect function).
"""

from __future__ import annotations

import pytest

from repro.backend.bitset import BitsetBDD
from repro.bdd.manager import BDD
from repro.bdd.ops import isop, transfer
from repro.bdd.serialize import (
    dump,
    dump_many,
    function_fingerprint,
    load,
    load_many,
)
from repro.boolfunc.isf import ISF
from repro.engine.decomposer import Decomposer
from repro.utils.rng import make_rng


def _blocked_interconnect(k: int) -> tuple[BDD, object]:
    """``OR(x_i AND y_i)`` declared blocked — exponential in that order."""
    mgr = BDD([f"x{i}" for i in range(k)] + [f"y{i}" for i in range(k)])
    f = mgr.false
    for i in range(k):
        f = f | (mgr.var(f"x{i}") & mgr.var(f"y{i}"))
    return mgr, f


def _random_function(mgr: BDD, rng, terms: int = 6):
    f = mgr.false
    n = mgr.n_vars
    for _ in range(terms):
        cube = mgr.true
        for var in rng.sample(range(n), min(3, n)):
            literal = mgr.var_at(var)
            cube = cube & (literal if rng.random() < 0.5 else ~literal)
        f = f | cube
    return f


# ---------------------------------------------------------------------------
# Semantic identity under reorder
# ---------------------------------------------------------------------------


def test_reorder_preserves_semantics_randomized():
    rng = make_rng("reorder-semantics")
    for trial in range(25):
        n = rng.randrange(2, 8)
        mgr = BDD([f"v{i}" for i in range(n)])
        f = _random_function(mgr, rng)
        g = _random_function(mgr, rng)
        evals = [f(m) for m in range(1 << n)]
        count = f.satcount()
        minterms = list(f.minterms())
        support = f.support()
        mgr.reorder()
        assert [f(m) for m in range(1 << n)] == evals
        assert f.satcount() == count
        assert list(f.minterms()) == minterms
        assert f.support() == support
        # Follow-on operations still work against the permuted order.
        assert (f & g) | (f - g) == f
        assert ~(~f) == f


def test_reorder_is_stable_when_repeated():
    mgr, f = _blocked_interconnect(6)
    mgr.reorder()
    after_first = mgr.node_count()
    stats = mgr.reorder()
    assert mgr.node_count() == after_first
    assert stats["after"] == after_first


def test_reorder_reduces_blocked_interconnect():
    k = 8
    mgr, f = _blocked_interconnect(k)
    before = mgr.node_count()
    assert before >= (1 << (k + 1)) - 1  # exponential in the blocked order
    stats = mgr.reorder()
    assert mgr.node_count() <= 3 * k + 2  # linear in the interleaved order
    assert stats["after"] < stats["before"]
    assert f.satcount() == sum(
        1
        for m in range(1 << (2 * k))
        if any(
            (m >> (2 * k - 1 - i)) & 1 and (m >> (k - 1 - i)) & 1
            for i in range(k)
        )
    )


def test_minterm_and_cube_respect_declaration_weights():
    mgr, f = _blocked_interconnect(4)
    mgr.reorder()
    # Variable v (declaration index) keeps weight 2^(n-1-v) regardless
    # of its current level.
    n = mgr.n_vars
    for var in range(n):
        g = mgr.var_at(var)
        weight = 1 << (n - 1 - var)
        assert g(weight)
        assert not g(0)
    cube = mgr.cube({"x0": True, "y3": False})
    assert cube(1 << (n - 1))
    assert not cube((1 << (n - 1)) | 1)


def test_var_order_reports_current_permutation():
    mgr, _ = _blocked_interconnect(4)
    assert mgr.var_order() == tuple(mgr.var_names)
    mgr.reorder()
    assert sorted(mgr.var_order()) == sorted(mgr.var_names)
    assert tuple(mgr.var_names) == tuple(
        [f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)]
    )  # declaration order never changes


# ---------------------------------------------------------------------------
# Observational invisibility: dumps, hashes, covers, decompositions
# ---------------------------------------------------------------------------


def test_dump_and_fingerprint_byte_identical_across_reorder():
    rng = make_rng("reorder-dump")
    mgr = BDD([f"v{i}" for i in range(7)])
    functions = [(f"f{i}", _random_function(mgr, rng)) for i in range(4)]
    payload_before = dump_many(functions)
    prints_before = [function_fingerprint(f) for _, f in functions]
    stats = mgr.reorder()
    assert dump_many(functions) == payload_before
    assert [function_fingerprint(f) for _, f in functions] == prints_before
    mgr.reorder(max_growth=2.0)
    assert dump_many(functions) == payload_before


def test_isop_cubes_identical_across_reorder():
    mgr, f = _blocked_interconnect(5)
    cubes_before, realized_before = isop(f, f)
    mgr.reorder()
    cubes_after, realized_after = isop(f, f)
    assert cubes_after == cubes_before
    assert realized_after == realized_before == f


def test_decomposition_results_identical_across_reorder():
    from repro.engine import wire

    rng = make_rng("reorder-decompose")
    mgr = BDD([f"v{i}" for i in range(6)])
    isfs = [
        (f"f{i}", ISF.completely_specified(_random_function(mgr, rng)))
        for i in range(3)
    ]

    def payloads(results):
        return [
            {
                k: v
                for k, v in wire.result_to_payload(r).items()
                if k not in ("timings", "bdd_stats")
            }
            for r in results
        ]

    baseline = payloads(Decomposer().decompose_many(list(isfs), "OR"))
    mgr.reorder()
    after_manual = payloads(Decomposer().decompose_many(list(isfs), "OR"))
    assert after_manual == baseline
    # Auto-triggered reorders mid-batch change nothing either.
    triggered = payloads(
        Decomposer(reorder_threshold=1).decompose_many(
            list(isfs), "OR", gc_threshold=1
        )
    )
    assert triggered == baseline


# ---------------------------------------------------------------------------
# Cross-manager traffic with permuted orders
# ---------------------------------------------------------------------------


def test_transfer_both_directions_across_orders():
    rng = make_rng("reorder-transfer")
    source = BDD([f"v{i}" for i in range(6)])
    f = _random_function(source, rng)
    source.reorder()

    target = BDD([f"v{i}" for i in range(6)])
    moved = transfer(f, target)  # reordered -> identity
    assert [moved(m) for m in range(64)] == [f(m) for m in range(64)]

    target.reorder()
    back = transfer(moved, source)  # reordered -> reordered
    assert back == f


def test_load_into_reordered_manager():
    rng = make_rng("reorder-load")
    source = BDD([f"v{i}" for i in range(6)])
    f = _random_function(source, rng)
    payload = dump(f)

    target = BDD([f"v{i}" for i in range(6)])
    target_f = _random_function(target, rng)  # populate, then permute
    target.reorder()
    rebuilt = load(payload, target)
    assert [rebuilt(m) for m in range(64)] == [f(m) for m in range(64)]
    # Round-trip out of the reordered manager stays canonical.
    assert dump(rebuilt) == payload


def test_load_many_roundtrip_across_reorder():
    rng = make_rng("reorder-load-many")
    mgr = BDD([f"v{i}" for i in range(6)])
    functions = {f"f{i}": _random_function(mgr, rng) for i in range(3)}
    payload = dump_many(list(functions.items()))
    mgr.reorder()
    rebuilt = load_many(payload)  # fresh manager, declaration order
    for label, original in functions.items():
        assert [rebuilt[label](m) for m in range(64)] == [
            original(m) for m in range(64)
        ]


def test_bitset_reorder_is_a_noop():
    mgr = BitsetBDD(["a", "b", "c"])
    f = mgr.var("a") & mgr.var("b")
    stats = mgr.reorder()
    assert stats["swaps"] == 0
    assert stats["order"] == ["a", "b", "c"]
    assert f.satcount() == 2


# ---------------------------------------------------------------------------
# Handles, hashing, and memory management under reorder
# ---------------------------------------------------------------------------


def test_function_hash_stable_across_reorder():
    rng = make_rng("reorder-hash")
    mgr = BDD([f"v{i}" for i in range(6)])
    f = _random_function(mgr, rng)
    g = _random_function(mgr, rng)
    table = {f: "f", g: "g"}
    before = hash(f)
    mgr.reorder()
    assert hash(f) == before
    assert table[f] == "f" and table[g] == "g"


def test_gc_after_reorder_reclaims_dead_nodes():
    rng = make_rng("reorder-gc")
    mgr = BDD([f"v{i}" for i in range(6)])
    keep = _random_function(mgr, rng)
    for _ in range(10):
        _random_function(mgr, rng)  # dropped immediately
    mgr.reorder()  # reorder itself starts with a gc
    count = mgr.node_count()
    evals = [keep(m) for m in range(64)]
    stats = mgr.gc()
    assert mgr.node_count() <= count
    assert [keep(m) for m in range(64)] == evals


def test_reorder_reports_shape():
    mgr, _ = _blocked_interconnect(4)
    stats = mgr.reorder()
    assert set(stats) >= {"before", "after", "swaps", "order", "gc"}
    assert sorted(stats["order"]) == sorted(mgr.var_names)
    assert stats["after"] == mgr.node_count()
