"""Tests for the expansion-based 0->1 approximation (Section IV-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.expansion import (
    approximate_expand_bounded,
    approximate_expand_full,
)
from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.core.quotient import validate_divisor
from repro.spp.synthesis import minimize_spp
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=1, max_value=2**16 - 1)


@given(tt_bits, st.sampled_from(["aggressive", "conservative"]))
@settings(max_examples=30, deadline=None)
def test_g_is_valid_over_approximation(on_bits, policy):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    result = approximate_expand_full(f, policy=policy)
    validate_divisor(f, result.g, "AND")  # f_on <= g_on
    assert result.n_errors == (result.g & f.off).satcount()
    assert result.error_rate == result.n_errors / 16


@given(tt_bits)
@settings(max_examples=25, deadline=None)
def test_errors_confined_to_extended_dc(on_bits):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    result = approximate_expand_full(f)
    # Every introduced error was explicitly moved to the dc-set first.
    assert (result.g & f.off) <= result.extended_dc


def test_figure2_expansion_choice_is_available():
    """The paper's expansion (drop x1 from x1(x3^x4)) is one of the
    candidates; the heuristic picks an expansion with the same cost."""
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)"))
    result = approximate_expand_full(f)
    # Two pseudoproducts, each expandable with cost 2; either choice gives
    # a single-pseudoproduct g with two literals and two errors.
    assert result.n_errors == 2
    assert result.g_cover.pseudoproduct_count() == 1
    assert result.g_cover.literal_count() == 2


def test_initial_cover_is_respected():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)"))
    initial = minimize_spp(f)
    result = approximate_expand_full(f, initial=initial)
    assert result.initial_cover is initial


def test_rounds_monotonically_extend_dc():
    mgr = fresh_manager(5)
    f = isf_from_masks(mgr, 0x0F0F_3A5C, 0)
    one_round = approximate_expand_full(f, rounds=1)
    two_rounds = approximate_expand_full(f, rounds=2)
    assert one_round.extended_dc <= two_rounds.extended_dc
    assert two_rounds.n_errors >= 0
    validate_divisor(f, two_rounds.g, "AND")


def test_bad_policy_rejected():
    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1"))
    with pytest.raises(ValueError):
        approximate_expand_full(f, policy="reckless")


class TestBounded:
    @given(tt_bits, st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=25, deadline=None)
    def test_budget_is_respected(self, on_bits, budget):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, on_bits, 0)
        result = approximate_expand_bounded(f, error_budget=budget)
        assert result.extended_dc.satcount() <= int(budget * 16)
        validate_divisor(f, result.g, "AND")

    def test_zero_budget_gives_exact_g(self):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, 0b0101_1010_0011_1100, 0)
        result = approximate_expand_bounded(f, error_budget=0.0)
        assert result.n_errors == 0
        assert result.g == f.on

    def test_invalid_budget_rejected(self):
        mgr = fresh_manager(3)
        f = ISF.completely_specified(mgr.var("x1"))
        with pytest.raises(ValueError):
            approximate_expand_bounded(f, error_budget=1.5)

    def test_larger_budget_allows_more_errors(self):
        mgr = fresh_manager(4)
        f = ISF.completely_specified(
            parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
        )
        small = approximate_expand_bounded(f, error_budget=0.05)
        large = approximate_expand_bounded(f, error_budget=0.5)
        assert small.n_errors <= large.n_errors


def test_expansion_never_expands_to_tautology():
    # Even at maximum aggressiveness a pseudoproduct keeps >= 1 factor.
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1"))
    result = approximate_expand_full(f, rounds=3)
    assert not result.g.is_true


def test_dc_of_f_is_preserved_in_resynthesis():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b0000_1111_0000_1100, 0b1111_0000_0000_0000)
    result = approximate_expand_full(f)
    # g may use f's dc freely but must cover the on-set.
    assert f.on <= result.g
