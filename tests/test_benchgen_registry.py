"""Tests for the benchmark registry."""

import pytest

from repro.benchgen.paper_data import (
    PAPER_ROWS,
    TABLE_III_ROWS,
    TABLE_IV_ROWS,
)
from repro.benchgen.registry import (
    BENCHMARKS,
    load_benchmark,
    table_benchmarks,
)


def test_all_paper_rows_are_registered():
    assert set(BENCHMARKS) == set(PAPER_ROWS)
    assert len(TABLE_III_ROWS) == 14
    assert len(TABLE_IV_ROWS) == 11


def test_table_partition():
    table3 = {spec.name for spec in table_benchmarks("III")}
    table4 = {spec.name for spec in table_benchmarks("IV")}
    assert table3 & table4 == set()
    assert table3 | table4 == set(BENCHMARKS)
    assert "br1" in table3 and "z4" in table4


def test_kinds():
    assert BENCHMARKS["z4"].kind == "arithmetic"
    assert BENCHMARKS["adr4"].kind == "arithmetic"
    assert BENCHMARKS["br1"].kind == "synthetic"
    assert BENCHMARKS["chkn"].kind == "synthetic"


def test_unknown_benchmark():
    with pytest.raises(KeyError):
        load_benchmark("does-not-exist")


def test_load_arithmetic_instance():
    instance = load_benchmark("z4")
    assert instance.name == "z4"
    assert instance.mgr.n_vars == 7
    assert len(instance.outputs) == 4
    # Spot check: z4 is a 3+3+1 adder; MSB output on 7+7+1 = 15 = 0b1111.
    minterm = (7 << 4) | (7 << 1) | 1
    values = [f.on(minterm) for f in instance.outputs]
    assert values == [True, True, True, True]
    assert instance.paper_row() is not None
    assert instance.paper_row().table == "IV"


def test_load_synthetic_instance():
    instance = load_benchmark("newtpla2")
    assert instance.mgr.n_vars == 10
    assert len(instance.outputs) == 4
    for f in instance.outputs:
        assert not f.on.is_false


def test_outputs_are_completely_specified_for_arithmetic():
    instance = load_benchmark("z4")
    for f in instance.outputs:
        assert f.is_completely_specified
