"""Cross-module property tests: deeper invariants of the theory.

These go beyond per-module unit tests and check consequences the paper
relies on implicitly: linearity of the XOR family, duality between
operator pairs, stability of the full quotient under re-decomposition,
and the interaction of minimization with quotient flexibility.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.generic import approximation_for_operator
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import apply_operator, bidecompose
from repro.core.operators import OPERATORS
from repro.core.quotient import full_quotient
from repro.spp.synthesis import minimize_spp
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


@given(tt_bits, tt_bits)
@settings(max_examples=40, deadline=None)
def test_xor_quotient_is_linear(f_bits, g_bits):
    """For XOR the quotient is literally f ^ g on the care set."""
    mgr = fresh_manager(4)
    from repro.boolfunc.convert import truthtable_to_function
    from repro.boolfunc.truthtable import TruthTable

    f_fn = truthtable_to_function(mgr, TruthTable(4, f_bits))
    g = truthtable_to_function(mgr, TruthTable(4, g_bits))
    f = ISF.completely_specified(f_fn)
    h = full_quotient(f, g, "XOR")
    assert h.on == (f_fn ^ g)
    assert h.dc.is_false
    # And XNOR is its complement.
    h2 = full_quotient(f, g, "XNOR")
    assert h2.on == ~(f_fn ^ g)


@given(tt_bits, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_and_or_duality(on_bits, seed):
    """AND-decomposing f with g is OR-decomposing ~f with ~g:
    the quotients are complements of each other."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    rng = make_rng(seed)
    g = approximation_for_operator(f, "AND", 0.3, rng)
    h_and = full_quotient(f, g, "AND")
    h_or = full_quotient(~f, ~g, "OR")
    assert h_or.on == h_and.off
    assert h_or.dc == h_and.dc


@given(tt_bits, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_quotient_of_quotient_chain(on_bits, seed):
    """Decompose f = g1 . h1, then decompose a completion of h1 again:
    f = g1 . (g2 . h2) — a two-level AND chain, still exact."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    rng = make_rng(seed)
    g1 = approximation_for_operator(f, "AND", 0.25, rng)
    h1 = full_quotient(f, g1, "AND")
    # Re-decompose h1 (an ISF) the same way.
    g2 = approximation_for_operator(h1, "AND", 0.25, rng)
    h2 = full_quotient(h1, g2, "AND")
    # Compose back with arbitrary completions of h2.
    for completion in (h2.on, h2.upper):
        inner = g2 & completion
        rebuilt = g1 & inner
        assert (rebuilt & f.care) == (f.on & f.care)


@given(tt_bits, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_minimized_quotient_is_a_completion(on_bits, seed):
    """2-SPP minimization of the quotient always returns a completion
    (the minimizer may not leave the [on, on|dc] interval)."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    rng = make_rng(seed)
    for op_name in ("AND", "OR", "NOT_IMPLIES", "XNOR"):
        op = OPERATORS[op_name]
        g = approximation_for_operator(f, op, 0.3, rng)
        h = full_quotient(f, g, op)
        cover = minimize_spp(h)
        assert h.is_completion(cover.to_function(mgr))


@given(tt_bits)
@settings(max_examples=30, deadline=None)
def test_more_flexible_quotient_never_costs_more(on_bits):
    """Shrinking g's error (AND) can only shrink h's dc-set; the
    minimized cover cost with the larger dc-set is never worse."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    if f.on.is_false:
        return
    rng = make_rng(13)
    g_accurate = approximation_for_operator(f, "AND", 0.1, rng)
    g_sloppy = g_accurate | approximation_for_operator(f, "AND", 0.5, rng)
    h_accurate = full_quotient(f, g_accurate, "AND")
    h_sloppy = full_quotient(f, g_sloppy, "AND")
    assert h_sloppy.dc <= h_accurate.dc
    cost_accurate = minimize_spp(h_accurate).cost()
    cost_sloppy = minimize_spp(h_sloppy).cost()
    assert cost_accurate <= cost_sloppy


@given(tt_bits, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_operator_symmetry_of_commutative_ops(on_bits, seed):
    """For commutative operators, g op h == h op g as functions."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    rng = make_rng(seed)
    for op_name in ("AND", "OR", "XOR", "XNOR", "NAND", "NOR"):
        op = OPERATORS[op_name]
        g = approximation_for_operator(f, op, 0.2, rng)
        h = full_quotient(f, g, op)
        completion = h.on
        assert apply_operator(op, g, completion) == apply_operator(
            op, completion, g
        )


@given(tt_bits)
@settings(max_examples=20, deadline=None)
def test_decomposition_sequence_cost_endpoints(on_bits):
    """The sequence g0=f .. gn=1 of the introduction: endpoints cost what
    the theory says (h0 free to be tautology; hn forced to equal f)."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    if f.on.is_false or f.off.is_false:
        return
    start = bidecompose(f, "AND", f.on)
    assert start.h_cover.pseudoproduct_count() <= 1  # tautology completion
    end = bidecompose(f, "AND", mgr.true)
    # h must be exactly f: same cost as synthesizing f itself.
    f_cost = minimize_spp(f).cost()
    assert end.h_cover.cost() == f_cost
