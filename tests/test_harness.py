"""Tests for the experiment harness (Tables III/IV flow)."""

import pytest

from repro.benchgen.paper_data import PAPER_ROWS
from repro.harness.experiment import run_benchmark
from repro.harness.report import comparison_lines, shape_summary
from repro.harness.tables import (
    render_table1,
    render_table2,
    render_table_results,
)


@pytest.fixture(scope="module")
def z4_result():
    return run_benchmark("z4", keep_artifacts=True)


@pytest.fixture(scope="module")
def newtpla2_result():
    return run_benchmark("newtpla2")


def test_result_fields(z4_result):
    assert z4_result.name == "z4"
    assert z4_result.n_inputs == 7 and z4_result.n_outputs == 4
    assert z4_result.area_f > 0
    assert 0 <= z4_result.pct_errors <= 100
    assert z4_result.op_areas.keys() == {"AND", "NOT_IMPLIES"}
    assert z4_result.time_s >= 0


def test_gain_formula(z4_result):
    expected = 100.0 * (z4_result.area_f - z4_result.area_and) / z4_result.area_f
    assert z4_result.gain_and == pytest.approx(expected)
    expected = 100.0 * (z4_result.area_f - z4_result.area_nimp) / z4_result.area_f
    assert z4_result.gain_nimp == pytest.approx(expected)


def test_z4_lands_in_table4_regime(z4_result):
    """z4 is the cleanest arithmetic instance: the paper reports 43.75%
    error and a ~98% g-area reduction; the reproduction matches both."""
    assert 35 <= z4_result.pct_errors <= 55
    assert z4_result.pct_reduction >= 90


def test_newtpla2_lands_in_table3_regime(newtpla2_result):
    assert newtpla2_result.pct_errors < 10
    assert abs(newtpla2_result.gain_and) <= 60


def test_artifacts_are_verified_decompositions(z4_result):
    from repro.core.bidecomposition import apply_operator
    from repro.core.operators import operator_by_name

    assert z4_result.artifacts is not None
    for artifacts in z4_result.artifacts:
        f = artifacts.f
        mgr = f.mgr
        for op_name, h_cover in artifacts.h_covers.items():
            op = operator_by_name(op_name)
            rebuilt = apply_operator(op, artifacts.g, h_cover.to_function(mgr))
            assert (rebuilt & f.care) == (f.on & f.care)


def test_render_table1_lists_all_operators():
    text = render_table1()
    for name in ("AND", "NOR", "XNOR", "IMPLIES"):
        assert name in text
    assert "f = g · h" in text


def test_render_table2_lists_formulas():
    text = render_table2()
    assert "g_off | f_dc" in text
    assert "0->1 approx of f" in text
    assert text.count("\n") >= 12


def test_render_results_table(z4_result):
    text = render_table_results([z4_result], "IV")
    assert "z4 (7/4)" in text
    assert "(paper)" in text
    row = PAPER_ROWS["z4"]
    assert f"{row.area_f:.0f}" in text.replace(" ", " ")


def test_render_results_without_paper(z4_result):
    text = render_table_results([z4_result], "IV", with_paper=False)
    assert "(paper)" not in text


def test_comparison_lines(z4_result):
    lines = comparison_lines([z4_result])
    assert len(lines) == 1
    assert "z4" in lines[0] and "paper" in lines[0]


def test_shape_summary(z4_result, newtpla2_result):
    summary = shape_summary([z4_result, newtpla2_result])
    assert summary["compared"] == 2
    assert 0 <= summary["gain_sign_matches"] <= 2
    assert 0 <= summary["operators_agree_measured"] <= 2


def test_isolated_area_columns(z4_result):
    # Network-aware accounting: the shared multi-output network can
    # never cost more than mapping every output separately.
    assert z4_result.area_f_isolated is not None
    assert z4_result.area_f <= z4_result.area_f_isolated
    assert z4_result.op_areas_isolated.keys() == z4_result.op_areas.keys()
    for op_name, shared in z4_result.op_areas.items():
        assert shared <= z4_result.op_areas_isolated[op_name]


def test_render_results_table_has_sharing_columns(z4_result):
    text = render_table_results([z4_result], "IV")
    assert "F iso" in text and "Shr%" in text
