"""Tests for the espresso-style heuristic two-level minimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.isf import ISF
from repro.twolevel.espresso import espresso_minimize, initial_cover, supercube_of
from repro.twolevel.quine_mccluskey import minimize_exact
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


@given(tt_bits, tt_bits)
@settings(max_examples=50, deadline=None)
def test_result_is_within_bounds(on_bits, dc_bits):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    cover = espresso_minimize(f)
    realized = cover.to_function(mgr)
    assert f.on <= realized
    assert realized <= f.upper


@given(tt_bits)
@settings(max_examples=30, deadline=None)
def test_no_single_cube_redundancy(on_bits):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    cover = espresso_minimize(f)
    for index, cube in enumerate(cover.cubes):
        rest = mgr.false
        for other_index, other in enumerate(cover.cubes):
            if other_index != index:
                rest = rest | other.to_function(mgr)
        # Removing any cube must lose some on-set minterm.
        assert not (f.on <= rest)


@given(tt_bits, tt_bits)
@settings(max_examples=25, deadline=None)
def test_close_to_exact_product_count(on_bits, dc_bits):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    heuristic = espresso_minimize(f)
    exact = minimize_exact(
        4, list(f.on.minterms()), list(f.dc.minterms())
    )
    # Heuristic never beats exact, and stays within a 1.5x + 1 envelope.
    assert heuristic.cube_count() >= exact.cube_count()
    assert heuristic.cube_count() <= int(1.5 * exact.cube_count()) + 1


def test_constants():
    mgr = fresh_manager(3)
    zero = ISF.completely_specified(mgr.false)
    assert espresso_minimize(zero).cube_count() == 0
    one = ISF.completely_specified(mgr.true)
    cover = espresso_minimize(one)
    assert cover.cube_count() == 1
    assert cover.cubes[0].literal_count == 0


def test_initial_cover_is_valid():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b1010_0101_0011_1100, 0b0101_0000_1100_0000)
    cover = initial_cover(f)
    realized = cover.to_function(mgr)
    assert f.on <= realized <= f.upper


def test_supercube_of():
    mgr = fresh_manager(4)
    f = mgr.cube({"x1": 1, "x2": 0}) | mgr.cube({"x1": 1, "x2": 1, "x3": 0})
    cube = supercube_of(f, 4)
    assert cube is not None
    assert cube.to_string() == "1---"
    assert supercube_of(mgr.false, 4) is None
    full = supercube_of(mgr.true, 4)
    assert full is not None and full.literal_count == 0


def test_paper_figure1_quotient():
    # h with on = f_on and dc = g_off: minimal SOP is x1 + x3 (2 literals).
    mgr = fresh_manager(4)
    on = mgr.minterm(7) | mgr.minterm(13) | mgr.minterm(15)
    g = mgr.cube({"x2": 1, "x4": 1})
    h = ISF(on, ~g)
    cover = espresso_minimize(h)
    assert cover.literal_count() == 2
    assert cover.cube_count() == 2


def test_initial_cover_seeding_is_respected():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b0110_1001_1001_0110, 0)  # parity
    seed = initial_cover(f)
    cover = espresso_minimize(f, initial=seed)
    # Parity of 4 variables requires exactly 8 minterm cubes.
    assert cover.cube_count() == 8
    assert cover.literal_count() == 32
