"""Randomized differential oracle for the whole decomposition engine.

Every engine-produced decomposition is re-checked against an
*independent* brute-force oracle: the realized covers are evaluated
minterm by minterm (``contains_minterm`` — no BDDs in the recomposition
path) and combined with the operator's truth table, then compared to the
ground-truth bitmasks the random function was built from.  The oracle
also checks the don't-care contract (the realized quotient stays inside
the full quotient's flexibility; dc minterms of ``f`` are unconstrained)
and the approximation-error bounds each strategy promises.

Every case is additionally a **cross-backend** differential: the same
request is executed under ``backend="bitset"`` and the results must be
*identical* to the BDD backend's — same canonical dump of ``g``, same
``h`` payload, same covers (pseudocube lists), same metrics and
candidate outcomes — which is what licenses sharing ResultCache entries
across backends.

Coverage: all ten Table I operators × three strategies × seven seeds
(210 seeded cases, 3–5 variables) plus a handful of 8-variable cases.
"""

import pytest

from repro.core.operators import OPERATORS, TABLE_I_ORDER, ApproximationKind
from repro.engine import Decomposer
from repro.engine import wire
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

#: Payload keys that identify a result (timings and manager stats are
#: run-dependent and excluded from identity by design).
IDENTITY_KEYS = ("op", "approximator", "minimizer", "g", "h", "g_cover",
                 "h_cover", "metadata", "literal_cost", "error_rate",
                 "verified", "candidates")


def result_identity(result) -> dict:
    payload = wire.result_to_payload(result)
    return {key: payload[key] for key in IDENTITY_KEYS}


def assert_backends_identical(result_bdd, f_bitset_case):
    """Re-run the request on the bitset backend and compare identities."""
    engine = Decomposer(
        approximator=result_bdd.request.approximator
        or result_bdd.approximator_name,
        minimizer=result_bdd.minimizer_name,
        backend="bitset",
    )
    result_bit = engine.decompose(f_bitset_case, result_bdd.request.op)
    assert engine.stats["backend_bitset"] >= 1
    assert result_identity(result_bit) == result_identity(result_bdd)

#: Strategy specs exercised against every operator.
STRATEGIES = ("expand-full", "expand-bounded:0.1", "random:0.3")

SEEDS = tuple(range(7))


def test_case_budget_meets_spec():
    """The sweep below runs >= 200 seeded random cases over all ten ops."""
    assert len(TABLE_I_ORDER) * len(STRATEGIES) * len(SEEDS) >= 200
    assert set(TABLE_I_ORDER) == set(OPERATORS)


def _random_case(op_name: str, strategy: str, seed: int, n_vars: int):
    """Deterministic random ISF (with its ground-truth masks)."""
    rng = make_rng(("differential", op_name, strategy, seed, n_vars))
    mgr = fresh_manager(n_vars)
    space = 1 << (1 << n_vars)
    on_bits = rng.randrange(space)
    # Sparser dc-set: intersection of two draws (~25% density).
    dc_bits = rng.randrange(space) & rng.randrange(space)
    on_bits &= ~dc_bits
    return isf_from_masks(mgr, on_bits, dc_bits), on_bits, dc_bits


def _oracle_check(result, on_bits: int, dc_bits: int, n_vars: int, strategy: str):
    """Brute-force recomposition + flexibility + error-bound checks."""
    decomposition = result.decomposition
    op = OPERATORS[result.op_name]
    g_cover = decomposition.g_cover
    h_cover = decomposition.h_cover
    assert g_cover is not None and h_cover is not None

    def f_value(m):  # 1, 0, or None (don't-care) from the ground truth
        if (dc_bits >> m) & 1:
            return None
        return (on_bits >> m) & 1

    mismatches = []
    error_count = 0
    eligible = {"on": 0, "off": 0, "care": 0}
    for m in range(1 << n_vars):
        g_bit = g_cover.contains_minterm(m)
        h_bit = h_cover.contains_minterm(m)

        # The realized h must be a completion of the full quotient.
        if decomposition.h.on(m):
            assert h_bit, f"h cover drops required on-set minterm {m}"
        elif not decomposition.h.dc(m):
            assert not h_bit, f"h cover asserts off-set minterm {m}"

        value = f_value(m)
        if value is None:
            continue  # dc: any recomposition is acceptable
        eligible["care"] += 1
        eligible["on" if value else "off"] += 1

        if int(op(g_bit, h_bit)) != value:
            mismatches.append(m)

        # Divisor-kind contract (Definitions 1-3) and error accounting.
        kind = op.approximation
        if kind is ApproximationKind.OVER_F:
            assert not (value and not g_bit), f"g not a 0->1 approx at {m}"
            error_count += int(g_bit and not value)
        elif kind is ApproximationKind.UNDER_F:
            assert not (not value and g_bit), f"g not a 1->0 approx at {m}"
            error_count += int(value and not g_bit)
        elif kind is ApproximationKind.OVER_COMPLEMENT:
            assert not (not value and not g_bit), f"g not a 0->1 approx of ~f at {m}"
            error_count += int(g_bit and value)
        elif kind is ApproximationKind.UNDER_COMPLEMENT:
            assert not (value and g_bit), f"g not a 1->0 approx of ~f at {m}"
            error_count += int(not value and not g_bit)
        else:  # ANY: both flip directions count
            error_count += int(bool(g_bit) != bool(value))

    assert mismatches == [], (
        f"{result.op_name}/{strategy}: recomposition differs from f on care"
        f" minterms {mismatches[:8]}"
    )
    assert result.verified

    # The engine's reported error rate must agree with the oracle's count.
    assert error_count == round(result.error_rate * (1 << n_vars))

    # Per-strategy error bounds.
    kind = op.approximation
    if strategy.startswith("random:"):
        rate = float(strategy.split(":")[1])
        if kind in (ApproximationKind.OVER_F, ApproximationKind.UNDER_COMPLEMENT):
            pool = eligible["off"]
        elif kind in (ApproximationKind.UNDER_F, ApproximationKind.OVER_COMPLEMENT):
            pool = eligible["on"]
        else:
            pool = eligible["care"]
        assert error_count <= min(pool, round(rate * pool))
    elif strategy.startswith("expand-bounded:"):
        budget = float(strategy.split(":")[1])
        assert result.error_rate <= budget + 1e-12


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("op_name", TABLE_I_ORDER)
def test_differential_oracle(op_name, strategy):
    engine = Decomposer(approximator=strategy, minimizer="spp", backend="bdd")
    for seed in SEEDS:
        n_vars = 3 + seed % 3  # 3, 4, 5 variables
        f, on_bits, dc_bits = _random_case(op_name, strategy, seed, n_vars)
        result = engine.decompose(f, op_name)
        _oracle_check(result, on_bits, dc_bits, n_vars, strategy)
        assert_backends_identical(result, f)


@pytest.mark.parametrize("op_name", ("AND", "OR", "XOR", "NAND"))
def test_differential_oracle_eight_vars(op_name):
    """The sweep's upper arity: 8-variable random functions."""
    engine = Decomposer(
        approximator="random:0.1", minimizer="espresso", backend="bdd"
    )
    f, on_bits, dc_bits = _random_case(op_name, "random:0.1", seed=99, n_vars=8)
    result = engine.decompose(f, op_name)
    _oracle_check(result, on_bits, dc_bits, 8, "random:0.1")
    assert_backends_identical(result, f)


def test_differential_oracle_under_auto_search():
    """op='auto' winners must satisfy the same oracle (both backends)."""
    engine = Decomposer(approximator="expand-full", minimizer="spp", backend="bdd")
    for seed in SEEDS[:3]:
        f, on_bits, dc_bits = _random_case("auto", "expand-full", seed, 4)
        result = engine.decompose(f, "auto")
        _oracle_check(result, on_bits, dc_bits, 4, "expand-full")
        assert_backends_identical(result, f)
