"""Tests for the branch-and-bound unate covering solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel.covering import CoveringProblem, solve_covering


def brute_force_best(problem: CoveringProblem) -> float:
    """Minimum cover cost by exhaustive subset enumeration."""
    best = float("inf")
    indices = range(len(problem.columns))
    all_rows = set(range(problem.n_rows))
    for size in range(len(problem.columns) + 1):
        for subset in itertools.combinations(indices, size):
            covered = set()
            for j in subset:
                covered |= problem.columns[j]
            if covered >= all_rows:
                cost = sum(problem.costs[j] for j in subset)
                best = min(best, cost)
        if best < float("inf"):
            # Smaller subsets were all checked; cheaper covers can still
            # exist with more columns only if costs are not uniform, so
            # keep scanning one extra size for safety.
            continue
    return best


def make_problem(n_rows, column_sets, costs=None):
    columns = [frozenset(s) for s in column_sets]
    if costs is None:
        costs = [1.0] * len(columns)
    return CoveringProblem(n_rows, columns, costs)


def test_essential_column_is_selected():
    problem = make_problem(2, [{0}, {1}, {1}])
    chosen = solve_covering(problem)
    assert 0 in chosen
    covered = set().union(*(problem.columns[j] for j in chosen))
    assert covered == {0, 1}


def test_infeasible_raises():
    problem = make_problem(2, [{0}])
    with pytest.raises(ValueError):
        solve_covering(problem)


def test_cost_validation():
    with pytest.raises(ValueError):
        make_problem(1, [{0}], costs=[0.0])
    with pytest.raises(ValueError):
        CoveringProblem(1, [frozenset({0})], [1.0, 2.0])


def test_prefers_cheap_cover():
    # One expensive column covers everything; two cheap ones do too.
    problem = make_problem(
        4, [{0, 1, 2, 3}, {0, 1}, {2, 3}], costs=[5.0, 2.0, 2.0]
    )
    chosen = solve_covering(problem)
    assert sorted(chosen) == [1, 2]


def test_prefers_single_column_when_cheaper():
    problem = make_problem(
        4, [{0, 1, 2, 3}, {0, 1}, {2, 3}], costs=[3.0, 2.0, 2.0]
    )
    assert solve_covering(problem) == [0]


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_optimality_against_brute_force(data):
    n_rows = data.draw(st.integers(min_value=1, max_value=6))
    n_cols = data.draw(st.integers(min_value=1, max_value=7))
    columns = []
    for _ in range(n_cols):
        rows = data.draw(
            st.sets(st.integers(min_value=0, max_value=n_rows - 1), max_size=n_rows)
        )
        columns.append(rows)
    # Ensure feasibility: add a column covering everything at high cost.
    columns.append(set(range(n_rows)))
    costs = [
        float(data.draw(st.integers(min_value=1, max_value=9)))
        for _ in range(len(columns))
    ]
    problem = make_problem(n_rows, columns, costs)
    chosen = solve_covering(problem)
    covered = set().union(*(problem.columns[j] for j in chosen))
    assert covered >= set(range(n_rows))
    got = sum(problem.costs[j] for j in chosen)
    assert got == pytest.approx(brute_force_best(problem))


def test_budget_exhaustion_falls_back_to_greedy():
    # A large-ish instance with a tiny node budget still returns a valid
    # (possibly suboptimal) cover.
    columns = [{i} for i in range(12)] + [set(range(12))]
    problem = make_problem(12, columns, costs=[1.0] * 12 + [20.0])
    chosen = solve_covering(problem, max_nodes=1)
    covered = set().union(*(problem.columns[j] for j in chosen))
    assert covered == set(range(12))
