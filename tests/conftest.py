"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bdd.manager import BDD
from repro.boolfunc.convert import truthtable_to_function
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable
from repro.utils.rng import make_rng


def fresh_manager(n_vars: int) -> BDD:
    """A manager with variables x1..xn (x1 on top of the order)."""
    return BDD([f"x{i + 1}" for i in range(n_vars)])


def isf_from_masks(mgr: BDD, on_bits: int, dc_bits: int) -> ISF:
    """Build an ISF from truth-table bitmasks (dc wins overlaps)."""
    n = mgr.n_vars
    dc_bits &= (1 << (1 << n)) - 1
    on_bits &= ~dc_bits
    on = truthtable_to_function(mgr, TruthTable(n, on_bits))
    dc = truthtable_to_function(mgr, TruthTable(n, dc_bits))
    return ISF(on, dc)


def brute_force_equal(mgr: BDD, function, predicate) -> bool:
    """Compare a BDD function against a Python predicate on all minterms."""
    return all(
        bool(function(m)) == bool(predicate(m)) for m in range(1 << mgr.n_vars)
    )


@pytest.fixture
def rng():
    """Deterministic RNG, fresh per test."""
    return make_rng("pytest")


@pytest.fixture
def mgr4():
    """A 4-variable manager (the paper's figure size)."""
    return fresh_manager(4)


@pytest.fixture
def mgr5():
    """A 5-variable manager."""
    return fresh_manager(5)
