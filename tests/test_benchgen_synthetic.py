"""Tests for the synthetic control-logic PLA generators."""

from repro.benchgen.paper_data import PAPER_ROWS
from repro.benchgen.synthetic import (
    SYNTHETIC_SPECS,
    SyntheticSpec,
    generate_pla,
    output_cover,
)


def test_specs_match_paper_arity():
    for name, spec in SYNTHETIC_SPECS.items():
        row = PAPER_ROWS[name]
        assert spec.n_inputs == row.n_inputs, name
        assert spec.n_outputs == row.n_outputs, name


def test_generation_is_deterministic():
    spec = SYNTHETIC_SPECS["br1"]
    first = generate_pla(spec)
    second = generate_pla(spec)
    assert [(c.to_string(), o) for c, o in first.rows] == [
        (c.to_string(), o) for c, o in second.rows
    ]


def test_different_benchmarks_differ():
    br1 = generate_pla(SYNTHETIC_SPECS["br1"])
    br2 = generate_pla(SYNTHETIC_SPECS["br2"])
    assert [(c.to_string(), o) for c, o in br1.rows] != [
        (c.to_string(), o) for c, o in br2.rows
    ]


def test_every_output_has_minimum_support():
    for name in ("br1", "newtpla2", "alcom"):
        spec = SYNTHETIC_SPECS[name]
        pla = generate_pla(spec)
        for output in range(spec.n_outputs):
            cover = output_cover(pla, output)
            assert len(cover) >= spec.min_rows_per_output, (name, output)


def test_row_count_close_to_spec():
    for name, spec in SYNTHETIC_SPECS.items():
        pla = generate_pla(spec)
        # Clusters may overshoot n_rows slightly; output support may add
        # a few more rows.
        assert len(pla.rows) >= spec.n_rows, name
        assert len(pla.rows) <= spec.n_rows + spec.n_outputs * spec.min_rows_per_output


def test_clusters_create_overlapping_cubes():
    """The cluster structure must create cube pairs at distance <= 1,
    the property that makes pseudoproduct expansion cheap."""
    pla = generate_pla(SYNTHETIC_SPECS["br1"])
    cubes = [cube for cube, _outputs in pla.rows]
    close_pairs = 0
    for i, a in enumerate(cubes):
        for b in cubes[i + 1 :]:
            if a.distance(b) <= 1:
                close_pairs += 1
    assert close_pairs >= len(cubes) // 4


def test_custom_spec_generation():
    spec = SyntheticSpec("tiny", 5, 2, 6, 0.6, 1.2)
    pla = generate_pla(spec)
    assert pla.n_inputs == 5
    assert pla.n_outputs == 2
    mgr = pla.make_manager()
    f = pla.output_isf(mgr, 0)
    assert not f.on.is_false  # output 0 is supported
