"""Tests for incompletely specified functions (ISF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.isf import ISF
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


def test_disjointness_enforced():
    mgr = fresh_manager(3)
    f = mgr.var("x1")
    with pytest.raises(ValueError):
        ISF(f, f)


def test_mixed_managers_rejected():
    mgr_a = fresh_manager(2)
    mgr_b = fresh_manager(2)
    with pytest.raises(ValueError):
        ISF(mgr_a.var("x1"), mgr_b.var("x2"))


def test_completely_specified():
    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1"))
    assert f.is_completely_specified
    assert f.dc.is_false
    assert f.off == ~mgr.var("x1")


def test_from_sets():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, on_minterms=[1, 2], dc_minterms=[5])
    assert f(1) == 1 and f(2) == 1
    assert f(5) is None
    assert f(0) == 0
    assert f.counts() == (2, 1, 5)


@given(tt_bits, tt_bits)
@settings(max_examples=40, deadline=None)
def test_partition_of_space(on_bits, dc_bits):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    # on, dc, off partition the space.
    assert (f.on & f.dc).is_false
    assert (f.on & f.off).is_false
    assert (f.dc & f.off).is_false
    assert (f.on | f.dc | f.off).is_true
    assert f.care == (f.on | f.off)
    assert f.upper == (f.on | f.dc)


def test_complement_swaps_on_off():
    mgr = fresh_manager(3)
    f = isf_from_masks(mgr, 0b10110100, 0b00000011)
    g = ~f
    assert g.on == f.off
    assert g.off == f.on
    assert g.dc == f.dc


def test_is_completion():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, [1, 3], [0])
    assert f.is_completion(mgr.minterm(1) | mgr.minterm(3))
    assert f.is_completion(mgr.minterm(0) | mgr.minterm(1) | mgr.minterm(3))
    assert not f.is_completion(mgr.minterm(1))  # misses on-set 3
    assert not f.is_completion(
        mgr.minterm(1) | mgr.minterm(3) | mgr.minterm(5)
    )  # hits the off-set


def test_accepts_refinement():
    mgr = fresh_manager(3)
    loose = ISF.from_sets(mgr, [1], [0, 2])
    tight = ISF.from_sets(mgr, [1, 2], [0])
    assert loose.accepts(tight)
    assert not tight.accepts(loose)


def test_restrict_flexibility():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, [1], [0, 2, 4])
    keep = mgr.minterm(0) | mgr.minterm(2)
    g = f.restrict_flexibility(keep)
    assert g.on == f.on
    assert g.dc == keep
    assert g(4) == 0  # left the dc-set, became off


def test_cofactor():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, [0b100, 0b101], [0b000])
    pos = f.cofactor("x1", 1)
    assert pos.on.satcount() >= 2  # x2'x3' and x2'x3 patterns, both halves


def test_random_isf_is_consistent(rng):
    mgr = fresh_manager(4)
    f = ISF.random(mgr, rng)
    assert (f.on & f.dc).is_false
    on, dc, off = f.counts()
    assert on + dc + off == 16


def test_eq_and_hash():
    mgr = fresh_manager(3)
    a = ISF.from_sets(mgr, [1], [2])
    b = ISF.from_sets(mgr, [1], [2])
    assert a == b and hash(a) == hash(b)
    assert a != ISF.from_sets(mgr, [1], [])


def test_repr_contains_counts():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, [1, 2], [3])
    assert "on=2" in repr(f) and "dc=1" in repr(f)


def test_minterm_iterators():
    mgr = fresh_manager(3)
    f = ISF.from_sets(mgr, [5, 1], [7])
    assert sorted(f.on_minterms()) == [1, 5]
    assert sorted(f.dc_minterms()) == [7]
