"""Tests for the genlib parser and the embedded library."""

import itertools

import pytest

from repro.techmap.genlib import (
    Gate,
    GenlibError,
    evaluate_pattern,
    parse_expression_tree,
    parse_genlib,
    pattern_inputs,
)
from repro.techmap.library_data import MCNC_LIKE_GENLIB, default_library


def test_parse_simple_gate():
    library = parse_genlib("GATE inv 1.0 O=!a; PIN a INV 1 999 1 0 1 0\n")
    assert len(library) == 1
    gate = library["inv"]
    assert gate.area == 1.0
    assert gate.pattern == ("not", ("var", "a"))


def test_expression_precedence():
    tree = parse_expression_tree("a+b*c")
    assert tree == ("or", ("var", "a"), ("and", ("var", "b"), ("var", "c")))
    tree = parse_expression_tree("!(a*b)+c")
    assert tree[0] == "or"


def test_expression_left_deep_binarization():
    tree = parse_expression_tree("a*b*c")
    assert tree == (
        "and",
        ("and", ("var", "a"), ("var", "b")),
        ("var", "c"),
    )


def test_constants():
    assert parse_expression_tree("CONST0") == ("const", 0)
    assert parse_expression_tree("CONST1") == ("const", 1)


def test_expression_errors():
    with pytest.raises(GenlibError):
        parse_expression_tree("a +")
    with pytest.raises(GenlibError):
        parse_expression_tree("(a + b")
    with pytest.raises(GenlibError):
        parse_genlib("no gates here")


def test_pattern_inputs_order():
    tree = parse_expression_tree("!(c*a+b)")
    assert pattern_inputs(tree) == ["c", "a", "b"]


def test_evaluate_pattern_all_ops():
    tree = parse_expression_tree("!(a*b)^c")
    for a, b, c in itertools.product((False, True), repeat=3):
        expected = (not (a and b)) != c
        assert evaluate_pattern(tree, {"a": a, "b": b, "c": c}) == expected


def test_default_library_contents():
    library = default_library()
    names = {gate.name for gate in library}
    for expected in (
        "inv1",
        "nand2",
        "nand3",
        "nand4",
        "nor2",
        "and2",
        "or2",
        "xor2",
        "xnor2",
        "aoi21",
        "oai21",
        "zero",
        "one",
    ):
        assert expected in names


def test_default_library_functions_are_correct():
    library = default_library()
    cases = {
        "nand2": lambda a, b: not (a and b),
        "nor2": lambda a, b: not (a or b),
        "xor2": lambda a, b: a != b,
        "xnor2": lambda a, b: a == b,
        "and2": lambda a, b: a and b,
        "or2": lambda a, b: a or b,
    }
    for name, fn in cases.items():
        gate = library[name]
        inputs = pattern_inputs(gate.pattern)
        assert len(inputs) == 2
        for a, b in itertools.product((False, True), repeat=2):
            assignment = dict(zip(inputs, (a, b)))
            assert evaluate_pattern(gate.pattern, assignment) == fn(a, b)


def test_aoi_gates():
    library = default_library()
    aoi21 = library["aoi21"]
    inputs = pattern_inputs(aoi21.pattern)
    for a, b, c in itertools.product((False, True), repeat=3):
        assignment = dict(zip(inputs, (a, b, c)))
        assert evaluate_pattern(aoi21.pattern, assignment) == (
            not ((a and b) or c)
        )


def test_area_ladder_is_monotone():
    library = default_library()
    assert library["inv1"].area < library["nand2"].area
    assert library["nand2"].area < library["nand3"].area < library["nand4"].area
    assert library["nand2"].area < library["xor2"].area


def test_gate_n_inputs():
    library = default_library()
    assert library["inv1"].n_inputs == 1
    assert library["nand3"].n_inputs == 3
    assert library["aoi22"].n_inputs == 4


def test_duplicate_names_rejected():
    gate = Gate("dup", 1.0, "O", ("var", "a"))
    from repro.techmap.genlib import GateLibrary

    with pytest.raises(ValueError):
        GateLibrary([gate, gate])


def test_cheapest_diagnostic():
    library = default_library()
    cheapest = library.cheapest()
    assert cheapest["not"] == 1.0  # the inverter
