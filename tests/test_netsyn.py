"""Multi-output network synthesis with cross-output divisor sharing."""

import pytest

from repro.bdd.serialize import function_fingerprint
from repro.benchgen.registry import load_benchmark
from repro.boolfunc.isf import ISF
from repro.engine.cache import ResultCache
from repro.engine.wire import (
    netsyn_result_from_payload,
    netsyn_result_to_payload,
    network_from_payload,
    network_to_payload,
)
from repro.netsyn import (
    DivisorPool,
    NetsynConfig,
    NetworkSynthesizer,
    schedule_by_overlap,
    synthesize_instance,
)
from tests.conftest import fresh_manager, isf_from_masks


def assignment_of(minterm: int, names) -> dict[str, bool]:
    n = len(names)
    return {
        name: bool((minterm >> (n - 1 - i)) & 1)
        for i, name in enumerate(names)
    }


def network_matches_outputs(instance, network) -> bool:
    """Exhaustively compare every network output with its truth table."""
    names = instance.mgr.var_names
    for minterm in range(1 << len(names)):
        values = network.evaluate(assignment_of(minterm, names))
        for index, isf in enumerate(instance.outputs):
            if values[f"o{index}"] != bool(isf.on(minterm)):
                return False
    return True


# ---------------------------------------------------------------------------
# DivisorPool
# ---------------------------------------------------------------------------


def test_pool_direct_and_complement_hits():
    mgr = fresh_manager(3)
    pool = DivisorPool()
    f = mgr.var("x1") & mgr.var("x2")
    pool.register(f, node=7)
    assert pool.lookup(f) == (7, False)
    assert pool.lookup(~f) == (7, True)
    assert pool.lookup(mgr.var("x3")) is None
    assert pool.stats["hits"] == 2
    assert pool.stats["complement_hits"] == 1
    assert pool.stats["registered"] == 1


def test_pool_registration_keeps_first_entry():
    mgr = fresh_manager(2)
    pool = DivisorPool()
    f = mgr.var("x1")
    pool.register(f, node=3)
    pool.register(f, node=9)  # duplicate: ignored
    pool.register(~f, node=9)  # complement already indexed: ignored
    assert pool.lookup(f) == (3, False)
    assert len(pool) == 1


def test_pool_interval_completion_hit():
    mgr = fresh_manager(3)
    pool = DivisorPool()
    g = mgr.var("x1")
    pool.register(g, node=4)
    # x1 is a completion of the interval [x1 & x2, x1]: on = x1 & x2,
    # dc = x1 & ~x2.
    isf = ISF(mgr.var("x1") & mgr.var("x2"), mgr.var("x1") & ~mgr.var("x2"))
    hit = pool.lookup_completion(isf)
    assert hit is not None
    node, complemented, function = hit
    assert node == 4 and complemented is False and function == g
    assert pool.stats["interval_hits"] == 1


def test_pool_interval_complement_completion():
    mgr = fresh_manager(2)
    pool = DivisorPool()
    g = mgr.var("x1")
    pool.register(g, node=2)
    # ~x1 completes [~x1 & x2, ~x1].
    isf = ISF(~mgr.var("x1") & mgr.var("x2"), ~mgr.var("x1") & ~mgr.var("x2"))
    hit = pool.lookup_completion(isf)
    assert hit is not None
    node, complemented, function = hit
    assert node == 2 and complemented is True and function == ~g


def test_pool_interval_matching_can_be_disabled():
    mgr = fresh_manager(2)
    pool = DivisorPool(match_intervals=False)
    pool.register(mgr.var("x1"), node=1)
    isf = ISF(mgr.var("x1") & mgr.var("x2"), mgr.var("x1") & ~mgr.var("x2"))
    assert pool.lookup_completion(isf) is None
    assert pool.stats["interval_lookups"] == 0


def test_pool_completely_specified_goes_through_hash_index():
    mgr = fresh_manager(2)
    pool = DivisorPool()
    f = mgr.var("x1") ^ mgr.var("x2")
    pool.register(f, node=5)
    hit = pool.lookup_completion(ISF.completely_specified(~f))
    assert hit == (5, True, ~f)
    assert pool.stats["interval_lookups"] == 0


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def test_schedule_starts_narrow_and_follows_overlap():
    mgr = fresh_manager(4)
    x1, x2, x3, x4 = (mgr.var(f"x{i}") for i in range(1, 5))
    outputs = [
        ISF.completely_specified(x1 & x2 & x3),  # support {1,2,3}
        ISF.completely_specified(x4),  # support {4} — narrowest
        ISF.completely_specified(x3 & x4),  # overlaps the narrow one
    ]
    order = schedule_by_overlap(outputs)
    assert order[0] == 1  # smallest support first
    assert order[1] == 2  # max overlap with covered {x4}
    assert order[2] == 0


def test_schedule_is_deterministic_and_complete():
    instance = load_benchmark("z4")
    first = schedule_by_overlap(instance.outputs)
    second = schedule_by_overlap(instance.outputs)
    assert first == second
    assert sorted(first) == list(range(len(instance.outputs)))


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def z4_net():
    return load_benchmark("z4"), synthesize_instance(load_benchmark("z4"))


def test_synthesized_network_matches_every_output(z4_net):
    instance, result = z4_net
    assert network_matches_outputs(instance, result.network)


def test_newtpla2_network_matches_and_shares():
    instance = load_benchmark("newtpla2")
    result = synthesize_instance(instance)
    assert network_matches_outputs(instance, result.network)
    assert result.shared_area < result.isolated_area
    assert result.shared_gate_count < result.isolated_gate_count


def test_shared_area_never_exceeds_isolated(z4_net):
    _instance, result = z4_net
    assert result.shared_area <= result.isolated_area
    assert 0.0 <= result.saving_pct <= 100.0


def test_per_output_provenance_recorded(z4_net):
    _instance, result = z4_net
    assert [record["name"] for record in result.per_output] == [
        f"o{i}" for i in range(4)
    ]
    assert all(
        record["source"] in ("pool", "decomposition", "cover")
        for record in result.per_output
    )
    # z4 is arithmetic: at least one output must actually decompose.
    assert any(r["source"] == "decomposition" for r in result.per_output)


def test_recursion_respects_literal_threshold_and_depth():
    instance = load_benchmark("z4")
    flat = synthesize_instance(
        load_benchmark("z4"), config=NetsynConfig(literal_threshold=10**6)
    )
    # With an absurd threshold every output is a plain cover.
    assert all(r["source"] == "cover" for r in flat.per_output)
    assert network_matches_outputs(instance, flat.network)
    deep = synthesize_instance(
        load_benchmark("z4"),
        config=NetsynConfig(literal_threshold=1, max_depth=3),
    )
    assert network_matches_outputs(load_benchmark("z4"), deep.network)


def test_parallel_prefetch_builds_identical_network(z4_net):
    _instance, serial = z4_net
    parallel = synthesize_instance(load_benchmark("z4"), jobs=2)
    assert network_to_payload(parallel.network) == network_to_payload(
        serial.network
    )
    assert parallel.shared_area == serial.shared_area


def test_backends_build_identical_networks(z4_net):
    _instance, bdd_result = z4_net
    bitset_result = synthesize_instance(
        load_benchmark("z4"), config=NetsynConfig(backend="bitset")
    )
    assert network_to_payload(bitset_result.network) == network_to_payload(
        bdd_result.network
    )


def test_pool_reuses_duplicate_outputs():
    # A synthetic instance with duplicate and complementary outputs: the
    # pool must serve o1 (same function) and o2 (complement) for free.
    instance = load_benchmark("newtpla2")
    f = instance.outputs[0]
    instance.outputs = [f, ISF.completely_specified(f.on), ~f]
    result = synthesize_instance(instance)
    assert result.pool_stats["hits"] >= 2
    assert result.pool_stats["complement_hits"] >= 1
    sources = {r["name"]: r["source"] for r in result.per_output}
    assert sources["o1"] == "pool" or sources["o0"] == "pool"
    names = instance.mgr.var_names
    for minterm in range(1 << len(names)):
        values = result.network.evaluate(assignment_of(minterm, names))
        assert values["o1"] == bool(f.on(minterm))
        assert values["o2"] == (not bool(f.on(minterm)))


def test_synthesizer_rejects_none_minimizer():
    with pytest.raises(ValueError):
        NetworkSynthesizer(NetsynConfig(minimizer="none"))


# ---------------------------------------------------------------------------
# Wire round trips + cache
# ---------------------------------------------------------------------------


def test_network_payload_round_trip(z4_net):
    instance, result = z4_net
    payload = network_to_payload(result.network)
    rebuilt = network_from_payload(payload)
    assert network_matches_outputs(instance, rebuilt)
    assert network_to_payload(rebuilt) == payload


def test_netsyn_result_payload_round_trip(z4_net):
    instance, result = z4_net
    payload = netsyn_result_to_payload(result)
    rebuilt = netsyn_result_from_payload(payload)
    assert rebuilt.shared_area == result.shared_area
    assert rebuilt.isolated_area == result.isolated_area
    assert rebuilt.pool_stats == result.pool_stats
    assert rebuilt.per_output == result.per_output
    assert network_matches_outputs(instance, rebuilt.network)


def test_cache_round_trip_and_cross_backend_warmth(tmp_path):
    cold = synthesize_instance(
        load_benchmark("z4"),
        config=NetsynConfig(backend="bdd"),
        cache=tmp_path,
    )
    warm = synthesize_instance(
        load_benchmark("z4"),
        config=NetsynConfig(backend="bitset"),
        cache=tmp_path,
    )
    assert not cold.cached and warm.cached
    assert warm.shared_area == cold.shared_area
    assert network_to_payload(warm.network) == network_to_payload(cold.network)
    assert network_matches_outputs(load_benchmark("z4"), warm.network)


def test_netsyn_cache_key_covers_config_but_not_backend():
    fingerprints = ["aa", "bb"]
    base = NetsynConfig()
    assert ResultCache.netsyn_key_for(
        fingerprints, base.key_payload()
    ) == ResultCache.netsyn_key_for(
        fingerprints, NetsynConfig(backend="bitset").key_payload()
    )
    assert ResultCache.netsyn_key_for(
        fingerprints, base.key_payload()
    ) != ResultCache.netsyn_key_for(
        fingerprints, NetsynConfig(literal_threshold=3).key_payload()
    )
    assert ResultCache.netsyn_key_for(
        fingerprints, base.key_payload()
    ) != ResultCache.netsyn_key_for(["aa"], base.key_payload())


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    result = synthesize_instance(load_benchmark("z4"), cache=tmp_path)
    assert not result.cached
    for entry in tmp_path.glob("*/*.json"):
        entry.write_text("{broken")
    recomputed = synthesize_instance(load_benchmark("z4"), cache=tmp_path)
    assert not recomputed.cached
    assert recomputed.shared_area == result.shared_area


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


def test_harness_synthesize_network_entry_point():
    from repro.harness.experiment import synthesize_network

    result = synthesize_network("newtpla2")
    assert result.name == "newtpla2"
    assert result.shared_area <= result.isolated_area


def test_render_network_results(z4_net):
    from repro.harness.tables import render_network_results

    _instance, result = z4_net
    text = render_network_results([result])
    assert "z4" in text
    assert "Shared" in text and "Isolated" in text
    assert "total" in text


def test_realized_functions_are_fingerprint_stable():
    # The pool keys must be the canonical serializer's fingerprints —
    # the same primitive the result cache hashes — so cross-backend
    # sharing is sound by construction.
    mgr = fresh_manager(2)
    f = mgr.var("x1") & mgr.var("x2")
    pool = DivisorPool()
    pool.register(f, node=1)
    assert pool.entries[0].fingerprint == function_fingerprint(f)


def test_parallel_prefetch_skips_below_threshold_outputs():
    synthesizer = NetworkSynthesizer(NetsynConfig(literal_threshold=10**6))
    result = synthesizer.synthesize(load_benchmark("z4"), jobs=2)
    # Nothing is above the threshold, so nothing may reach the pool.
    assert synthesizer.engine.stats["dispatched"] == 0
    assert all(r["source"] == "cover" for r in result.per_output)


def test_parallel_falls_back_to_serial_when_batch_search_fails(monkeypatch):
    from repro.engine.decomposer import AutoSearchError, Decomposer

    serial = synthesize_instance(load_benchmark("z4"))

    def explode(self, *args, **kwargs):
        raise AutoSearchError("no operator fits")

    monkeypatch.setattr(Decomposer, "decompose_many", explode)
    recovered = synthesize_instance(load_benchmark("z4"), jobs=2)
    assert network_to_payload(recovered.network) == network_to_payload(
        serial.network
    )


# ---------------------------------------------------------------------------
# Warm-cover pool snapshots (cross-request sharing)
# ---------------------------------------------------------------------------


def test_pool_snapshot_merge_round_trip():
    from repro.netsyn.pool import POOL_SNAPSHOT_FORMAT

    pool = DivisorPool(collect_covers=True)
    payload = {"kind": "sop", "n_vars": 2, "cubes": [[1, 0]]}
    pool.remember_cover("spp|abc", payload)
    pool.remember_cover("spp|abc", {"kind": "sop", "n_vars": 2, "cubes": []})
    snapshot = pool.snapshot()
    assert snapshot["format"] == POOL_SNAPSHOT_FORMAT
    assert snapshot["covers"] == {"spp|abc": payload}  # first write wins

    other = DivisorPool()
    assert other.warm_cover("spp|abc") is None  # empty: not even a lookup
    assert other.stats["warm_lookups"] == 0
    assert other.merge(snapshot) == 1
    assert other.collect_covers  # merging implies participation
    assert other.warm_cover("spp|abc") == payload
    assert other.warm_cover("spp|missing") is None
    assert other.stats == {
        **other.stats,
        "warm_lookups": 2,
        "warm_hits": 1,
        "warm_imported": 1,
    }
    assert other.merge(snapshot) == 0  # re-import is idempotent
    assert other.merge(None) == 0


def test_pool_merge_rejects_foreign_snapshots():
    from repro.bdd.serialize import SerializationError

    pool = DivisorPool()
    with pytest.raises(SerializationError):
        pool.merge({"format": "something-else/1", "covers": {}})
    with pytest.raises(SerializationError):
        pool.merge({"format": "repro-pool/1", "covers": ["not", "a", "dict"]})


def test_collect_covers_off_skips_bookkeeping():
    pool = DivisorPool()
    pool.remember_cover("spp|abc", {"kind": "sop", "n_vars": 1, "cubes": []})
    assert pool.snapshot()["covers"] == {}


def test_warm_pool_replay_builds_identical_network():
    config = NetsynConfig(backend="bdd")
    first = NetworkSynthesizer(config)
    cold = first.synthesize(load_benchmark("z4"), collect_covers=True)
    seed = first.last_pool.snapshot()
    assert seed["covers"]  # the run remembered its minimized covers

    second = NetworkSynthesizer(config)
    warm = second.synthesize(load_benchmark("z4"), pool_seed=seed)
    assert warm.pool_stats["warm_hits"] > 0
    assert network_to_payload(warm.network) == network_to_payload(cold.network)
    assert warm.per_output == cold.per_output
    assert warm.shared_area == cold.shared_area
    assert warm.isolated_area == cold.isolated_area


def test_cache_hit_leaves_no_last_pool(tmp_path):
    synthesizer = NetworkSynthesizer(NetsynConfig())
    synthesizer.synthesize(load_benchmark("z4"), cache=tmp_path)
    assert synthesizer.last_pool is not None
    cached = synthesizer.synthesize(load_benchmark("z4"), cache=tmp_path)
    assert cached.cached
    assert synthesizer.last_pool is None
