"""Tests for Minato-Morreale ISOP extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.ops import count_nodes_dag, isop
from repro.boolfunc.convert import truthtable_to_function
from repro.boolfunc.truthtable import TruthTable
from tests.conftest import fresh_manager

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


def function_from_bits(mgr, bits):
    return truthtable_to_function(mgr, TruthTable(mgr.n_vars, bits))


@given(tt_bits, tt_bits)
@settings(max_examples=60, deadline=None)
def test_isop_respects_bounds(bits_lower, bits_extra):
    mgr = fresh_manager(4)
    lower = function_from_bits(mgr, bits_lower & ~bits_extra)
    upper = function_from_bits(mgr, bits_lower | bits_extra)
    cubes, realized = isop(lower, upper)
    assert lower <= realized
    assert realized <= upper
    # The cube list and the realized BDD agree.
    rebuilt = mgr.false
    for cube in cubes:
        rebuilt = rebuilt | mgr.cube(cube)
    assert rebuilt == realized


def test_isop_exact_when_bounds_coincide():
    mgr = fresh_manager(4)
    f = function_from_bits(mgr, 0b0110_1001_1001_0110)  # xor-ish
    cubes, realized = isop(f, f)
    assert realized == f
    assert len(cubes) == 8  # 4-variable parity needs 8 products


def test_isop_constant_cases():
    mgr = fresh_manager(3)
    cubes, realized = isop(mgr.false, mgr.false)
    assert cubes == [] and realized.is_false
    cubes, realized = isop(mgr.true, mgr.true)
    assert cubes == [{}] and realized.is_true


def test_isop_rejects_bad_bounds():
    mgr = fresh_manager(3)
    with pytest.raises(ValueError):
        isop(mgr.true, mgr.false)


def test_isop_rejects_mixed_managers():
    mgr_a = fresh_manager(2)
    mgr_b = fresh_manager(2)
    with pytest.raises(ValueError):
        isop(mgr_a.false, mgr_b.true)


def test_isop_uses_dc_to_simplify():
    mgr = fresh_manager(4)
    # on = one minterm, dc = the rest of a cube: ISOP may output the cube.
    lower = mgr.minterm(0b1111)
    upper = mgr.cube({"x1": 1})
    cubes, realized = isop(lower, upper)
    assert lower <= realized <= upper
    total_literals = sum(len(cube) for cube in cubes)
    assert total_literals <= 4  # far fewer than the 4-literal minterm alone


def test_count_nodes_dag():
    mgr = fresh_manager(3)
    f = mgr.var("x1") & mgr.var("x2")
    g = mgr.var("x1") & mgr.var("x2") | mgr.var("x3")
    shared = count_nodes_dag([f, g])
    assert shared <= f.size() + g.size()
    assert count_nodes_dag([]) == 0
