"""Tests for the multi-level logic network."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover.cover import Cover
from repro.cover.cube import Cube
from repro.spp.pseudocube import Pseudocube, make_xor_factor
from repro.spp.spp_cover import SppCover
from repro.techmap.network import LogicNetwork
from tests.conftest import fresh_manager

cover_strategy = st.builds(
    lambda rows: Cover(4, [Cube.from_string("".join(r)) for r in rows]),
    st.lists(
        st.lists(st.sampled_from("01-"), min_size=4, max_size=4),
        min_size=0,
        max_size=5,
    ),
)


def assignment_of(minterm: int, names) -> dict[str, bool]:
    n = len(names)
    return {name: bool((minterm >> (n - 1 - i)) & 1) for i, name in enumerate(names)}


def test_structural_hashing_shares_nodes():
    net = LogicNetwork(["a", "b"])
    left = net.binary("and", net.input_id("a"), net.input_id("b"))
    right = net.binary("and", net.input_id("a"), net.input_id("b"))
    assert left == right


def test_double_negation_collapses():
    net = LogicNetwork(["a"])
    a = net.input_id("a")
    assert net.negate(net.negate(a)) == a


def test_constant_simplifications():
    net = LogicNetwork(["a"])
    a = net.input_id("a")
    one = net.const(1)
    zero = net.const(0)
    assert net.binary("and", a, one) == a
    assert net.binary("and", a, zero) == zero
    assert net.binary("or", a, zero) == a
    assert net.binary("or", a, one) == one
    assert net.binary("xor", a, zero) == a
    assert net.nodes[net.binary("xor", a, one)].kind == "not"
    assert net.negate(zero) == one


def test_chain_empty_operands():
    net = LogicNetwork(["a"])
    assert net.nodes[net.chain("and", [])].kind == "const1"
    assert net.nodes[net.chain("or", [])].kind == "const0"


@given(cover_strategy)
@settings(max_examples=50, deadline=None)
def test_cover_network_matches_semantics(cover):
    names = ["x1", "x2", "x3", "x4"]
    net = LogicNetwork(names)
    net.add_cover(cover, "f")
    for m in range(16):
        got = net.evaluate(assignment_of(m, names))["f"]
        assert got == cover.contains_minterm(m)


def test_spp_network_matches_semantics():
    mgr = fresh_manager(4)
    names = list(mgr.var_names)
    pc1 = Pseudocube(4, pos=0b0001, xors=frozenset({make_xor_factor(2, 3, 1)}))
    pc2 = Pseudocube(4, neg=0b0010, xors=frozenset({make_xor_factor(2, 3, 0)}))
    cover = SppCover(4, [pc1, pc2])
    net = LogicNetwork(names)
    net.add_spp_cover(cover, "f")
    reference = cover.to_function(mgr)
    for m in range(16):
        assert net.evaluate(assignment_of(m, names))["f"] == reference(m)


def test_fanout_counts():
    net = LogicNetwork(["a", "b"])
    a, b = net.input_id("a"), net.input_id("b")
    both = net.binary("and", a, b)
    net.set_output("f", net.binary("or", both, net.binary("xor", both, a)))
    counts = net.fanout_counts()
    assert counts[both] == 2  # used by the OR and the XOR


def test_gate_count_excludes_inputs_and_constants():
    net = LogicNetwork(["a", "b"])
    net.set_output("f", net.binary("and", net.input_id("a"), net.input_id("b")))
    assert net.gate_count() == 1


def test_empty_cover_output_is_constant():
    net = LogicNetwork(["x1", "x2", "x3", "x4"])
    net.add_cover(Cover(4, []), "f")
    assert not net.evaluate(assignment_of(0, ["x1", "x2", "x3", "x4"]))["f"]


def test_shared_cubes_across_outputs_share_structure():
    cover = Cover.from_strings(["11--"])
    net = LogicNetwork(["x1", "x2", "x3", "x4"])
    first_root = net.add_cover(cover, "f")
    node_count = len(net.nodes)
    second_root = net.add_cover(cover, "g")
    assert first_root == second_root
    assert len(net.nodes) == node_count  # nothing new allocated


def test_commutative_operands_share_one_node():
    net = LogicNetwork(["a", "b"])
    a, b = net.input_id("a"), net.input_id("b")
    for kind in ("and", "or", "xor"):
        assert net.binary(kind, a, b) == net.binary(kind, b, a)


def test_idempotent_and_complement_folding():
    net = LogicNetwork(["a", "b"])
    a = net.input_id("a")
    not_a = net.negate(a)
    assert net.binary("and", a, a) == a
    assert net.binary("or", a, a) == a
    assert net.nodes[net.binary("xor", a, a)].kind == "const0"
    assert net.nodes[net.binary("and", a, not_a)].kind == "const0"
    assert net.nodes[net.binary("and", not_a, a)].kind == "const0"
    assert net.nodes[net.binary("or", a, not_a)].kind == "const1"
    assert net.nodes[net.binary("xor", a, not_a)].kind == "const1"


def test_operator_root_realizes_all_table1_rows():
    from repro.core.operators import OPERATORS

    names = ["a", "b"]
    for op in OPERATORS.values():
        net = LogicNetwork(names)
        root = net.operator_root(
            op.truth_row(), net.input_id("a"), net.input_id("b")
        )
        net.set_output("f", root)
        for m in range(4):
            want = op((m >> 1) & 1, m & 1)
            got = net.evaluate(assignment_of(m, names))["f"]
            assert got == want, op.name


def test_extract_cone_is_isolated_and_equivalent():
    cover = Cover.from_strings(["11--", "--11"])
    other = Cover.from_strings(["1-1-"])
    names = ["x1", "x2", "x3", "x4"]
    net = LogicNetwork(names)
    net.add_cover(cover, "f")
    net.add_cover(other, "g")
    cone = net.extract_cone("f")
    assert set(cone.outputs) == {"f"}
    for m in range(16):
        assignment = assignment_of(m, names)
        assert cone.evaluate(assignment)["f"] == net.evaluate(assignment)["f"]
    # The cone of f carries none of g's private logic.
    assert cone.gate_count() <= net.gate_count()


def test_extract_cone_handles_deep_chains():
    # A cover with many cubes yields a left-deep OR chain deeper than
    # Python's default recursion limit would tolerate recursively.
    n = 11
    names = [f"x{i + 1}" for i in range(n)]
    cubes = []
    for m in range(1500):
        pos = m % (1 << n) or 1
        neg = (~pos) & ((1 << n) - 1)
        cubes.append(Cube(n, pos, neg))
    net = LogicNetwork(names)
    net.add_cover(Cover(n, cubes), "f")
    cone = net.extract_cone("f")
    assert cone.gate_count() == net.gate_count()


def test_cover_root_does_not_set_output():
    net = LogicNetwork(["x1", "x2", "x3", "x4"])
    root = net.cover_root(Cover.from_strings(["11--"]))
    assert net.outputs == {}
    net.set_output("f", root)
    assert net.outputs == {"f": root}
