"""Tests for the operator registry (paper Table I)."""

import pytest

from repro.core.operators import (
    EXPERIMENT_OPERATORS,
    OPERATORS,
    TABLE_I_ORDER,
    ApproximationKind,
    operator_by_name,
)


def test_registry_has_exactly_ten_operators():
    assert len(OPERATORS) == 10
    assert set(TABLE_I_ORDER) == set(OPERATORS)


def test_all_operators_depend_on_both_inputs():
    for op in OPERATORS.values():
        row = op.truth_row()  # (00, 01, 10, 11)
        # Depends on h: some g where flipping h changes the output.
        assert row[0] != row[1] or row[2] != row[3]
        # Depends on g: some h where flipping g changes the output.
        assert row[0] != row[2] or row[1] != row[3]
        # Not constant.
        assert len(set(row)) > 1


def test_truth_rows_are_distinct():
    rows = {op.truth_row() for op in OPERATORS.values()}
    assert len(rows) == 10


def test_known_truth_tables():
    assert OPERATORS["AND"].truth_row() == (False, False, False, True)
    assert OPERATORS["OR"].truth_row() == (False, True, True, True)
    assert OPERATORS["XOR"].truth_row() == (False, True, True, False)
    assert OPERATORS["NAND"].truth_row() == (True, True, True, False)
    assert OPERATORS["NOR"].truth_row() == (True, False, False, False)
    assert OPERATORS["XNOR"].truth_row() == (True, False, False, True)
    assert OPERATORS["IMPLIES"].truth_row() == (True, True, False, True)
    assert OPERATORS["IMPLIED_BY"].truth_row() == (True, False, True, True)
    assert OPERATORS["NOT_IMPLIES"].truth_row() == (False, False, True, False)
    assert OPERATORS["NOT_IMPLIED_BY"].truth_row() == (False, True, False, False)


def test_de_morgan_families():
    """Section III: 4 AND-like, 4 OR-like, 2 XOR-like operators."""
    and_like = {"AND", "NOT_IMPLIED_BY", "NOT_IMPLIES", "NOR"}
    or_like = {"OR", "IMPLIES", "IMPLIED_BY", "NAND"}
    xor_like = {"XOR", "XNOR"}
    for name in and_like:
        # Exactly one output-1 row: an AND of (possibly complemented) inputs.
        assert sum(OPERATORS[name].truth_row()) == 1
    for name in or_like:
        assert sum(OPERATORS[name].truth_row()) == 3
    for name in xor_like:
        assert sum(OPERATORS[name].truth_row()) == 2


def test_approximation_kinds_match_table2():
    assert OPERATORS["AND"].approximation is ApproximationKind.OVER_F
    assert OPERATORS["NOT_IMPLIES"].approximation is ApproximationKind.OVER_F
    assert (
        OPERATORS["NOT_IMPLIED_BY"].approximation
        is ApproximationKind.UNDER_COMPLEMENT
    )
    assert OPERATORS["NOR"].approximation is ApproximationKind.UNDER_COMPLEMENT
    assert OPERATORS["OR"].approximation is ApproximationKind.UNDER_F
    assert OPERATORS["IMPLIED_BY"].approximation is ApproximationKind.UNDER_F
    assert OPERATORS["IMPLIES"].approximation is ApproximationKind.OVER_COMPLEMENT
    assert OPERATORS["NAND"].approximation is ApproximationKind.OVER_COMPLEMENT
    assert OPERATORS["XOR"].approximation is ApproximationKind.ANY
    assert OPERATORS["XNOR"].approximation is ApproximationKind.ANY


def test_error_set_location_annotations():
    # Table II: per operator, the error set appears in h_on or h_off.
    assert OPERATORS["AND"].error_in == "off"
    assert OPERATORS["OR"].error_in == "on"
    assert OPERATORS["NOT_IMPLIES"].error_in == "on"
    assert OPERATORS["XOR"].error_in == "on"


def test_operator_call_applies_truth():
    op = OPERATORS["NOT_IMPLIES"]
    assert op(1, 0) is True
    assert op(1, 1) is False
    assert op(0, 0) is False


def test_lookup_aliases():
    assert operator_by_name("and") is OPERATORS["AND"]
    assert operator_by_name("NIMPLY") is OPERATORS["NOT_IMPLIES"]
    assert operator_by_name("=>") is OPERATORS["IMPLIES"]
    assert operator_by_name("<=") is OPERATORS["IMPLIED_BY"]


def test_lookup_unknown():
    with pytest.raises(KeyError):
        operator_by_name("MAJORITY")


def test_experiment_operators_are_the_papers():
    assert EXPERIMENT_OPERATORS == ("AND", "NOT_IMPLIES")
