"""Unit and property tests for the ROBDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import BDD
from tests.conftest import fresh_manager

tt_bits4 = st.integers(min_value=0, max_value=2**16 - 1)


def build_from_bits(mgr: BDD, bits: int):
    """Construct a function from truth-table bits via minterm union."""
    f = mgr.false
    for m in range(1 << mgr.n_vars):
        if (bits >> m) & 1:
            f = f | mgr.minterm(m)
    return f


class TestConstruction:
    def test_constants(self):
        mgr = fresh_manager(3)
        assert mgr.false.is_false and not mgr.false.is_true
        assert mgr.true.is_true and not mgr.true.is_false

    def test_variable_projection(self):
        mgr = fresh_manager(3)
        x1 = mgr.var("x1")
        # x1 is the MSB of the minterm index.
        for m in range(8):
            assert x1(m) == bool(m & 0b100)

    def test_var_at_matches_var(self):
        mgr = fresh_manager(4)
        for i, name in enumerate(mgr.var_names):
            assert mgr.var_at(i) == mgr.var(name)

    def test_duplicate_variable_rejected(self):
        mgr = fresh_manager(2)
        with pytest.raises(ValueError):
            mgr.add_var("x1")

    def test_cube_construction(self):
        mgr = fresh_manager(4)
        cube = mgr.cube({"x1": 1, "x3": 0})
        for m in range(16):
            expected = bool(m & 0b1000) and not bool(m & 0b0010)
            assert cube(m) == expected

    def test_minterm_function(self):
        mgr = fresh_manager(4)
        for m in (0, 5, 11, 15):
            f = mgr.minterm(m)
            assert f.satcount() == 1
            assert list(f.minterms()) == [m]


class TestCanonicity:
    def test_equal_functions_share_nodes(self):
        mgr = fresh_manager(3)
        a = (mgr.var("x1") & mgr.var("x2")) | mgr.var("x3")
        b = mgr.var("x3") | (mgr.var("x2") & mgr.var("x1"))
        assert a == b
        assert a.node == b.node

    def test_demorgan(self):
        mgr = fresh_manager(3)
        x, y = mgr.var("x1"), mgr.var("x2")
        assert ~(x & y) == (~x | ~y)
        assert ~(x | y) == (~x & ~y)

    def test_double_negation(self):
        mgr = fresh_manager(3)
        f = mgr.var("x1") ^ mgr.var("x2")
        assert ~~f == f

    @given(tt_bits4, tt_bits4)
    @settings(max_examples=50, deadline=None)
    def test_binary_ops_match_bitwise(self, bits_a, bits_b):
        mgr = fresh_manager(4)
        a = build_from_bits(mgr, bits_a)
        b = build_from_bits(mgr, bits_b)
        for m in range(16):
            bit_a = bool((bits_a >> m) & 1)
            bit_b = bool((bits_b >> m) & 1)
            assert (a & b)(m) == (bit_a and bit_b)
            assert (a | b)(m) == (bit_a or bit_b)
            assert (a ^ b)(m) == (bit_a != bit_b)
            assert (a - b)(m) == (bit_a and not bit_b)
            assert (~a)(m) == (not bit_a)


class TestQueries:
    @given(tt_bits4)
    @settings(max_examples=50, deadline=None)
    def test_satcount_and_minterms(self, bits):
        mgr = fresh_manager(4)
        f = build_from_bits(mgr, bits)
        expected = [m for m in range(16) if (bits >> m) & 1]
        assert f.satcount() == len(expected)
        assert list(f.minterms()) == expected

    def test_support(self):
        mgr = fresh_manager(4)
        f = mgr.var("x1") & (mgr.var("x3") ^ mgr.var("x4"))
        assert f.support() == ("x1", "x3", "x4")
        assert mgr.true.support() == ()

    def test_size_counts_nodes(self):
        mgr = fresh_manager(3)
        assert mgr.true.size() == 1
        assert mgr.var("x1").size() == 3  # node + 2 terminals

    def test_evaluate_by_name(self):
        mgr = fresh_manager(3)
        f = mgr.var("x1") | mgr.var("x3")
        assert f.evaluate({"x1": 1, "x2": 0, "x3": 0})
        assert not f.evaluate({"x1": 0, "x2": 1, "x3": 0})

    def test_subset_ordering(self):
        mgr = fresh_manager(3)
        x, y = mgr.var("x1"), mgr.var("x2")
        assert (x & y) <= x
        assert x >= (x & y)
        assert (x & y) < x
        assert not x <= (x & y)
        assert x.disjoint(~x)


class TestCofactorsAndQuantifiers:
    @given(tt_bits4)
    @settings(max_examples=30, deadline=None)
    def test_shannon_expansion(self, bits):
        mgr = fresh_manager(4)
        f = build_from_bits(mgr, bits)
        for name in mgr.var_names:
            var = mgr.var(name)
            rebuilt = (var & f.cofactor(name, 1)) | (~var & f.cofactor(name, 0))
            assert rebuilt == f

    @given(tt_bits4)
    @settings(max_examples=30, deadline=None)
    def test_quantifier_duality(self, bits):
        mgr = fresh_manager(4)
        f = build_from_bits(mgr, bits)
        names = ["x2", "x4"]
        assert f.exists(names) == ~((~f).forall(names))
        assert f.exists(names) == (
            f.cofactor("x2", 0).cofactor("x4", 0)
            | f.cofactor("x2", 0).cofactor("x4", 1)
            | f.cofactor("x2", 1).cofactor("x4", 0)
            | f.cofactor("x2", 1).cofactor("x4", 1)
        )

    def test_restrict_multiple(self):
        mgr = fresh_manager(4)
        f = (mgr.var("x1") & mgr.var("x2")) ^ mgr.var("x4")
        g = f.restrict({"x1": 1, "x2": 1})
        assert g == ~mgr.var("x4")

    @given(tt_bits4, tt_bits4)
    @settings(max_examples=20, deadline=None)
    def test_compose_matches_pointwise(self, bits_f, bits_g):
        mgr = fresh_manager(4)
        f = build_from_bits(mgr, bits_f)
        g = build_from_bits(mgr, bits_g)
        composed = f.compose("x2", g)
        for m in range(16):
            # Replace bit of x2 (bit position 2 counting from MSB=x1).
            replaced = (m & ~0b0100) | (0b0100 if g(m) else 0)
            assert composed(m) == f(replaced)

    def test_ite(self):
        mgr = fresh_manager(3)
        c, a, b = mgr.var("x1"), mgr.var("x2"), mgr.var("x3")
        assert c.ite(a, b) == ((c & a) | (~c & b))


class TestErrors:
    def test_mixing_managers_rejected(self):
        mgr_a = fresh_manager(2)
        mgr_b = fresh_manager(2)
        with pytest.raises(ValueError):
            _ = mgr_a.var("x1") & mgr_b.var("x1")

    def test_unknown_variable(self):
        mgr = fresh_manager(2)
        with pytest.raises(KeyError):
            mgr.var("nope")
