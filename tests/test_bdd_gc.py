"""Complemented-edge invariants, computed-table eviction, and gc().

The manager rewrite changed the node representation (single terminal,
complement bit on edges) and added memory management (bounded computed
tables, mark-and-sweep collection rooted in weakly-tracked Function
handles).  These tests pin the new invariants; functional behavior is
covered by the original suites in ``test_bdd_manager.py`` etc.
"""

import pytest

from repro.bdd.manager import BDD, ComputedTable, Function
from repro.bdd.serialize import function_fingerprint
from tests.conftest import fresh_manager


# ---------------------------------------------------------------------------
# Complemented-edge invariants
# ---------------------------------------------------------------------------


class TestComplementedEdges:
    def test_negation_is_edge_flip(self):
        mgr = fresh_manager(4)
        f = (mgr.var("x1") & mgr.var("x2")) | mgr.var("x4")
        assert (~f).node == f.node ^ 1
        assert (~~f).node == f.node

    def test_constants_share_the_terminal(self):
        mgr = fresh_manager(2)
        assert mgr.false.node == 0
        assert mgr.true.node == 1
        assert mgr.true.node == mgr.false.node ^ 1

    def test_function_and_complement_share_nodes(self):
        mgr = fresh_manager(6)
        f = mgr.var("x1") ^ (mgr.var("x3") & mgr.var("x5"))
        before = mgr.node_count()
        g = ~f
        assert mgr.node_count() == before  # no new nodes for a negation
        assert (f | g).is_true and (f & g).is_false

    def test_stored_high_edges_are_regular(self):
        """The _mk normalization invariant behind canonicity."""
        mgr = fresh_manager(5)
        rngish = 0
        f = mgr.false
        for m in range(0, 32, 3):
            f = f | mgr.minterm(m)
            rngish ^= m
        g = ~f ^ mgr.var("x2")
        assert not g.is_false
        for (level, low, high), index in mgr._unique.items():
            assert high & 1 == 0, f"complemented high edge stored at {index}"
            assert mgr._level[index] == level

    def test_size_matches_complement_free_convention(self):
        mgr = fresh_manager(3)
        assert mgr.true.size() == 1
        assert mgr.var("x1").size() == 3
        assert (~mgr.var("x1")).size() == 3


# ---------------------------------------------------------------------------
# Computed tables
# ---------------------------------------------------------------------------


class TestComputedTables:
    def test_bounded_eviction(self):
        table = ComputedTable(8)
        for key in range(20):
            table.put(key, key)
        assert len(table.data) <= 8
        assert table.evictions > 0
        # Newest entries survive the batch eviction.
        assert 19 in table.data

    def test_eviction_does_not_change_results(self):
        big = fresh_manager(8)
        small = BDD([f"x{i + 1}" for i in range(8)], cache_size=64)
        build = lambda mgr: [
            (mgr.var("x1") & mgr.var("x2"))
            | (mgr.var("x3") ^ mgr.var("x4"))
            | (mgr.var("x5") & ~mgr.var("x6") & mgr.var(f"x{7 + (i % 2)}"))
            ^ mgr.minterm(i * 37 % 256)
            for i in range(40)
        ]
        fingerprints = [function_fingerprint(f) for f in build(big)]
        assert [function_fingerprint(f) for f in build(small)] == fingerprints
        assert small.stats()["tables"]["ite"]["evictions"] > 0

    def test_stats_report_all_tables(self):
        mgr = fresh_manager(4)
        f = mgr.var("x1") & mgr.var("x2")
        f.satcount()
        stats = mgr.stats()
        for name in ("ite", "test", "cofactor", "exists", "compose", "satcount"):
            assert set(stats["tables"][name]) == {
                "size", "capacity", "hits", "misses", "evictions",
            }
        assert stats["nodes"] == mgr.node_count()

    def test_user_tables_share_lifecycle(self):
        mgr = fresh_manager(4)
        table = mgr.computed_table("scratch", capacity=16)
        table.put(("k",), 42)
        assert mgr.computed_table("scratch") is table
        assert "user:scratch" in mgr.stats()["tables"]
        mgr.clear_caches()
        assert table.get(("k",)) is None


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------


class TestGc:
    def test_gc_reclaims_unreachable_nodes(self):
        mgr = fresh_manager(10)
        keep = mgr.var("x1") & mgr.var("x2")
        for m in range(200):
            _ = mgr.minterm(m % 1024) | keep  # garbage intermediates
        grown = mgr.node_count()
        report = mgr.gc()
        assert report["swept"] > 0
        assert mgr.node_count() < grown

    def test_gc_keeps_live_handles_intact(self):
        mgr = fresh_manager(6)
        f = (mgr.var("x1") ^ mgr.var("x3")) & ~mgr.var("x6")
        node_before = f.node
        truth = [f(m) for m in range(64)]
        fingerprint = function_fingerprint(f)
        for m in range(100):
            _ = mgr.minterm(m % 64) ^ f
        mgr.gc()
        # Node ids of live handles are never remapped (hash stability).
        assert f.node == node_before
        assert [f(m) for m in range(64)] == truth
        assert function_fingerprint(f) == fingerprint
        # The manager is fully usable afterwards: rebuilds recreate
        # swept structures through the unique table.
        assert (f ^ f).is_false
        assert (f | ~f).is_true
        assert mgr.var("x1") == mgr.var_at(0)

    def test_gc_recycles_slots(self):
        mgr = fresh_manager(8)
        for m in range(100):
            _ = mgr.minterm(m)
        mgr.gc()
        allocated = len(mgr._level)
        for m in range(50):
            _ = mgr.minterm(m)
        # New nodes reuse freed slots instead of growing the arrays.
        assert len(mgr._level) == allocated

    def test_gc_stats_counters(self):
        mgr = fresh_manager(4)
        _ = mgr.var("x1") & mgr.var("x2")
        mgr.gc()
        stats = mgr.stats()
        assert stats["gc_runs"] == 1
        assert stats["gc_reclaimed"] >= 0

    def test_decompose_many_gc_threshold(self):
        """The engine collects between requests past the threshold."""
        from repro.boolfunc.isf import ISF
        from repro.engine.decomposer import Decomposer
        from repro.utils.rng import make_rng

        mgr = fresh_manager(4)
        rng = make_rng("gc-threshold-batch")
        batch = [(f"r{i}", ISF.random(mgr, rng)) for i in range(4)]
        engine = Decomposer()
        results = engine.decompose_many(batch, op="AND", gc_threshold=1)
        assert all(r.verified for r in results)
        assert mgr.stats()["gc_runs"] >= 1

        # And the collected run matches an uncollected one exactly.
        mgr2 = fresh_manager(4)
        rng2 = make_rng("gc-threshold-batch")
        batch2 = [(f"r{i}", ISF.random(mgr2, rng2)) for i in range(4)]
        baseline = Decomposer().decompose_many(batch2, op="AND", gc_threshold=None)
        assert [function_fingerprint(r.decomposition.g) for r in results] == [
            function_fingerprint(r.decomposition.g) for r in baseline
        ]
        assert [r.literal_cost for r in results] == [r.literal_cost for r in baseline]

    def test_weakref_registry_compacts(self):
        mgr = fresh_manager(4)
        mgr._handle_limit = 128
        for m in range(2000):
            _ = mgr.minterm(m % 16)
        # Dead refs are dropped by the amortized compaction, so the
        # registry tracks the live population, not allocation history.
        assert len(mgr._handles) <= 2 * 128 + 16


class TestHandleRegistry:
    def test_live_minterm_iterator_survives_gc(self):
        """A minterms() generator must root its function: gc() while an
        iterator is outstanding (e.g. decompose_many's auto-gc) must not
        recycle the nodes being enumerated (regression)."""
        mgr = fresh_manager(6)
        f = mgr.var("x1") ^ mgr.var("x2") ^ mgr.var("x6")
        expected = list(f.minterms())
        iterator = (mgr.var("x1") ^ mgr.var("x2") ^ mgr.var("x6")).minterms()
        assert next(iterator) == expected[0]
        del f
        mgr.gc()
        for m in range(40):  # churn that reuses any freed slots
            _ = mgr.minterm(m) | mgr.var("x3")
        assert [next(iterator)] + list(iterator) == expected[1:]

    def test_direct_function_handles_are_gc_roots(self):
        """Function() constructed directly (not via operators) must be
        rooted too — convert.py builds handles this way."""
        mgr = fresh_manager(4)
        edge = mgr._mk(0, 0, 1)
        handle = Function(mgr, edge)
        mgr.gc()
        assert handle(0b1000) and not handle(0)


def test_node_count_excludes_free_slots():
    mgr = fresh_manager(6)
    for m in range(50):
        _ = mgr.minterm(m)
    mgr.gc()
    assert mgr.node_count() == len(mgr._level) - len(mgr._free)
    assert mgr.stats()["free_slots"] == len(mgr._free)


def test_pickling_functions_is_not_supported():
    """Handles carry a weakref slot; the serialize module is the wire
    format, not pickle."""
    import pickle

    mgr = fresh_manager(2)
    with pytest.raises(Exception):
        pickle.dumps(mgr.var("x1"))
