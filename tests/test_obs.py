"""Observability layer: span tracing, trace store, histograms, export.

The contract under test (ISSUE 10): with a tracer installed, every
request the service completes is reassembled into exactly one span
tree — server-side spans plus worker-side spans that crossed the
fleet's fork/pipe boundary — queryable over the wire (``trace`` kind),
exportable as Chrome trace-event JSON, and folded into per-site
Prometheus latency histograms with exemplar trace ids.  With no tracer
installed every instrumented site degrades to a shared no-op, and
decomposition payloads are byte-identical either way.

The fault-interplay half (satellite 4): a :class:`FaultPlan` and a
:class:`Tracer` installed together must agree — injected worker errors,
timeouts, and rate limits all surface as span statuses on the right
sites, and a coalesced follower's trace points at its leader's.
"""

import json
import math
import os

import pytest

from repro import obs
from repro.benchgen.registry import load_benchmark
from repro.engine import wire
from repro.obs import (
    DEFAULT_BUCKETS,
    LatencyHistograms,
    TraceStore,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import SPAN_SITES, STATUSES
from repro.service import DecompositionService, faults, render_prometheus
from repro.service.faults import FaultEvent, FaultPlan
from repro.service.metrics import render_histograms

from tests.test_chaos import drive_sequential
from tests.test_service import (
    INFORMATIONAL_RESULT_KEYS,
    drive,
    in_process_payload,
    stripped,
    work_item,
)


@pytest.fixture(scope="module")
def z4():
    return load_benchmark("z4")


@pytest.fixture(autouse=True)
def _no_tracer_leak():
    """Every test starts and ends with no process-wide tracer."""
    obs.uninstall()
    yield
    obs.uninstall()


def span_sites(record):
    return {span["site"] for span in record["spans"]}


def spans_at(record, site):
    return [span for span in record["spans"] if span["site"] == site]


# ---------------------------------------------------------------------------
# Tracer (unit)
# ---------------------------------------------------------------------------


def test_span_is_shared_noop_when_uninstalled():
    assert obs.active() is None
    first = obs.span("server.request")
    second = obs.span("cache.get", key="k")
    assert first is second  # one shared singleton, not per-call garbage
    with first as span:
        span.annotate(anything="goes")
        span.set_status("error")
        assert obs.current_context() is None
        assert obs.current_trace_id() is None
    assert span.trace_id is None


def test_spans_nest_into_one_serialized_tree():
    with obs.installed(Tracer()) as tracer:
        with obs.span("server.request", kind="decompose") as root:
            with obs.span("cache.get") as child:
                with obs.span("cache.journal"):
                    pass
            child.annotate(hit=False)
        spans = tracer.pop_trace(root.trace_id)
    assert [s["site"] for s in spans] == [
        "cache.journal",
        "cache.get",
        "server.request",
    ]  # finish order: leaves close first
    by_site = {s["site"]: s for s in spans}
    assert by_site["server.request"]["parent_id"] is None
    assert by_site["cache.get"]["parent_id"] == by_site["server.request"]["span_id"]
    assert by_site["cache.journal"]["parent_id"] == by_site["cache.get"]["span_id"]
    assert {s["trace_id"] for s in spans} == {root.trace_id}
    for span in spans:
        assert span["status"] == "ok"
        assert span["t1"] >= span["t0"]
        assert span["pid"] == os.getpid()
    assert by_site["server.request"]["attrs"] == {"kind": "decompose"}
    assert by_site["cache.get"]["attrs"] == {"hit": False}


def test_span_status_resolution():
    with obs.installed() as tracer:
        with pytest.raises(ValueError):
            with obs.span("engine.verify") as failing:
                raise ValueError("boom")
        with obs.span("fleet.roundtrip") as timed_out:
            timed_out.set_status("timeout")  # explicit status beats default
        with obs.span("cache.get"):
            pass
        statuses = {
            s["site"]: s["status"]
            for spans in (
                tracer.pop_trace(failing.trace_id),
                tracer.pop_trace(timed_out.trace_id),
            )
            for s in spans
        }
    assert statuses["engine.verify"] == "error"
    assert statuses["fleet.roundtrip"] == "timeout"
    assert set(statuses.values()) <= set(STATUSES)


def test_closed_spans_do_not_leak_into_the_context():
    with obs.installed():
        with obs.span("server.request"):
            assert obs.current_context() is not None
        assert obs.current_context() is None
        assert obs.current_trace_id() is None


def test_tracer_evicts_unharvested_traces_oldest_first():
    with obs.installed(Tracer(capacity=2)) as tracer:
        ids = []
        for _ in range(3):  # three separate root spans = three traces
            with obs.span("coalesce.leader") as root:
                pass
            ids.append(root.trace_id)
        stats = tracer.stats()
        assert stats["traces_buffered"] == 2
        assert stats["traces_dropped"] == 1
        assert tracer.pop_trace(ids[0]) == []  # the oldest fell off
        assert tracer.pop_trace(ids[2]) != []


def test_remote_scope_grafts_spans_under_a_shipped_parent():
    with obs.installed() as tracer:
        with obs.span("fleet.roundtrip") as parent:
            ctx = obs.current_context()
        assert ctx == {"trace_id": parent.trace_id, "span_id": parent.span_id}
        # Simulate the worker side of the pipe: same-process here, but the
        # grafting logic is identical after a fork.
        with tracer.remote(ctx):
            with obs.span("worker.compute", entry="decompose"):
                pass
        shipped = tracer.pop_trace(parent.trace_id)
    compute = next(s for s in shipped if s["site"] == "worker.compute")
    assert compute["trace_id"] == parent.trace_id
    assert compute["parent_id"] == parent.span_id


def test_absorb_merges_remote_spans_and_ignores_junk():
    with obs.installed() as tracer:
        with obs.span("server.request") as root:
            pass
        remote_span = {
            "trace_id": root.trace_id,
            "span_id": "s-remote",
            "parent_id": root.span_id,
            "site": "worker.compute",
            "t0": 0.0,
            "t1": 1.0,
            "status": "ok",
            "pid": 12345,
            "attrs": {},
        }
        obs.absorb([remote_span, {"no_trace_id": True}])
        spans = tracer.pop_trace(root.trace_id)
    assert {s["site"] for s in spans} == {"server.request", "worker.compute"}


def test_installed_is_scoped_and_restores_nothing():
    outer = Tracer()
    with obs.installed(outer) as active:
        assert active is outer
        assert obs.active() is outer
    assert obs.active() is None


def test_span_sites_registry_is_documentation_quality():
    assert len(SPAN_SITES) == len(set(SPAN_SITES))
    for site in SPAN_SITES:
        layer, _, name = site.partition(".")
        assert layer and name, site


# ---------------------------------------------------------------------------
# TraceStore (unit)
# ---------------------------------------------------------------------------


def record_of(trace_id, duration_s, kind="decompose"):
    return {
        "trace_id": trace_id,
        "kind": kind,
        "status": "ok",
        "t0": 100.0,
        "duration_s": duration_s,
        "spans": [],
    }


def test_trace_store_ring_and_queries():
    store = TraceStore(capacity=3)
    for index, duration in enumerate((0.5, 0.1, 0.9, 0.3)):
        store.add(record_of(f"t{index}", duration))
    stats = store.stats()
    assert stats == {"recorded": 4, "buffered": 3, "capacity": 3, "dropped": 1}
    recent = store.query(n=2, order="recent")
    assert [r["trace_id"] for r in recent] == ["t3", "t2"]
    slowest = store.query(n=10, order="slowest")
    assert [r["trace_id"] for r in slowest] == ["t2", "t3", "t1"]  # t0 evicted
    filtered = store.query(n=10, order="recent", min_duration_s=0.3)
    assert [r["trace_id"] for r in filtered] == ["t3", "t2"]


def test_trace_store_rejects_unknown_order():
    with pytest.raises(ValueError):
        TraceStore().query(order="fastest")


# ---------------------------------------------------------------------------
# Latency histograms + Prometheus rendering (satellite 2)
# ---------------------------------------------------------------------------


def test_histogram_buckets_are_cumulative_with_exemplars():
    hist = LatencyHistograms(buckets=(0.01, 0.1, 1.0))
    hist.observe("cache.get", 0.005, trace_id="t-fast")
    hist.observe("cache.get", 0.05, trace_id="t-mid")
    hist.observe("cache.get", 50.0, trace_id="t-slow")  # above every bound
    snap = hist.snapshot()["cache.get"]
    assert snap["buckets"] == [(0.01, 1), (0.1, 2), (1.0, 2), (math.inf, 3)]
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(50.055)
    assert snap["exemplars"][0] == (0.005, "t-fast")
    assert snap["exemplars"][3] == (50.0, "t-slow")


def test_observe_trace_folds_every_span():
    hist = LatencyHistograms()
    hist.observe_trace(
        {
            "trace_id": "t1",
            "spans": [
                {"site": "server.request", "t0": 0.0, "t1": 0.2},
                {"site": "cache.get", "t0": 0.0, "t1": 0.001},
                {"site": "cache.get", "t0": 0.1, "t1": 0.15},
                {"site": "broken", "t0": None, "t1": 0.5},  # skipped
            ],
        }
    )
    snap = hist.snapshot()
    assert snap["server.request"]["count"] == 1
    assert snap["cache.get"]["count"] == 2
    assert "broken" not in snap


def test_default_buckets_cover_the_stack_and_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] <= 0.0001  # cache probes
    assert DEFAULT_BUCKETS[-1] >= 10.0  # netsyn runs


def test_render_prometheus_types_counters_by_suffix():
    page = render_prometheus(
        {"cache": {"hits": 3, "size_bytes": 900}, "fleet": {"restarts": 1}}
    )
    assert "# TYPE repro_cache_hits counter" in page
    assert "# TYPE repro_cache_size_bytes gauge" in page
    assert "# TYPE repro_fleet_restarts counter" in page
    assert "repro_cache_hits 3" in page  # names unchanged from earlier revs


def test_render_histograms_emits_bucket_sum_count_and_exemplars():
    hist = LatencyHistograms(buckets=(0.01, 1.0))
    hist.observe("worker.compute", 0.5, trace_id="t42-7")
    lines = render_histograms(hist.snapshot())
    assert "# TYPE repro_span_latency_seconds histogram" in lines
    assert (
        'repro_span_latency_seconds_bucket{site="worker.compute",le="0.01"} 0'
        in lines
    )
    exemplar = (
        'repro_span_latency_seconds_bucket{site="worker.compute",le="1"} 1'
        ' # {trace_id="t42-7"} 0.5'
    )
    assert exemplar in lines
    assert (
        'repro_span_latency_seconds_bucket{site="worker.compute",le="+Inf"} 1'
        in lines
    )
    assert 'repro_span_latency_seconds_sum{site="worker.compute"} 0.5' in lines
    assert 'repro_span_latency_seconds_count{site="worker.compute"} 1' in lines
    assert render_histograms({}) == []


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def synthetic_record():
    return {
        "trace_id": "t1-abc",
        "kind": "decompose",
        "status": "ok",
        "t0": 1000.0,
        "duration_s": 0.3,
        "spans": [
            {
                "trace_id": "t1-abc",
                "span_id": "s1",
                "parent_id": None,
                "site": "server.request",
                "t0": 1000.0,
                "t1": 1000.3,
                "status": "ok",
                "pid": 10,
                "attrs": {"kind": "decompose"},
            },
            {
                "trace_id": "t1-abc",
                "span_id": "s2",
                "parent_id": "s1",
                "site": "worker.compute",
                "t0": 1000.1,
                "t1": 1000.2,
                "status": "ok",
                "pid": 11,
                "attrs": {},
            },
        ],
    }


def test_chrome_trace_is_schema_valid_and_rebased():
    document = chrome_trace([synthetic_record()])
    assert validate_chrome_trace(document) == []
    json.dumps(document)  # must be serializable as-is
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    assert {e["name"] for e in complete} == {"server.request", "worker.compute"}
    worker = next(e for e in complete if e["name"] == "worker.compute")
    assert worker["ts"] == pytest.approx(0.1e6)  # rebased to earliest span
    assert worker["dur"] == pytest.approx(0.1e6)
    assert worker["tid"] == 11  # thread = real OS pid
    assert worker["args"]["parent_id"] == "s1"
    # One process_name row per record, one thread_name row per pid seen.
    assert [e["name"] for e in metadata].count("process_name") == 1
    assert [e["name"] for e in metadata].count("thread_name") == 2


def test_validate_chrome_trace_flags_malformed_documents():
    assert validate_chrome_trace({}) == ["traceEvents is not a list"]
    problems = validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": "no"}]}
    )
    assert any("ts" in p for p in problems)
    assert any("dur" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [{"ph": "Q"}, 7]})
    assert any("unexpected ph" in p for p in problems)
    assert any("not an object" in p for p in problems)


# ---------------------------------------------------------------------------
# Service integration: one span tree per request, across fork + pipe
# ---------------------------------------------------------------------------


def decompose_envelope(z4, index=0, request_id="q0", **extra):
    params = {**work_item(z4.outputs[index], name=f"o{index}"), **extra}
    return wire.svc_request("decompose", params, request_id)


def test_service_reassembles_one_span_tree_per_request(z4, tmp_path):
    expected = in_process_payload(z4.outputs[0], name="o0")  # traced-off run
    with obs.installed():
        # Install BEFORE the fleet forks so workers inherit the tracer —
        # that is how worker/engine spans reach the far side of the pipe.
        service = DecompositionService(jobs=1, cache_dir=str(tmp_path))
        try:
            replies = drive_sequential(
                service,
                [
                    decompose_envelope(z4, 0, "q0"),
                    decompose_envelope(z4, 0, "q1"),  # cache hit
                ],
            )
        finally:
            service.close()
    assert [r["ok"] for r in replies] == [True, True]
    for reply in replies:
        # Tracing must never touch the result: byte-identical payloads.
        assert stripped(reply["result"], INFORMATIONAL_RESULT_KEYS) == stripped(
            expected, INFORMATIONAL_RESULT_KEYS
        )
        assert "trace" not in reply["result"]

    assert service.traces.stats()["recorded"] == 2
    computed, cached = service.traces.query(n=2, order="recent")[::-1]
    assert computed["kind"] == "decompose" and computed["status"] == "ok"
    assert computed["id"] == "q0" and cached["id"] == "q1"

    # The cold request crossed every layer, including the forked worker.
    assert {
        "server.request",
        "server.admission",
        "coalesce.leader",
        "cache.get",
        "cache.put",
        "cache.journal",
        "fleet.checkout",
        "fleet.roundtrip",
        "worker.compute",
        "engine.dispatch",
    } <= span_sites(computed)
    worker_pids = {
        s["pid"] for s in computed["spans"] if s["site"] == "worker.compute"
    }
    assert worker_pids and os.getpid() not in worker_pids
    # Every span hangs off the tree: one root, no dangling parents.
    ids = {s["span_id"] for s in computed["spans"]}
    roots = [s for s in computed["spans"] if s["parent_id"] is None]
    assert len(roots) == 1 and roots[0]["site"] == "server.request"
    for span in computed["spans"]:
        if span["parent_id"] is not None:
            assert span["parent_id"] in ids
    # All spans of one request share its trace id; engine spans ran in
    # the worker process but still landed in the same tree.
    assert {s["trace_id"] for s in computed["spans"]} == {computed["trace_id"]}
    engine_span = spans_at(computed, "engine.dispatch")[0]
    assert engine_span["pid"] in worker_pids

    # The warm request never left the server process.
    assert "fleet.roundtrip" not in span_sites(cached)
    assert {s["pid"] for s in cached["spans"]} == {os.getpid()}
    hit = spans_at(cached, "cache.get")[0]
    assert hit["attrs"].get("hit") is True

    # The histograms saw every span of both requests.
    snap = service.latency.snapshot()
    assert snap["server.request"]["count"] == 2
    assert snap["worker.compute"]["count"] == 1
    _value, exemplar_trace = next(iter(snap["server.request"]["exemplars"].values()))
    assert exemplar_trace in {computed["trace_id"], cached["trace_id"]}


def test_trace_kind_served_over_the_wire_protocol(z4, tmp_path):
    with obs.installed():
        service = DecompositionService(jobs=1, cache_dir=str(tmp_path))
        try:
            replies = drive_sequential(
                service,
                [
                    decompose_envelope(z4, 0, "q0"),
                    wire.svc_request(
                        "trace",
                        {"n": 5, "order": "slowest", "min_duration_s": 0.0},
                        "t0",
                    ),
                ],
            )
        finally:
            service.close()
        status = service.status()["trace"]
        assert status["enabled"] is True and status["recorded"] >= 1
    trace_reply = replies[1]
    assert trace_reply["ok"] is True
    result = trace_reply["result"]
    assert result["enabled"] is True
    assert result["recorded"] == 1
    assert len(result["traces"]) == 1
    assert "worker.compute" in span_sites(result["traces"][0])
    # The trace page feeds the exporter directly.
    assert validate_chrome_trace(chrome_trace(result["traces"])) == []


def test_tracing_off_records_nothing_and_status_says_so(z4):
    service = DecompositionService(jobs=1)
    try:
        replies = drive_sequential(
            service,
            [
                decompose_envelope(z4, 0, "q0"),
                wire.svc_request("trace", {"n": 5}, "t0"),
            ],
        )
    finally:
        service.close()
    assert replies[0]["ok"] is True
    result = replies[1]["result"]
    assert result["enabled"] is False
    assert result["recorded"] == 0 and result["traces"] == []


# ---------------------------------------------------------------------------
# Probe-param validation (satellite 3): junk params fail typed
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kind, params, fragment",
    [
        ("trace", {"n": 0}, "positive integer"),
        ("trace", {"n": "twenty"}, "positive integer"),
        ("trace", {"n": True}, "positive integer"),
        ("trace", {"order": "fastest"}, "order"),
        ("trace", {"min_duration_s": "slow"}, "min_duration_s"),
        ("trace", {"min_duration_s": -1}, "min_duration_s"),
        ("trace", {"n": 5, "surprise": 1}, "surprise"),
        ("resize", {"size": 2, "wat": True}, "wat"),
        ("metrics", {"format": "json"}, "format"),
        ("status", {"verbose": True}, "verbose"),
    ],
)
def test_junk_probe_params_fail_with_typed_bad_request(kind, params, fragment):
    service = DecompositionService(jobs=1, prewarm=False)
    try:
        reply = drive_sequential(
            service, [wire.svc_request(kind, params, "p0")]
        )[0]
    finally:
        service.close()
    assert reply["ok"] is False
    assert reply["error"]["type"] == "bad-request"
    assert fragment in reply["error"]["message"]
    assert reply["id"] == "p0"  # typed reply still pairs with the request


# ---------------------------------------------------------------------------
# Fault interplay (satellite 4): span statuses under injected faults
# ---------------------------------------------------------------------------


def test_injected_worker_error_marks_the_root_span(z4):
    plan = FaultPlan((FaultEvent("worker.compute", 0, "error"),))
    with obs.installed():
        with faults.installed(plan):
            service = DecompositionService(jobs=1)
            try:
                replies = drive_sequential(
                    service,
                    [
                        decompose_envelope(z4, 0, "q0"),
                        decompose_envelope(z4, 1, "q1"),
                    ],
                )
            finally:
                service.close()
    assert replies[0]["ok"] is False
    assert replies[0]["error"]["type"] == "InjectedFault"
    assert replies[1]["ok"] is True

    failed, recovered = service.traces.query(n=2, order="recent")[::-1]
    failed_root = spans_at(failed, "server.request")[0]
    assert failed_root["status"] == "error"
    assert failed_root["attrs"].get("error") == "InjectedFault"
    assert spans_at(recovered, "server.request")[0]["status"] == "ok"


def test_timed_out_request_marks_root_and_roundtrip_spans(z4):
    plan = FaultPlan((FaultEvent("worker.compute", 0, "sleep", param=30.0),))
    with obs.installed():
        with faults.installed(plan):
            service = DecompositionService(jobs=1)
            try:
                reply = drive_sequential(
                    service, [decompose_envelope(z4, 0, "q0", timeout_s=0.5)]
                )[0]
            finally:
                service.close()
    assert reply["ok"] is False
    assert reply["error"]["type"] == "timeout"

    record = service.traces.query(n=1)[0]
    assert record["status"] == "timeout"
    assert spans_at(record, "server.request")[0]["status"] == "timeout"
    assert spans_at(record, "fleet.roundtrip")[0]["status"] == "timeout"
    # The worker went dark: its spans never made it back over the pipe.
    assert "worker.compute" not in span_sites(record)


def test_killed_worker_is_retried_inside_the_same_trace(z4):
    plan = FaultPlan((FaultEvent("fleet.call.sent", 0, "kill-worker"),))
    with obs.installed():
        with faults.installed(plan):
            service = DecompositionService(jobs=1)
            try:
                reply = drive_sequential(
                    service, [decompose_envelope(z4, 0, "q0")]
                )[0]
            finally:
                service.close()
    assert reply["ok"] is True  # the fleet healed and retried
    record = service.traces.query(n=1)[0]
    roundtrip = spans_at(record, "fleet.roundtrip")[0]
    assert roundtrip["attrs"].get("retried") is True
    assert roundtrip["status"] == "ok"
    assert "worker.compute" in span_sites(record)  # the retry's spans


def test_rate_limited_request_traces_admission_only(z4):
    with obs.installed():
        service = DecompositionService(jobs=1, rate=0.0001, burst=1.0)
        try:
            replies = drive_sequential(
                service,
                [decompose_envelope(z4, 0, "q0"), decompose_envelope(z4, 0, "q1")],
            )
        finally:
            service.close()
    assert replies[0]["ok"] is True
    assert replies[1]["ok"] is False
    assert replies[1]["error"]["type"] == "rate-limited"

    limited = service.traces.query(n=1, order="recent")[0]
    assert limited["id"] == "q1" and limited["status"] == "error"
    # The request never got past admission: exactly two server-side spans.
    assert span_sites(limited) == {"server.request", "server.admission"}
    admission = spans_at(limited, "server.admission")[0]
    assert admission["attrs"].get("outcome") == "rate-limited"


def test_follower_trace_points_at_the_leaders_trace(z4):
    with obs.installed():
        service = DecompositionService(jobs=1)
        try:
            replies = drive(
                service,
                [decompose_envelope(z4, 0, f"q{i}") for i in range(3)],
            )
        finally:
            service.close()
    assert all(reply["ok"] for reply in replies)
    assert service.coalescer.stats["followers"] == 2

    records = service.traces.query(n=3)
    leaders = [r for r in records if spans_at(r, "coalesce.leader")]
    followers = [r for r in records if spans_at(r, "coalesce.follower")]
    assert len(leaders) == 1 and len(followers) == 2
    leader_trace_id = leaders[0]["trace_id"]
    for follower in followers:
        span = spans_at(follower, "coalesce.follower")[0]
        assert span["attrs"].get("leader_trace") == leader_trace_id
        # The follower shares the leader's value, not its spans: the
        # compute tree lives in the leader's trace only.
        assert "fleet.roundtrip" not in span_sites(follower)
    assert "fleet.roundtrip" in span_sites(leaders[0])


def test_slow_request_threshold_logs_with_breakdown(z4, caplog):
    with obs.installed():
        service = DecompositionService(jobs=1, slow_request_s=0.0)
        try:
            with caplog.at_level("WARNING", logger="repro.obs.slow"):
                reply = drive_sequential(
                    service, [decompose_envelope(z4, 0, "q0")]
                )[0]
        finally:
            service.close()
    assert reply["ok"] is True
    assert service.slow_logged == 1
    assert service.status()["trace"]["slow_logged"] == 1
    slow_lines = [
        r.getMessage()
        for r in caplog.records
        if "slow request" in r.getMessage()
    ]
    assert len(slow_lines) == 1
    assert "kind=decompose" in slow_lines[0]
    assert "server.request=" in slow_lines[0]  # the per-site breakdown
