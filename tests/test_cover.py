"""Tests for SOP covers, including the unate-recursion tautology check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover.cover import Cover
from repro.cover.cube import Cube
from tests.conftest import fresh_manager

cover_strategy = st.builds(
    lambda rows: Cover(4, [Cube.from_string("".join(r)) for r in rows]),
    st.lists(
        st.lists(st.sampled_from("01-"), min_size=4, max_size=4),
        min_size=0,
        max_size=6,
    ),
)


def brute_on_set(cover: Cover) -> set[int]:
    return {m for m in range(1 << cover.n_vars) if cover.contains_minterm(m)}


def test_empty_cover_is_constant_zero():
    cover = Cover(3, [])
    assert brute_on_set(cover) == set()
    assert not cover.is_tautology()
    assert cover.literal_count() == 0


def test_from_strings():
    cover = Cover.from_strings(["1--0", "01--"])
    assert cover.cube_count() == 2
    assert cover.n_vars == 4


def test_from_strings_empty_rejected():
    with pytest.raises(ValueError):
        Cover.from_strings([])


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        Cover(3, [Cube.from_string("10-1")])


@given(cover_strategy)
@settings(max_examples=80, deadline=None)
def test_tautology_matches_brute_force(cover):
    assert cover.is_tautology() == (len(brute_on_set(cover)) == 16)


@given(cover_strategy)
@settings(max_examples=60, deadline=None)
def test_to_function_matches_contains(cover):
    mgr = fresh_manager(4)
    function = cover.to_function(mgr)
    assert {m for m in function.minterms()} == brute_on_set(cover)
    assert cover.to_truthtable().bits == sum(
        1 << m for m in brute_on_set(cover)
    )


@given(cover_strategy, st.lists(st.sampled_from("01-"), min_size=4, max_size=4))
@settings(max_examples=80, deadline=None)
def test_covers_cube_matches_brute_force(cover, pattern):
    cube = Cube.from_string("".join(pattern))
    cube_minterms = {m for m in range(16) if cube.contains_minterm(m)}
    assert cover.covers_cube(cube) == (cube_minterms <= brute_on_set(cover))


def test_covers_cover():
    big = Cover.from_strings(["1---", "0---"])
    small = Cover.from_strings(["10-1", "01--"])
    assert big.covers_cover(small)
    assert not small.covers_cover(big)


def test_cofactor_cube():
    cover = Cover.from_strings(["11--", "0-1-"])
    positive = cover.cofactor_cube(Cube.from_string("1---"))
    assert {m for m in range(16) if positive.contains_minterm(m)} == {
        m for m in range(16) if cover.contains_minterm(m | 0b1000)
    } | {m | 0b1000 for m in range(16) if cover.contains_minterm(m | 0b1000)}


def test_single_cube_containment():
    cover = Cover.from_strings(["1---", "10--", "1011"])
    cleaned = cover.single_cube_containment()
    assert cleaned.cube_count() == 1
    assert cleaned.cubes[0].to_string() == "1---"


def test_single_cube_containment_keeps_incomparable():
    cover = Cover.from_strings(["1---", "0--1"])
    assert cover.single_cube_containment().cube_count() == 2


def test_merged_with():
    a = Cover.from_strings(["1---"])
    b = Cover.from_strings(["0---"])
    assert a.merged_with(b).is_tautology()
    with pytest.raises(ValueError):
        a.merged_with(Cover(3, []))


def test_expression_rendering():
    cover = Cover.from_strings(["1-0-", "---1"])
    names = ("a", "b", "c", "d")
    assert cover.to_expression(names) == "a & ~c | d"
    assert Cover(4, []).to_expression(names) == "0"


def test_copy_is_independent():
    cover = Cover.from_strings(["1---"])
    clone = cover.copy()
    clone.cubes.append(Cube.tautology(4))
    assert cover.cube_count() == 1
