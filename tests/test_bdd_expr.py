"""Tests for the Boolean expression parser."""

import pytest

from repro.bdd.expr import ExpressionError, parse_expression
from tests.conftest import fresh_manager


@pytest.fixture
def mgr():
    return fresh_manager(4)


def test_single_variable(mgr):
    assert parse_expression(mgr, "x1") == mgr.var("x1")


def test_constants(mgr):
    assert parse_expression(mgr, "0").is_false
    assert parse_expression(mgr, "1").is_true


def test_not_forms(mgr):
    x = mgr.var("x1")
    assert parse_expression(mgr, "~x1") == ~x
    assert parse_expression(mgr, "!x1") == ~x
    assert parse_expression(mgr, "x1'") == ~x
    assert parse_expression(mgr, "x1''") == x


def test_precedence_and_over_xor_over_or(mgr):
    x1, x2, x3 = mgr.var("x1"), mgr.var("x2"), mgr.var("x3")
    assert parse_expression(mgr, "x1 | x2 & x3") == (x1 | (x2 & x3))
    assert parse_expression(mgr, "x1 ^ x2 & x3") == (x1 ^ (x2 & x3))
    assert parse_expression(mgr, "x1 | x2 ^ x3") == (x1 | (x2 ^ x3))


def test_parentheses(mgr):
    x1, x2, x3 = mgr.var("x1"), mgr.var("x2"), mgr.var("x3")
    assert parse_expression(mgr, "(x1 | x2) & x3") == ((x1 | x2) & x3)


def test_plus_and_star_aliases(mgr):
    assert parse_expression(mgr, "x1 + x2") == parse_expression(mgr, "x1 | x2")
    assert parse_expression(mgr, "x1 * x2") == parse_expression(mgr, "x1 & x2")


def test_implicit_conjunction(mgr):
    explicit = parse_expression(mgr, "x1 & (x2 | x3)")
    implicit = parse_expression(mgr, "x1 (x2 | x3)")
    assert explicit == implicit


def test_implies(mgr):
    x1, x2 = mgr.var("x1"), mgr.var("x2")
    assert parse_expression(mgr, "x1 => x2") == (~x1 | x2)
    # Right associative: a => b => c is a => (b => c).
    x3 = mgr.var("x3")
    assert parse_expression(mgr, "x1 => x2 => x3") == (~x1 | (~x2 | x3))


def test_iff(mgr):
    x1, x2 = mgr.var("x1"), mgr.var("x2")
    assert parse_expression(mgr, "x1 <=> x2") == ~(x1 ^ x2)


def test_paper_figure_expressions(mgr):
    f1 = parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    assert sorted(f1.minterms()) == [7, 13, 15]
    f2 = parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
    assert f2.satcount() == 6


def test_trailing_tokens_rejected(mgr):
    with pytest.raises(ExpressionError):
        parse_expression(mgr, "x1 )")


def test_bad_character_rejected(mgr):
    with pytest.raises(ExpressionError):
        parse_expression(mgr, "x1 @ x2")


def test_empty_expression_rejected(mgr):
    with pytest.raises(ExpressionError):
        parse_expression(mgr, "")


def test_unknown_variable_raises_keyerror(mgr):
    with pytest.raises(KeyError):
        parse_expression(mgr, "y9")


def test_unbalanced_parenthesis(mgr):
    with pytest.raises(ExpressionError):
        parse_expression(mgr, "(x1 & x2")
