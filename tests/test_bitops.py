"""Unit tests for repro.utils.bitops."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    assignment_to_minterm,
    bit_count,
    bit_indices,
    gray_code,
    iter_minterms,
    mask_for,
    minterm_to_assignment,
    popcount_below,
)


def test_mask_for_small_sizes():
    assert mask_for(0) == 0b1
    assert mask_for(1) == 0b11
    assert mask_for(2) == 0b1111
    assert mask_for(3) == 0xFF


def test_bit_count_matches_python():
    for value in (0, 1, 0b1011, 0xFFFF, 123456789):
        assert bit_count(value) == bin(value).count("1")


@given(st.integers(min_value=0, max_value=2**40 - 1))
def test_bit_indices_reconstructs_value(value):
    rebuilt = 0
    previous = -1
    for index in bit_indices(value):
        assert index > previous  # ascending order
        previous = index
        rebuilt |= 1 << index
    assert rebuilt == value


@given(
    st.integers(min_value=0, max_value=2**30 - 1),
    st.integers(min_value=0, max_value=32),
)
def test_popcount_below(value, limit):
    expected = sum(1 for i in range(limit) if (value >> i) & 1)
    assert popcount_below(value, limit) == expected


def test_iter_minterms_is_exhaustive():
    assert list(iter_minterms(3)) == list(range(8))


def test_minterm_assignment_roundtrip_examples():
    assert minterm_to_assignment(0b1011, 4) == (1, 0, 1, 1)
    assert assignment_to_minterm((1, 0, 1, 1)) == 0b1011


@given(st.integers(min_value=1, max_value=10), st.data())
def test_minterm_assignment_roundtrip(n_vars, data):
    minterm = data.draw(st.integers(min_value=0, max_value=(1 << n_vars) - 1))
    bits = minterm_to_assignment(minterm, n_vars)
    assert len(bits) == n_vars
    assert assignment_to_minterm(bits) == minterm


def test_gray_code_adjacent_codes_differ_by_one_bit():
    for i in range(63):
        assert bin(gray_code(i) ^ gray_code(i + 1)).count("1") == 1


def test_gray_code_is_permutation():
    codes = {gray_code(i) for i in range(16)}
    assert codes == set(range(16))
