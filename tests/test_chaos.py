"""Chaos suite: seeded fault plans replayed against the serving stack.

The contract under test (ISSUE 9): with a :class:`FaultPlan` installed,
every request either succeeds **byte-identically** to an in-process run
or fails with a **typed error** — never hangs, never poisons warm state
— and replaying the same plan replays the same faults with the same
outcomes.  The cache half of the contract: SIGKILL at *every* injected
cache-write crash point leaves the store openable with at most the
in-flight entry lost.

Three seeded archetypes are pinned explicitly (worker-kill,
slow-worker, cache-write-crash) plus generated-plan replay determinism,
leader-failure coverage at every coalescer yield point, and the
sacrificial-child SIGKILL matrix over the four ``cache.put.*`` sites.
"""

import asyncio
import json
import multiprocessing
import os
import signal

import pytest

from repro.benchgen.registry import load_benchmark
from repro.engine import wire
from repro.engine.cache import ResultCache
from repro.service import DecompositionService
from repro.service import faults
from repro.service.faults import FaultEvent, FaultPlan, InjectedFault

from tests.test_service import (
    INFORMATIONAL_RESULT_KEYS,
    drive,
    in_process_payload,
    stripped,
    work_item,
)


@pytest.fixture(scope="module")
def z4():
    return load_benchmark("z4")


@pytest.fixture(scope="module")
def expected_payloads(z4):
    return [
        in_process_payload(isf, name=f"o{index}")
        for index, isf in enumerate(z4.outputs)
    ]


def drive_sequential(service, envelopes):
    """Serve envelopes one at a time: deterministic site-hit ordering."""

    async def _run():
        replies = []
        for envelope in envelopes:
            replies.append(await service.handle(envelope))
        return replies

    return asyncio.run(_run())


def decompose_envelopes(z4, count):
    return [
        wire.svc_request(
            "decompose",
            work_item(z4.outputs[i % len(z4.outputs)], name=f"o{i % len(z4.outputs)}"),
            f"q{i}",
        )
        for i in range(count)
    ]


def outcome_summary(replies, expected_payloads, z4, count):
    """Canonical per-request outcome: the chaos contract, checkable.

    Every reply must be ok-and-byte-identical or a typed error; the
    summary is what must match across replays of the same plan.
    """
    summary = []
    for i, reply in enumerate(replies):
        if reply["ok"]:
            payload = stripped(reply["result"], INFORMATIONAL_RESULT_KEYS)
            expected = stripped(
                expected_payloads[i % len(z4.outputs)],
                INFORMATIONAL_RESULT_KEYS,
            )
            assert payload == expected, f"request {i}: result diverged"
            summary.append(("ok", json.dumps(payload, sort_keys=True)))
        else:
            error_type = reply["error"]["type"]
            assert isinstance(error_type, str) and error_type
            summary.append(("error", error_type))
    assert len(summary) == count
    return tuple(summary)


# ---------------------------------------------------------------------------
# FaultPlan unit behavior
# ---------------------------------------------------------------------------


def test_generate_is_seeded_and_deterministic():
    first = FaultPlan.generate(7)
    second = FaultPlan.generate(7)
    assert first.events == second.events
    assert first.events != FaultPlan.generate(8).events
    for event in first.events:
        assert event.site in faults.KNOWN_SITES
        assert event.action in faults.GENERATED_ACTIONS  # never "crash"


def test_events_fire_at_their_hit_and_only_once():
    plan = FaultPlan((FaultEvent("some.site", 2, "error"),))
    plan.fire("some.site")  # hit 0
    plan.fire("some.site")  # hit 1
    with pytest.raises(InjectedFault):
        plan.fire("some.site")  # hit 2: due
    plan.fire("some.site")  # hit 3: one-shot, never again
    assert plan.fired() == 1
    assert plan.log == [("some.site", 2, "error")]


def test_fire_is_a_noop_without_an_installed_plan():
    faults.uninstall()
    faults.fire("anywhere", slot=None)  # must not raise
    assert faults.active() is None


def test_installed_context_restores_previous_plan():
    outer = FaultPlan()
    faults.install(outer)
    try:
        inner = FaultPlan()
        with faults.installed(inner) as active:
            assert active is inner
            assert faults.active() is inner
        assert faults.active() is outer
    finally:
        faults.uninstall()


def test_crash_action_is_inert_unless_armed():
    plan = FaultPlan((FaultEvent("s", 0, "crash"),))
    plan.fire("s")  # not armed: must NOT kill the test runner
    assert plan.fired() == 1


def test_slot_actions_without_slot_context_are_noops():
    plan = FaultPlan(
        (FaultEvent("s", 0, "kill-worker"), FaultEvent("s", 1, "drop-pipe"))
    )
    plan.fire("s")
    plan.fire("s", slot=None)
    assert plan.fired() == 2


def test_unknown_action_raises():
    plan = FaultPlan((FaultEvent("s", 0, "set-on-fire"),))
    with pytest.raises(ValueError):
        plan.fire("s")


# ---------------------------------------------------------------------------
# Archetype plans: worker-kill, slow-worker, cache-write-crash
# ---------------------------------------------------------------------------


def _chaos_run(plan_factory, z4, expected_payloads, count=8, **service_kwargs):
    """One full chaos run: install plan → build service → drive → report."""
    plan = plan_factory()
    with faults.installed(plan):
        # Install BEFORE the fleet forks so workers inherit the plan —
        # that is how worker.compute events reach the far side.
        service = DecompositionService(jobs=1, **service_kwargs)
        try:
            replies = drive_sequential(service, decompose_envelopes(z4, count))
        finally:
            service.close()
    return (
        outcome_summary(replies, expected_payloads, z4, count),
        tuple(plan.log),
        service,
    )


def test_worker_kill_plan_replays_deterministically(z4, expected_payloads):
    # Seeded archetype: the worker is SIGKILLed (and once has its pipe
    # dropped) mid-request; the fleet must respawn and retry, and every
    # request must still come back byte-identical.
    def plan_factory():
        return FaultPlan(
            (
                FaultEvent("fleet.call.sent", 2, "kill-worker"),
                FaultEvent("fleet.call.sent", 5, "drop-pipe"),
            ),
            seed=1,
        )

    first, first_log, service = _chaos_run(plan_factory, z4, expected_payloads)
    second, second_log, _ = _chaos_run(plan_factory, z4, expected_payloads)
    assert first == second
    assert first_log == second_log
    # Both faults were delivered and healed: all requests succeeded.
    assert all(kind == "ok" for kind, _ in first)
    assert len(first_log) == 2
    assert service.fleet.stats["retries"] == 2
    assert service.fleet.stats["restarts"] == 2


def test_slow_worker_plan_times_out_typed_and_deterministically(
    z4, expected_payloads
):
    # Seeded archetype: the worker goes dark (sleeps far past the
    # deadline) on its third compute.  The parent must kill + respawn it
    # and answer with a typed "timeout" — and because fault counters are
    # per process, the *respawned* worker does the same on its own third
    # compute: requests 2 and 5 fail, everything else is byte-identical.
    def plan_factory():
        return FaultPlan(
            (FaultEvent("worker.compute", 2, "sleep", param=30.0),), seed=2
        )

    first, _log, service = _chaos_run(
        plan_factory, z4, expected_payloads, timeout_s=1.0
    )
    second, _log2, _ = _chaos_run(
        plan_factory, z4, expected_payloads, timeout_s=1.0
    )
    assert first == second
    kinds = [kind for kind, _ in first]
    assert kinds[2] == "error" and first[2][1] == "timeout"
    assert kinds[5] == "error" and first[5][1] == "timeout"
    assert kinds.count("ok") == 6
    assert service.stats["timeouts"] == 2
    assert service.fleet.stats["kills"] == 2


def test_cache_write_crash_plan_fails_typed_and_recovers(
    z4, expected_payloads, tmp_path
):
    # Seeded archetype: the first cache write dies right after its
    # journal record is committed.  The request fails typed; the retry
    # recomputes and succeeds byte-identically (the key is not
    # poisoned, and the orphan journal record is simply overwritten).
    def plan_factory():
        return FaultPlan(
            (FaultEvent("cache.put.journaled", 0, "error"),), seed=3
        )

    first, first_log, service = _chaos_run(
        plan_factory,
        z4,
        expected_payloads,
        count=4,
        cache_dir=str(tmp_path / "a"),
    )
    second, second_log, _ = _chaos_run(
        plan_factory,
        z4,
        expected_payloads,
        count=4,
        cache_dir=str(tmp_path / "b"),
    )
    assert first == second
    assert first_log == second_log
    assert first[0] == ("error", "InjectedFault")
    assert all(kind == "ok" for kind, _ in first[1:])
    assert service.cache.stats["corrupt"] == 0


@pytest.mark.parametrize("seed", (11, 23, 47))
def test_generated_plans_replay_deterministically(seed, z4, expected_payloads):
    # The general form of the guarantee: ANY seeded schedule replays to
    # the same per-request outcomes and the same delivered-fault log.
    def plan_factory():
        return FaultPlan.generate(seed, n_events=3, max_hit=5)

    first, first_log, _ = _chaos_run(
        plan_factory, z4, expected_payloads, count=6, timeout_s=30.0
    )
    second, second_log, _ = _chaos_run(
        plan_factory, z4, expected_payloads, count=6, timeout_s=30.0
    )
    assert first == second
    assert first_log == second_log


# ---------------------------------------------------------------------------
# Coalescer under injected faults: leader killed at every yield point
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "site", ("server.compute.start", "server.compute.computed")
)
def test_leader_failure_is_shared_typed_and_does_not_poison_the_key(
    site, z4, expected_payloads, tmp_path
):
    service = DecompositionService(
        jobs=1, cache_dir=str(tmp_path / site.replace(".", "-"))
    )
    try:
        item = work_item(z4.outputs[0], name="o0")
        envelopes = [
            wire.svc_request("decompose", item, f"d{i}") for i in range(3)
        ]
        plan = FaultPlan((FaultEvent(site, 0, "error"),))
        with faults.installed(plan):
            replies = drive(service, envelopes)
        # The flight failed once; leader AND both attached followers all
        # see the same typed error (one computation, one failure).
        assert [reply["ok"] for reply in replies] == [False, False, False]
        assert {reply["error"]["type"] for reply in replies} == {
            "InjectedFault"
        }
        assert service.coalescer.stats["followers"] == 2
        # The key is not poisoned: the next flight recomputes cleanly.
        recovered = drive(
            service, [wire.svc_request("decompose", item, "r0")]
        )[0]
        assert recovered["ok"] is True
        assert stripped(
            recovered["result"], INFORMATIONAL_RESULT_KEYS
        ) == stripped(expected_payloads[0], INFORMATIONAL_RESULT_KEYS)
        assert len(service.coalescer) == 0
    finally:
        service.close()


def test_coalesce_flight_fault_fails_only_the_would_be_leader(z4):
    # The pre-registration yield point: the fault fires after the key
    # check but before the flight exists.  Nothing must be registered,
    # so the other concurrent arrivals elect a fresh leader and succeed.
    service = DecompositionService(jobs=1)
    try:
        item = work_item(z4.outputs[0], name="o0")
        envelopes = [
            wire.svc_request("decompose", item, f"d{i}") for i in range(3)
        ]
        plan = FaultPlan((FaultEvent("coalesce.flight", 0, "error"),))
        with faults.installed(plan):
            replies = drive(service, envelopes)
        failures = [reply for reply in replies if not reply["ok"]]
        successes = [reply for reply in replies if reply["ok"]]
        assert len(failures) == 1
        assert failures[0]["error"]["type"] == "InjectedFault"
        assert len(successes) == 2
        assert len(service.coalescer) == 0
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Cache crash-safety: SIGKILL at every cache-write crash point
# ---------------------------------------------------------------------------

KEY_COMMITTED = "aa" + "0" * 62
KEY_INFLIGHT = "bb" + "0" * 62

CRASH_SITES = (
    "cache.put.serialized",
    "cache.put.journaled",
    "cache.put.entry_written",
    "cache.put.renamed",
)


def _crash_child(cache_dir: str, site: str) -> None:
    """Sacrificial child: commit one entry, SIGKILL mid-write of the next."""
    plan = FaultPlan((FaultEvent(site, 1, "crash"),)).arm_crashes()
    faults.install(plan)
    cache = ResultCache(cache_dir)
    cache.put(KEY_COMMITTED, {"v": "committed"})  # site hit 0: clean
    cache.put(KEY_INFLIGHT, {"v": "inflight"})  # site hit 1: SIGKILL
    os._exit(1)  # pragma: no cover — the crash must have happened


@pytest.mark.parametrize("site", CRASH_SITES)
def test_sigkill_at_every_cache_write_point_leaves_store_openable(
    tmp_path, site
):
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_crash_child, args=(str(tmp_path), site))
    child.start()
    child.join(timeout=60)
    assert child.exitcode == -signal.SIGKILL

    cache = ResultCache(tmp_path)
    # A committed entry survives a SIGKILL at ANY later write point.
    assert cache.get(KEY_COMMITTED) == {"v": "committed"}
    if site == "cache.put.serialized":
        # Nothing durable existed yet: the in-flight entry is the loss.
        assert cache.get(KEY_INFLIGHT) is None
        assert cache.stats["replayed"] == 0
    else:
        # The journal record was durable first, so open-time replay (or
        # the completed rename) makes the in-flight entry whole.
        assert cache.get(KEY_INFLIGHT) == {"v": "inflight"}
        if site in ("cache.put.journaled", "cache.put.entry_written"):
            assert cache.stats["replayed"] == 1
    # Replay consumed every journal record; the store is fully writable.
    assert list((tmp_path / "journal").glob("*.j")) == []
    cache.put(KEY_INFLIGHT, {"v": "again"})
    assert cache.get(KEY_INFLIGHT) == {"v": "again"}
    assert cache.stats["corrupt"] == 0


def test_interrupted_put_leaves_replayable_journal(tmp_path):
    # Same recovery, no child process: abort a put right after its
    # journal commit and watch the next open replay it.
    cache = ResultCache(tmp_path)
    plan = FaultPlan((FaultEvent("cache.put.journaled", 0, "error"),))
    with faults.installed(plan):
        with pytest.raises(InjectedFault):
            cache.put(KEY_COMMITTED, {"v": 7})
    assert cache.get(KEY_COMMITTED) is None  # entry never landed
    reopened = ResultCache(tmp_path)
    assert reopened.stats["replayed"] == 1
    assert reopened.get(KEY_COMMITTED) == {"v": 7}
    assert list((tmp_path / "journal").glob("*.j")) == []


def test_corrupt_crc_entry_is_counted_and_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY_COMMITTED, {"v": 1})
    path = cache.path_for(KEY_COMMITTED)
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["payload"] = {"v": "tampered"}  # CRC now lies about the bytes
    path.write_text(json.dumps(entry), encoding="utf-8")

    assert cache.get(KEY_COMMITTED) is None
    assert cache.stats["corrupt"] == 1
    assert cache.stats["quarantined"] == 1
    assert not path.exists()
    quarantined = list((tmp_path / "quarantine").glob("*.bad"))
    assert len(quarantined) == 1
    # The store heals: the key is writable and readable again.
    cache.put(KEY_COMMITTED, {"v": 2})
    assert cache.get(KEY_COMMITTED) == {"v": 2}


def test_torn_journal_record_is_quarantined_not_replayed(tmp_path):
    cache = ResultCache(tmp_path)
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir(exist_ok=True)
    (journal_dir / f"{KEY_COMMITTED}.j").write_text(
        '{"format": "repro-cache-journal/1", "key": "', encoding="utf-8"
    )  # torn mid-write (pre-fsync crash with no rename discipline)

    reopened = ResultCache(tmp_path)
    assert reopened.stats["replayed"] == 0
    assert reopened.stats["quarantined"] == 1
    assert list(journal_dir.glob("*.j")) == []
    assert len(list((tmp_path / "quarantine").glob("*.bad"))) == 1


def test_entries_with_crc_stay_on_the_v1_format(tmp_path):
    # The CRC is a back-compat *addition*: the entry format string (and
    # therefore every cache key) must not have changed, and entries
    # written before the CRC existed must still read.
    cache = ResultCache(tmp_path)
    cache.put(KEY_COMMITTED, {"v": 1})
    entry = json.loads(
        cache.path_for(KEY_COMMITTED).read_text(encoding="utf-8")
    )
    assert entry["format"] == "repro-cache-entry/1"
    assert "crc" in entry
    # A legacy entry (no crc field) reads cleanly.
    legacy_path = cache.path_for(KEY_INFLIGHT)
    legacy_path.parent.mkdir(exist_ok=True)
    legacy_path.write_text(
        json.dumps({"format": "repro-cache-entry/1", "payload": {"v": 9}}),
        encoding="utf-8",
    )
    assert cache.get(KEY_INFLIGHT) == {"v": 9}
    assert cache.stats["corrupt"] == 0
