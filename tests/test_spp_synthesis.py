"""Tests for 2-SPP synthesis (exact and heuristic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.cover.cover import Cover
from repro.spp.pseudocube import Pseudocube, make_xor_factor
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import (
    _try_merge,
    enumerate_maximal_pseudocubes,
    minimize_spp,
    minimize_spp_exact,
    minimize_spp_heuristic,
    sop_to_spp,
)
from repro.twolevel.espresso import espresso_minimize
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)


class TestMerge:
    def test_distance_one_literal_merge(self):
        a = Pseudocube.from_cube_like = Pseudocube(4, pos=0b0011)
        b = Pseudocube(4, pos=0b0001, neg=0b0010)
        merged = _try_merge(a, b)
        assert merged is not None
        assert merged.pos == 0b0001 and merged.neg == 0
        assert not merged.xors

    def test_two_conflicts_create_xor(self):
        a = Pseudocube(4, pos=0b0011)  # x1 x2
        b = Pseudocube(4, neg=0b0011)  # ~x1 ~x2
        merged = _try_merge(a, b)
        assert merged is not None
        assert merged.xors == {make_xor_factor(0, 1, 0)}  # XNOR

    def test_opposite_phase_xors_cancel(self):
        fac1 = make_xor_factor(2, 3, 1)
        fac0 = make_xor_factor(2, 3, 0)
        a = Pseudocube(4, pos=0b0001, xors=frozenset({fac1}))
        b = Pseudocube(4, pos=0b0001, xors=frozenset({fac0}))
        merged = _try_merge(a, b)
        assert merged is not None
        assert merged.pos == 0b0001 and not merged.xors

    def test_incompatible_pairs_do_not_merge(self):
        a = Pseudocube(4, pos=0b0011)
        b = Pseudocube(4, pos=0b0100)
        assert _try_merge(a, b) is None
        c = Pseudocube(4, pos=0b0001)  # different bound sets
        assert _try_merge(a, c) is None

    def test_merge_preserves_semantics(self):
        mgr = fresh_manager(4)
        a = Pseudocube(4, pos=0b0101, neg=0b0010)
        b = Pseudocube(4, pos=0b0110, neg=0b0001)
        merged = _try_merge(a, b)
        if merged is not None:
            assert merged.to_function(mgr) == (
                a.to_function(mgr) | b.to_function(mgr)
            )


class TestSopToSpp:
    def test_figure2_merge(self):
        # The 4-product SOP of (x1|x2)(x3^x4) merges into 2 pseudoproducts.
        sop = Cover.from_strings(["1-01", "1-10", "-101", "-110"])
        spp = sop_to_spp(sop)
        assert spp.pseudoproduct_count() == 2
        assert spp.literal_count() == 6
        mgr = fresh_manager(4)
        assert spp.to_function(mgr) == sop.to_function(mgr)

    def test_parity_compression(self):
        # 4-variable parity: 8 minterm cubes -> pseudoproducts with XORs.
        mgr = fresh_manager(4)
        parity_on = [m for m in range(16) if bin(m).count("1") % 2]
        sop = Cover(4, [])
        from repro.cover.cube import Cube

        sop = Cover(4, [Cube.from_minterm(4, m) for m in parity_on])
        spp = sop_to_spp(sop)
        assert spp.to_function(mgr).satcount() == 8
        assert spp.literal_count() < sop.literal_count()


class TestExact:
    def test_figure2_exact(self):
        mgr = fresh_manager(4)
        f = ISF.completely_specified(
            parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
        )
        spp = minimize_spp_exact(f)
        assert spp.pseudoproduct_count() == 2
        assert spp.literal_count() == 6
        assert spp.to_function(mgr) == f.on

    def test_xor_function_is_single_pseudoproduct(self):
        mgr = fresh_manager(4)
        f = ISF.completely_specified(parse_expression(mgr, "x3 ^ x4"))
        spp = minimize_spp_exact(f)
        assert spp.pseudoproduct_count() == 1
        assert spp.literal_count() == 2

    def test_constants(self):
        mgr = fresh_manager(3)
        zero = ISF.completely_specified(mgr.false)
        assert minimize_spp_exact(zero).pseudoproduct_count() == 0
        one = ISF.completely_specified(mgr.true)
        spp = minimize_spp_exact(one)
        assert spp.pseudoproduct_count() == 1
        assert spp.literal_count() == 0

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=20, deadline=None)
    def test_exact_is_within_bounds_and_beats_sop(self, bits):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, bits, 0)
        spp = minimize_spp_exact(f)
        assert spp.to_function(mgr) == f.on
        sop = espresso_minimize(f)
        # 2-SPP can always fall back to the SOP, so it is never worse in
        # (pseudoproducts, literals) lexicographic cost.
        assert spp.cost() <= (sop.cube_count(), sop.literal_count())

    def test_maximal_pseudocube_enumeration_bounds(self):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, 0b0110_1001_1001_0110, 0)
        maximal = enumerate_maximal_pseudocubes(f)
        upper = f.upper
        for pc in maximal:
            fn = pc.to_function(mgr)
            assert fn <= upper
            # Maximality: every expansion leaves the upper bound.
            for expanded in pc.expansions():
                assert not expanded.to_function(mgr) <= upper


class TestHeuristic:
    @given(tt_bits, tt_bits)
    @settings(max_examples=25, deadline=None)
    def test_heuristic_is_within_bounds(self, on_bits, dc_bits):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, on_bits, dc_bits)
        spp = minimize_spp_heuristic(f)
        realized = spp.to_function(mgr)
        assert f.on <= realized <= f.upper

    @given(tt_bits)
    @settings(max_examples=15, deadline=None)
    def test_heuristic_close_to_exact(self, on_bits):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, on_bits, 0)
        heuristic = minimize_spp_heuristic(f)
        exact = minimize_spp_exact(f)
        assert heuristic.pseudoproduct_count() <= 2 * max(
            exact.pseudoproduct_count(), 1
        )

    def test_initial_cover_seeding(self):
        mgr = fresh_manager(4)
        f = isf_from_masks(mgr, 0b0110_1001_1001_0110, 0)
        seed = espresso_minimize(f)
        spp = minimize_spp_heuristic(f, initial=seed)
        assert spp.to_function(mgr) == f.on

    def test_dispatcher_uses_exact_for_small(self):
        mgr = fresh_manager(4)
        f = ISF.completely_specified(
            parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
        )
        spp = minimize_spp(f)
        assert spp.literal_count() == 6  # exact optimum


class TestSppCover:
    def test_cost_and_counts(self):
        pc = Pseudocube(4, pos=0b0001, xors=frozenset({make_xor_factor(2, 3, 1)}))
        cover = SppCover(4, [pc, Pseudocube(4, pos=0b0010)])
        assert cover.pseudoproduct_count() == 2
        assert cover.literal_count() == 4
        assert cover.xor_factor_count() == 1
        assert cover.cost() == (2, 4)

    def test_plain_sop_roundtrip(self):
        cover = Cover.from_strings(["1-0-", "-1-0"])
        spp = SppCover.from_cover(cover)
        assert spp.is_plain_sop()
        back = spp.to_cover()
        assert {c.to_string() for c in back} == {"1-0-", "-1-0"}

    def test_expression(self):
        names = ("x1", "x2", "x3", "x4")
        assert SppCover(4, []).to_expression(names) == "0"
