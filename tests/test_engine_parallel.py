"""Parallel batch execution and the persistent result cache.

The contract under test: ``jobs=1`` and ``jobs>1`` produce identical
ordered results; a warm cache run is served entirely from disk (no
worker dispatch); and a corrupted cache entry is a miss, never an error.
"""

import json

import pytest

import repro.engine.parallel as parallel_mod
from repro.boolfunc.isf import ISF
from repro.cli import main
from repro.engine import Decomposer, ResultCache
from repro.engine.cache import as_result_cache
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager


def _batch(count=6, n_vars=4):
    """A deterministic batch of random ISFs over one manager."""
    mgr = fresh_manager(n_vars)
    rng = make_rng("engine-parallel-batch")
    return [(f"r{i}", ISF.random(mgr, rng)) for i in range(count)]


def _signature(results):
    """Everything that must agree between execution modes.

    Functions are compared by canonical fingerprint (manager-independent),
    covers structurally (pseudocube/cube lists).
    """
    from repro.bdd.serialize import function_fingerprint
    from repro.engine.wire import isf_fingerprint

    return [
        (
            r.name,
            r.op_name,
            r.approximator_name,
            r.minimizer_name,
            r.literal_cost,
            r.error_rate,
            r.verified,
            r.request.metadata.get("n_vars"),
            function_fingerprint(r.decomposition.g),
            isf_fingerprint(r.decomposition.h),
            None
            if r.decomposition.g_cover is None
            else list(r.decomposition.g_cover),
            None
            if r.decomposition.h_cover is None
            else list(r.decomposition.h_cover),
            [c.to_dict() for c in r.candidates],
        )
        for r in results
    ]


# ---------------------------------------------------------------------------
# jobs=1 vs jobs>1
# ---------------------------------------------------------------------------


def test_parallel_matches_serial_single_operator():
    batch = _batch()
    serial = Decomposer().decompose_many(batch, op="AND")
    parallel = Decomposer().decompose_many(batch, op="AND", jobs=2)
    # Same shared manager (all inputs already live in one), so raw node
    # ids of g are directly comparable.
    assert _signature(parallel) == _signature(serial)
    assert all(r.verified for r in parallel)


def test_parallel_matches_serial_auto_search():
    batch = _batch(count=3)
    serial = Decomposer().decompose_many(batch, op="auto")
    parallel = Decomposer().decompose_many(batch, op="auto", jobs=3)
    assert _signature(parallel) == _signature(serial)
    assert all(len(r.candidates) == 10 for r in parallel)


def test_parallel_preserves_input_order():
    batch = _batch(count=5)
    results = Decomposer().decompose_many(batch, op="OR", jobs=2)
    assert [r.name for r in results] == [label for label, _ in batch]


def test_parallel_matches_serial_on_synthetic_benchmark(tmp_path):
    """The acceptance contract, end to end on a real synthetic benchmark:
    jobs=2 equals jobs=1, and a second cached run is 100% hits."""
    from repro.harness.experiment import decompose_suite

    serial = decompose_suite(["newtpla2"], op="AND")
    parallel = decompose_suite(["newtpla2"], op="AND", jobs=2, cache_dir=str(tmp_path))
    assert _signature(parallel) == _signature(serial)

    warm_engine = Decomposer()
    warm = decompose_suite(
        ["newtpla2"], op="AND", engine=warm_engine, cache_dir=str(tmp_path)
    )
    assert _signature(warm) == _signature(serial)
    assert warm_engine.stats["result_cache_hits"] == len(serial)
    assert warm_engine.stats["result_cache_misses"] == 0


def test_parallel_forwards_restricted_operator_set():
    """Workers must search the parent engine's operators, not all ten
    (regression: the search space was dropped at the process boundary)."""
    batch = _batch(count=3)
    engine_serial = Decomposer(operators=["AND", "OR"])
    engine_parallel = Decomposer(operators=["AND", "OR"])
    serial = engine_serial.decompose_many(batch, op="auto")
    parallel = engine_parallel.decompose_many(batch, op="auto", jobs=2)
    assert _signature(parallel) == _signature(serial)
    assert all(len(r.candidates) == 2 for r in parallel)
    assert all(r.op_name in ("AND", "OR") for r in parallel)


def test_parallel_counts_dispatches():
    engine = Decomposer()
    engine.decompose_many(_batch(count=4), op="AND", jobs=2)
    assert engine.stats["dispatched"] == 4


def test_parallel_rejects_callable_strategies():
    batch = _batch(count=2)
    with pytest.raises(ValueError, match="cannot cross process boundaries"):
        Decomposer().decompose_many(
            batch, op="AND", approximator=lambda f, op: f.on, jobs=2
        )


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        Decomposer().decompose_many(_batch(count=1), op="AND", jobs=0)


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------


def test_cache_cold_run_stores_then_warm_run_hits(tmp_path):
    batch = _batch()
    cold_engine = Decomposer()
    cold = cold_engine.decompose_many(batch, op="AND", cache=tmp_path)
    assert cold_engine.stats["result_cache_misses"] == len(batch)

    cache = ResultCache(tmp_path)
    assert len(cache) == len(batch)
    warm_engine = Decomposer()
    warm = warm_engine.decompose_many(batch, op="AND", cache=cache)
    assert warm_engine.stats["result_cache_hits"] == len(batch)
    assert warm_engine.stats["result_cache_misses"] == 0
    assert cache.hit_rate() == 1.0
    assert _signature(warm) == _signature(cold)


def test_cache_warm_run_never_dispatches_workers(tmp_path, monkeypatch):
    batch = _batch(count=3)
    Decomposer().decompose_many(batch, op="AND", jobs=2, cache=tmp_path)

    def boom(items, jobs):
        raise AssertionError("worker pool must not start on a warm cache")

    monkeypatch.setattr(parallel_mod, "run_parallel", boom)
    engine = Decomposer()
    warm = engine.decompose_many(batch, op="AND", jobs=2, cache=tmp_path)
    assert engine.stats["dispatched"] == 0
    assert all(r.verified for r in warm)


def test_corrupted_cache_entries_are_misses_not_fatal(tmp_path):
    batch = _batch(count=3)
    cold = Decomposer().decompose_many(batch, op="AND", cache=tmp_path)

    entries = sorted(ResultCache(tmp_path).cache_dir.glob("*/*.json"))
    assert len(entries) == 3
    entries[0].write_text("{not json at all")
    entries[1].write_text(json.dumps({"format": "alien/1", "payload": {}}))

    cache = ResultCache(tmp_path)
    warm = Decomposer().decompose_many(batch, op="AND", cache=cache)
    assert _signature(warm) == _signature(cold)
    assert cache.stats["corrupt"] == 2
    assert cache.stats["hits"] == 1
    # The corrupted entries were recomputed and re-stored.
    assert cache.stats["stores"] == 2


def test_cache_distinguishes_operator_and_strategy(tmp_path):
    batch = _batch(count=1)
    engine = Decomposer()
    engine.decompose_many(batch, op="AND", cache=tmp_path)
    engine.decompose_many(batch, op="OR", cache=tmp_path)
    engine.decompose_many(batch, op="AND", minimizer="espresso", cache=tmp_path)
    assert len(ResultCache(tmp_path)) == 3


def test_cache_distinguishes_auto_search_space(tmp_path):
    """An auto result from a restricted engine must not be served to an
    engine with a different search space (regression: the operator set
    was missing from the cache key)."""
    batch = _batch(count=1)
    Decomposer(operators=["AND"]).decompose_many(batch, op="auto", cache=tmp_path)
    full_engine = Decomposer()
    results = full_engine.decompose_many(batch, op="auto", cache=tmp_path)
    assert full_engine.stats["result_cache_hits"] == 0
    assert len(results[0].candidates) == 10
    assert len(ResultCache(tmp_path)) == 2
    # For a *named* operator the search space is irrelevant: keys agree.
    Decomposer(operators=["AND"]).decompose_many(batch, op="AND", cache=tmp_path)
    named_engine = Decomposer()
    named_engine.decompose_many(batch, op="AND", cache=tmp_path)
    assert named_engine.stats["result_cache_hits"] == 1


def test_cache_entry_with_corrupt_inner_payload_is_a_miss(tmp_path):
    """A valid cache wrapper around a stale/foreign result payload (e.g.
    after a RESULT_FORMAT bump) must recompute, not crash (regression)."""
    from repro.engine.cache import ENTRY_FORMAT

    batch = _batch(count=2)
    cold = Decomposer().decompose_many(batch, op="AND", cache=tmp_path)
    entries = sorted(ResultCache(tmp_path).cache_dir.glob("*/*.json"))
    entries[0].write_text(
        json.dumps({"format": ENTRY_FORMAT, "payload": {"format": "repro-result/0"}})
    )
    cache = ResultCache(tmp_path)
    warm = Decomposer().decompose_many(batch, op="AND", cache=cache)
    assert _signature(warm) == _signature(cold)
    assert cache.stats["corrupt"] == 1
    assert cache.stats["stores"] == 1  # the bad entry was recomputed


def test_bench_cache_with_stale_payload_recomputes(tmp_path):
    """run_benchmarks must survive cached rows whose field set no longer
    matches BenchmarkResult (regression)."""
    from repro.engine.cache import ENTRY_FORMAT
    from repro.harness.experiment import run_benchmarks

    cold = run_benchmarks(["z4"], cache_dir=str(tmp_path))
    entry = next(ResultCache(tmp_path).cache_dir.glob("*/*.json"))
    entry.write_text(
        json.dumps({"format": ENTRY_FORMAT, "payload": {"name": "z4", "bogus": 1}})
    )
    warm = run_benchmarks(["z4"], cache_dir=str(tmp_path))
    assert warm[0].name == cold[0].name
    assert warm[0].op_areas == cold[0].op_areas


def test_cache_is_bypassed_for_callable_strategies(tmp_path):
    batch = _batch(count=1)
    engine = Decomposer()
    engine.decompose_many(
        batch, op="AND", approximator=lambda f, op: f.on, cache=tmp_path
    )
    assert len(ResultCache(tmp_path)) == 0
    assert engine.stats["result_cache_misses"] == 0


def test_as_result_cache_normalizes(tmp_path):
    cache = ResultCache(tmp_path)
    assert as_result_cache(cache) is cache
    assert as_result_cache(None) is None
    assert isinstance(as_result_cache(tmp_path), ResultCache)


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------


def test_cli_decompose_jobs_and_cache(tmp_path, capsys):
    args = [
        "decompose",
        "z4",
        "--op",
        "AND",
        "--jobs",
        "2",
        "--cache-dir",
        str(tmp_path),
        "--json",
    ]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    warm = json.loads(capsys.readouterr().out)
    strip = lambda rows: [
        {k: v for k, v in row.items() if k != "timings"} for row in rows
    ]
    assert strip(warm) == strip(cold)
    assert len(list(tmp_path.glob("*/*.json"))) == len(cold)


def test_cli_bench_jobs_and_cache(tmp_path, capsys):
    args = ["bench", "z4", "--jobs", "2", "--cache-dir", str(tmp_path), "--json"]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    warm = json.loads(capsys.readouterr().out)
    # The warm run is served from disk: identical rows, original timing.
    assert warm == cold
    assert len(list(tmp_path.glob("*/*.json"))) == 1


# ---------------------------------------------------------------------------
# Randomized-strategy reproducibility across processes (regression)
# ---------------------------------------------------------------------------


def test_random_strategy_identical_across_workers_and_serial(tmp_path):
    """`random:<rate>` divisors must not depend on process or call order."""
    batch = _batch(count=4)
    serial = Decomposer().decompose_many(batch, op="XOR", approximator="random:0.3")
    parallel = Decomposer().decompose_many(
        batch, op="XOR", approximator="random:0.3", jobs=2
    )
    assert _signature(parallel) == _signature(serial)
    # Reversed submission order computes the same per-function divisors.
    reversed_results = Decomposer().decompose_many(
        list(reversed(batch)), op="XOR", approximator="random:0.3"
    )
    assert _signature(list(reversed(reversed_results))) == _signature(serial)


# ---------------------------------------------------------------------------
# Persistent executor (WorkerPool)
# ---------------------------------------------------------------------------


def test_persistent_executor_matches_serial_and_is_reused():
    from repro.engine.parallel import WorkerPool

    batch = _batch(count=4)
    serial = Decomposer().decompose_many(batch, op="AND")
    with WorkerPool(2) as pool:
        first = Decomposer().decompose_many(batch, op="AND", executor=pool)
        live = pool._pool
        assert live is not None
        second = Decomposer().decompose_many(batch, op="AND", executor=pool)
        # Same underlying multiprocessing pool across both batches: no
        # re-fork between calls.
        assert pool._pool is live
        assert pool.batches == 2
    assert _signature(first) == _signature(serial)
    assert _signature(second) == _signature(serial)
    assert pool._pool is None  # context exit tears the workers down


def test_persistent_executor_implies_parallel_dispatch():
    from repro.engine.parallel import WorkerPool

    batch = _batch(count=2)
    engine = Decomposer()
    with WorkerPool(2) as pool:
        # jobs defaults to 1: the executor alone must route through the
        # worker pool (dispatched counts worker-bound items).
        engine.decompose_many(batch, op="AND", executor=pool)
    assert engine.stats["dispatched"] == len(batch)


def test_persistent_executor_rejects_callable_strategies():
    from repro.engine.parallel import WorkerPool

    batch = _batch(count=2)
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="cannot cross process boundaries"):
            Decomposer().decompose_many(
                batch, op="AND", approximator=lambda f, op: f.on, executor=pool
            )


def test_worker_pool_rejects_nonpositive_jobs():
    from repro.engine.parallel import WorkerPool

    with pytest.raises(ValueError, match="jobs"):
        WorkerPool(0)
