"""Tests for positional-cube product terms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover.cube import Cube
from tests.conftest import fresh_manager


def random_cube(draw, n_vars=4):
    pattern = draw(
        st.lists(
            st.sampled_from("01-"), min_size=n_vars, max_size=n_vars
        )
    )
    return Cube.from_string("".join(pattern))


cube_strategy = st.builds(
    lambda s: Cube.from_string("".join(s)),
    st.lists(st.sampled_from("01-"), min_size=4, max_size=4),
)


def minterm_set(cube: Cube) -> set[int]:
    return {m for m in range(1 << cube.n_vars) if cube.contains_minterm(m)}


def test_string_roundtrip():
    for text in ("10-1", "----", "0000", "1111", "-01-"):
        assert Cube.from_string(text).to_string() == text


def test_from_string_rejects_bad_characters():
    with pytest.raises(ValueError):
        Cube.from_string("10x1")


def test_contradictory_literals_rejected():
    with pytest.raises(ValueError):
        Cube(3, pos=0b001, neg=0b001)


def test_tautology():
    cube = Cube.tautology(4)
    assert cube.literal_count == 0
    assert cube.minterm_count() == 16
    assert all(cube.contains_minterm(m) for m in range(16))


def test_from_minterm():
    cube = Cube.from_minterm(4, 0b1011)
    assert cube.to_string() == "1011"
    assert minterm_set(cube) == {0b1011}


def test_literal_iteration():
    cube = Cube.from_string("1-0-")
    assert sorted(cube.literals()) == [(0, True), (2, False)]


def test_to_expression():
    names = ("a", "b", "c")
    assert Cube.from_string("1-0").to_expression(names) == "a & ~c"
    assert Cube.tautology(3).to_expression(names) == "1"


@given(cube_strategy)
@settings(max_examples=50, deadline=None)
def test_minterm_count_matches_enumeration(cube):
    assert cube.minterm_count() == len(minterm_set(cube))
    assert sorted(cube.minterms()) == sorted(minterm_set(cube))


@given(cube_strategy, cube_strategy)
@settings(max_examples=80, deadline=None)
def test_intersection_matches_set_semantics(a, b):
    result = a.intersect(b)
    expected = minterm_set(a) & minterm_set(b)
    if result is None:
        assert expected == set()
    else:
        assert minterm_set(result) == expected


@given(cube_strategy, cube_strategy)
@settings(max_examples=80, deadline=None)
def test_containment_matches_set_semantics(a, b):
    assert a.contains_cube(b) == (minterm_set(b) <= minterm_set(a))


@given(cube_strategy, cube_strategy)
@settings(max_examples=50, deadline=None)
def test_supercube_is_smallest_container(a, b):
    union = minterm_set(a) | minterm_set(b)
    super_ab = a.supercube(b)
    assert union <= minterm_set(super_ab)
    # Minimality: dropping any literal of the supercube is forced; adding
    # any literal of a or b that the supercube dropped would exclude part
    # of the union.
    for var, polarity in list(a.literals()) + list(b.literals()):
        bit = 1 << var
        if not (super_ab.pos | super_ab.neg) & bit:
            candidate = Cube(
                4,
                super_ab.pos | (bit if polarity else 0),
                super_ab.neg | (0 if polarity else bit),
            )
            assert not union <= minterm_set(candidate)


@given(cube_strategy, cube_strategy)
@settings(max_examples=50, deadline=None)
def test_distance_zero_iff_intersecting(a, b):
    assert (a.distance(b) == 0) == (a.intersect(b) is not None)


def test_consensus():
    a = Cube.from_string("11-0")
    b = Cube.from_string("10-0")
    result = a.consensus(b)
    assert result is not None
    assert result.to_string() == "1--0"
    # Distance 0 or >= 2: no consensus.
    assert a.consensus(a) is None
    assert Cube.from_string("11--").consensus(Cube.from_string("00--")) is None


@given(cube_strategy)
@settings(max_examples=40, deadline=None)
def test_consensus_is_implied_by_union(a):
    b_pattern = list(a.to_string())
    # Flip one bound literal to get a distance-1 partner.
    for i, ch in enumerate(b_pattern):
        if ch in "01":
            b_pattern[i] = "0" if ch == "1" else "1"
            break
    else:
        return  # tautology cube: nothing to flip
    b = Cube.from_string("".join(b_pattern))
    result = a.consensus(b)
    assert result is not None
    assert minterm_set(result) <= (minterm_set(a) | minterm_set(b))


def test_without_variable_and_cofactor():
    cube = Cube.from_string("10-1")
    assert cube.without_variable(0).to_string() == "-0-1"
    assert cube.cofactor(0, 1).to_string() == "-0-1"
    assert cube.cofactor(0, 0) is None
    assert cube.cofactor(2, 0).to_string() == "10-1".replace("-", "-", 1)


@given(cube_strategy)
@settings(max_examples=40, deadline=None)
def test_to_function_matches_contains(cube):
    mgr = fresh_manager(4)
    function = cube.to_function(mgr)
    for m in range(16):
        assert function(m) == cube.contains_minterm(m)
