"""Tests for Table II full-quotient formulas (Lemmas 1-5).

The central property: for every operator and every valid divisor, the
Table II quotient equals the semantically derived full quotient, and any
completion of it reconstructs f on the care set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.generic import approximation_for_operator
from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import apply_operator
from repro.core.flexibility import semantic_full_quotient
from repro.core.operators import OPERATORS
from repro.core.quotient import (
    InvalidDivisorError,
    divisor_error_set,
    full_quotient,
    validate_divisor,
)
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)
op_names = st.sampled_from(sorted(OPERATORS))


@given(tt_bits, tt_bits, op_names, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=120, deadline=None)
def test_table2_equals_semantic_quotient(on_bits, dc_bits, op_name, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    op = OPERATORS[op_name]
    rng = make_rng(seed)
    g = approximation_for_operator(f, op, rate=rng.random() * 0.6, rng=rng)
    h_table = full_quotient(f, g, op)
    h_semantic = semantic_full_quotient(f, g, op)
    assert h_table == h_semantic


@given(tt_bits, tt_bits, op_names, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=120, deadline=None)
def test_every_completion_reconstructs_f(on_bits, dc_bits, op_name, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    op = OPERATORS[op_name]
    rng = make_rng(seed)
    g = approximation_for_operator(f, op, rate=rng.random() * 0.6, rng=rng)
    h = full_quotient(f, g, op)
    # Three representative completions: minimum, maximum, and a random one.
    completions = [h.on, h.upper]
    random_dc = mgr.false
    for m in h.dc.minterms():
        if rng.random() < 0.5:
            random_dc = random_dc | mgr.minterm(m)
    completions.append(h.on | random_dc)
    for completion in completions:
        rebuilt = apply_operator(op, g, completion)
        assert (rebuilt & f.care) == (f.on & f.care)


@given(tt_bits, op_names)
@settings(max_examples=60, deadline=None)
def test_paper_h_off_expression_matches(on_bits, op_name):
    """The printed h_off column agrees with on/dc up to dc priority."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0b1010)  # fixed small dc-set
    op = OPERATORS[op_name]
    rng = make_rng(op_name)
    g = approximation_for_operator(f, op, rate=0.3, rng=rng)
    h = full_quotient(f, g, op)
    printed_off = op.quotient_off_printed(f, g)
    assert (printed_off - h.dc) == h.off


def test_exact_divisor_gives_maximum_flexibility_and():
    # g == f (exact): dc of h is everything except f_on -> h on-set = f_on,
    # and the error set is empty.
    mgr = fresh_manager(4)
    f_fn = parse_expression(mgr, "x1 & x2 | x3 & x4")
    f = ISF.completely_specified(f_fn)
    h = full_quotient(f, f_fn, "AND")
    assert h.on == f_fn
    assert h.dc == ~f_fn
    assert divisor_error_set(f, f_fn, "AND").is_false


def test_trivial_divisor_and():
    # g == 1: f = 1 * h forces h == f exactly (no flexibility).
    mgr = fresh_manager(4)
    f_fn = parse_expression(mgr, "x1 ^ x2")
    f = ISF.completely_specified(f_fn)
    h = full_quotient(f, mgr.true, "AND")
    assert h.on == f_fn
    assert h.dc.is_false


def test_validate_divisor_rejections():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(parse_expression(mgr, "x1 & x2"))
    # AND needs an over-approximation; x1&x2&x3 is an under-approximation.
    bad = parse_expression(mgr, "x1 & x2 & x3")
    with pytest.raises(InvalidDivisorError):
        validate_divisor(f, bad, "AND")
    with pytest.raises(InvalidDivisorError):
        full_quotient(f, bad, "AND")
    # OR needs an under-approximation; x1 is an over-approximation.
    with pytest.raises(InvalidDivisorError):
        validate_divisor(f, parse_expression(mgr, "x1"), "OR")
    # XOR accepts anything.
    validate_divisor(f, parse_expression(mgr, "x3"), "XOR")


def test_validate_divisor_dc_freedom():
    # Divisors may take any value on the dc-set of f.
    mgr = fresh_manager(4)
    f = ISF.from_sets(mgr, on_minterms=[3], dc_minterms=[5, 6])
    g = mgr.minterm(3) | mgr.minterm(5)  # raises a dc minterm: allowed
    validate_divisor(f, g, "AND")
    validate_divisor(f, g, "OR")


@given(tt_bits, op_names)
@settings(max_examples=60, deadline=None)
def test_error_set_matches_annotated_quotient_set(on_bits, op_name):
    """Table II observation: h_on or h_off equals the approximation error."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)  # completely specified
    op = OPERATORS[op_name]
    rng = make_rng(op_name + "err")
    g = approximation_for_operator(f, op, rate=0.4, rng=rng)
    h = full_quotient(f, g, op)
    errors = divisor_error_set(f, g, op)
    target = h.on if op.error_in == "on" else h.off
    if op.approximation.name == "ANY":
        assert target == errors
    else:
        assert target == errors


def test_figure1_quotient_values():
    mgr = fresh_manager(4)
    f = ISF.completely_specified(
        parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    )
    g = parse_expression(mgr, "x2 & x4")
    h = full_quotient(f, g, "AND")
    assert sorted(h.on.minterms()) == [7, 13, 15]
    assert sorted(h.off.minterms()) == [5]  # the single introduced error
    assert h.dc.satcount() == 12


def test_mixed_manager_rejected():
    mgr_a = fresh_manager(3)
    mgr_b = fresh_manager(3)
    f = ISF.completely_specified(mgr_a.var("x1"))
    with pytest.raises(ValueError):
        full_quotient(f, mgr_b.var("x1"), "XOR")
