"""Unit tests for the RNG and stopwatch utilities."""

import time

import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng
from repro.utils.timing import Stopwatch


def test_default_seed_rng_is_deterministic():
    first = [make_rng().random() for _ in range(5)]
    second = [make_rng().random() for _ in range(5)]
    assert first == second


def test_integer_seeds_differ():
    assert make_rng(1).random() != make_rng(2).random()


def test_string_seeds_are_stable_and_distinct():
    a1 = make_rng("alpha").random()
    a2 = make_rng("alpha").random()
    b = make_rng("beta").random()
    assert a1 == a2
    assert a1 != b


def test_none_seed_uses_default():
    assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()


def test_tuple_seeds_are_stable_and_respect_boundaries():
    parts = ("random:0.3", "OVER_F", "deadbeef")
    assert make_rng(parts).random() == make_rng(parts).random()
    # Part boundaries matter: ("a", "b") must not collide with ("ab",).
    assert make_rng(("a", "b")).random() != make_rng(("ab",)).random()
    # Mixed part types are allowed and stable.
    assert make_rng(("seed", 7)).random() == make_rng(("seed", 7)).random()


def test_string_seed_hash_is_process_independent():
    """Seeds must not depend on Python's salted hash() (regression).

    A child interpreter (fresh hash salt) must derive the identical
    stream — this is what makes parallel decomposition workers and cache
    re-runs reproducible.
    """
    import subprocess
    import sys

    script = (
        "from repro.utils.rng import make_rng;"
        "print(make_rng(('random:0.3', 'OVER_F', 'fp')).random())"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": ":".join(sys.path), "PYTHONHASHSEED": "random"},
    )
    assert float(out.stdout.strip()) == make_rng(
        ("random:0.3", "OVER_F", "fp")
    ).random()


def test_random_approximator_is_call_order_and_instance_independent():
    """The `random:<rate>` strategy seeds explicitly per (f, kind) —
    the divisor for a function must not depend on which other functions
    were approximated first, or on the resolving engine (regression)."""
    from repro.bdd.serialize import function_fingerprint
    from repro.boolfunc.isf import ISF
    from repro.core.operators import operator_by_name
    from repro.engine import APPROXIMATORS
    from tests.conftest import fresh_manager

    mgr = fresh_manager(4)
    rng = make_rng("rng-regression")
    f_a = ISF.random(mgr, rng)
    f_b = ISF.random(mgr, rng)
    op = operator_by_name("AND")

    strategy = APPROXIMATORS.resolve("random:0.3").func
    forward = (strategy(f_a, op), strategy(f_b, op))
    backward = (strategy(f_b, op), strategy(f_a, op))
    assert forward[0] == backward[1]
    assert forward[1] == backward[0]
    # A freshly resolved strategy object agrees too.
    again = APPROXIMATORS.resolve("random:0.3").func(f_a, op)
    assert function_fingerprint(again) == function_fingerprint(forward[0])
    # An explicit user seed selects a different (but stable) stream.
    seeded = APPROXIMATORS.resolve("random:0.3:myseed").func(f_a, op)
    assert seeded == APPROXIMATORS.resolve("random:0.3:myseed").func(f_a, op)


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch:
        time.sleep(0.01)
    first = watch.elapsed
    assert first >= 0.005
    with watch:
        time.sleep(0.01)
    assert watch.elapsed > first


def test_stopwatch_reset():
    watch = Stopwatch()
    with watch:
        pass
    watch.reset()
    assert watch.elapsed == 0.0


def test_stopwatch_accumulates_when_the_body_raises():
    watch = Stopwatch()
    with pytest.raises(ValueError):
        with watch:
            time.sleep(0.01)
            raise ValueError("boom")
    assert watch.elapsed >= 0.005
    # The clock stopped: the instance is reusable after the exception.
    with watch:
        pass


def test_stopwatch_rejects_reentrant_use():
    watch = Stopwatch()
    with watch:
        with pytest.raises(RuntimeError, match="already running"):
            watch.__enter__()
    # The rejected enter did not corrupt the running interval.
    with watch:
        pass


def test_stopwatch_exit_without_enter_raises():
    watch = Stopwatch()
    with pytest.raises(RuntimeError, match="without a matching"):
        watch.__exit__(None, None, None)
    assert watch.elapsed == 0.0


def test_stopwatch_uses_the_span_clock():
    from repro.obs.trace import CLOCK
    from repro.utils import timing

    assert timing.CLOCK is CLOCK
