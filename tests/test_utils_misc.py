"""Unit tests for the RNG and stopwatch utilities."""

import time

from repro.utils.rng import DEFAULT_SEED, make_rng
from repro.utils.timing import Stopwatch


def test_default_seed_rng_is_deterministic():
    first = [make_rng().random() for _ in range(5)]
    second = [make_rng().random() for _ in range(5)]
    assert first == second


def test_integer_seeds_differ():
    assert make_rng(1).random() != make_rng(2).random()


def test_string_seeds_are_stable_and_distinct():
    a1 = make_rng("alpha").random()
    a2 = make_rng("alpha").random()
    b = make_rng("beta").random()
    assert a1 == a2
    assert a1 != b


def test_none_seed_uses_default():
    assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch:
        time.sleep(0.01)
    first = watch.elapsed
    assert first >= 0.005
    with watch:
        time.sleep(0.01)
    assert watch.elapsed > first


def test_stopwatch_reset():
    watch = Stopwatch()
    with watch:
        pass
    watch.reset()
    assert watch.elapsed == 0.0
