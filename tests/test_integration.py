"""Cross-module integration tests: PLA in -> verified decompositions out."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.expansion import approximate_expand_full
from repro.approx.generic import approximation_for_operator
from repro.benchgen.synthetic import SyntheticSpec, generate_pla
from repro.core.bidecomposition import apply_operator, bidecompose
from repro.core.operators import OPERATORS
from repro.core.quotient import full_quotient
from repro.cover.pla import parse_pla, write_pla
from repro.spp.synthesis import minimize_spp
from repro.techmap.area import area_of_bidecomposition, area_of_spp_covers
from repro.utils.rng import make_rng


def test_pla_roundtrip_through_full_flow():
    """Generate -> serialize -> parse -> decompose -> verify, end to end."""
    spec = SyntheticSpec("integration", 6, 3, 10, 0.6, 1.5)
    pla = parse_pla(write_pla(generate_pla(spec)))
    mgr = pla.make_manager()
    f_covers = []
    pairs = []
    for output in range(pla.n_outputs):
        f = pla.output_isf(mgr, output)
        f_cover = minimize_spp(f)
        f_covers.append(f_cover)
        approx = approximate_expand_full(f, initial=f_cover)
        h = full_quotient(f, approx.g, "AND")
        h_cover = minimize_spp(h)
        rebuilt = apply_operator("AND", approx.g, h_cover.to_function(mgr))
        assert (rebuilt & f.care) == (f.on & f.care)
        pairs.append((approx.g_cover, h_cover))
    area_f = area_of_spp_covers(f_covers, mgr.var_names)
    area_dec = area_of_bidecomposition(pairs, "AND", mgr.var_names)
    assert area_f > 0 and area_dec > 0


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_all_operators_full_pipeline_on_random_function(seed):
    """The paper's future work: all ten operators, one random function."""
    rng = make_rng(seed)
    from tests.conftest import fresh_manager, isf_from_masks

    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, rng.getrandbits(16), rng.getrandbits(4))
    for op in OPERATORS.values():

        def approximator(isf, operator):
            return approximation_for_operator(isf, operator, 0.25, rng)

        dec = bidecompose(f, op, approximator)
        assert dec.verify(), op.name


def test_decomposition_chain_endpoints():
    """The paper's introduction: the sequence from (g0=f, h0=1) to
    (gn=1, hn=f) — both endpoints are valid AND bi-decompositions."""
    from tests.conftest import fresh_manager

    mgr = fresh_manager(4)
    from repro.bdd.expr import parse_expression
    from repro.boolfunc.isf import ISF

    f_fn = parse_expression(mgr, "x1 & (x2 | x3) ^ x4")
    f = ISF.completely_specified(f_fn)
    # g0 = f: h gets maximal flexibility (dc = g_off).
    start = bidecompose(f, "AND", f_fn)
    assert start.verify()
    assert start.h.dc == ~f_fn
    # gn = 1: h must be exactly f.
    end = bidecompose(f, "AND", mgr.true)
    assert end.verify()
    assert end.h.on == f_fn and end.h.dc.is_false


def test_accuracy_controls_quotient_flexibility():
    """Paper Section III-A: "the more accurate is the approximation g,
    the smaller is the off-set of the function h and the largest is
    h_dc" — for AND, rising error rates shrink the quotient's dc-set."""
    from tests.conftest import fresh_manager
    from repro.bdd.expr import parse_expression
    from repro.boolfunc.isf import ISF

    mgr = fresh_manager(4)
    f_fn = parse_expression(mgr, "x1 & x2 | x3 & x4")
    f = ISF.completely_specified(f_fn)
    previous_dc = 1 << 30
    previous_off = -1
    for rate in (0.0, 0.3, 0.8):
        g = approximation_for_operator(f, "AND", rate, make_rng(7))
        h = full_quotient(f, g, "AND")
        dc_count = h.dc.satcount()
        off_count = h.off.satcount()
        assert dc_count <= previous_dc
        assert off_count >= previous_off
        previous_dc, previous_off = dc_count, off_count
