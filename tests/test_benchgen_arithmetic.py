"""Tests for the arithmetic benchmark generators."""

import math

import pytest

from repro.benchgen.arithmetic import (
    ARITHMETIC_GENERATORS,
    adder,
    interleaved_adder,
)
from repro.benchgen.paper_data import PAPER_ROWS


def word_of(bit_functions, minterm, n_outputs):
    value = 0
    for fn in bit_functions:
        value = (value << 1) | fn(minterm)
    return value


def test_all_generators_match_paper_arity():
    for name, generator in ARITHMETIC_GENERATORS.items():
        outputs, n_vars = generator()
        row = PAPER_ROWS[name]
        assert n_vars == row.n_inputs, name
        assert len(outputs) == row.n_outputs, name


def test_adder_is_correct():
    outputs, n_vars = adder(3)
    assert n_vars == 6
    for a in range(8):
        for b in range(8):
            minterm = (a << 3) | b
            assert word_of(outputs, minterm, 4) == a + b


def test_adder_with_carry():
    outputs, n_vars = adder(2, carry_in=True)
    assert n_vars == 5
    for a in range(4):
        for b in range(4):
            for carry in range(2):
                minterm = (a << 3) | (b << 1) | carry
                assert word_of(outputs, minterm, 3) == a + b + carry


def test_interleaved_adder_matches_plain_adder_values():
    outputs, n_vars = interleaved_adder(3)
    assert n_vars == 6
    for a in range(8):
        for b in range(8):
            minterm = 0
            for i in range(3):
                minterm = (minterm << 2) | (((a >> (2 - i)) & 1) << 1) | (
                    (b >> (2 - i)) & 1
                )
            assert word_of(outputs, minterm, 4) == a + b


def test_z4_is_3bit_adder_with_carry():
    outputs, n_vars = ARITHMETIC_GENERATORS["z4"]()
    assert n_vars == 7
    minterm = (0b101 << 4) | (0b011 << 1) | 1  # 5 + 3 + 1
    assert word_of(outputs, minterm, 4) == 9


def test_dist_is_euclidean_norm():
    outputs, n_vars = ARITHMETIC_GENERATORS["dist"]()
    for a, b in ((0, 0), (3, 4), (15, 15), (7, 1)):
        minterm = (a << 4) | b
        assert word_of(outputs, minterm, 5) == round(math.sqrt(a * a + b * b))


def test_clip_saturates():
    outputs, n_vars = ARITHMETIC_GENERATORS["clip"]()
    # a = 31, b = 15: (31*15) >> 3 = 58 -> saturates at 31.
    minterm = (31 << 4) | 15
    assert word_of(outputs, minterm, 5) == 31
    # a = 2, b = 4: (8) >> 3 = 1.
    minterm = (2 << 4) | 4
    assert word_of(outputs, minterm, 5) == 1


def test_power_laws_are_monotone_and_in_range():
    for name, exponent_range in (("max512", 6), ("max1024", 6)):
        outputs, n_vars = ARITHMETIC_GENERATORS[name]()
        previous = 0
        for x in range(1 << n_vars):
            value = word_of(outputs, x, exponent_range)
            assert 0 <= value < (1 << exponent_range)
            assert value >= previous - 1  # allow rounding plateaus
            previous = max(previous, value)


def test_log8mod_values():
    outputs, _ = ARITHMETIC_GENERATORS["log8mod"]()
    assert word_of(outputs, 0, 5) == 0
    assert word_of(outputs, 255, 5) == round(8 * math.log2(256)) % 32


def test_z5xp1_affine():
    outputs, _ = ARITHMETIC_GENERATORS["Z5xp1"]()
    for x in (0, 1, 77, 127):
        assert word_of(outputs, x, 10) == 5 * x + 1


def test_ex7_leading_zeros():
    outputs, _ = ARITHMETIC_GENERATORS["ex7"]()
    assert word_of(outputs, 0, 5) == 16
    assert word_of(outputs, 1, 5) == 15
    assert word_of(outputs, 0x8000, 5) == 0
    assert word_of(outputs, 0x0100, 5) == 7


def test_radd_and_adr4_differ_structurally():
    adr4_outputs, _ = ARITHMETIC_GENERATORS["adr4"]()
    radd_outputs, _ = ARITHMETIC_GENERATORS["radd"]()
    different = any(
        adr4_outputs[j](m) != radd_outputs[j](m)
        for j in range(5)
        for m in range(0, 256, 7)
    )
    assert different
