"""Incremental prefix/suffix OR chains (twolevel/chains.py)."""

from random import Random

from repro.boolfunc.isf import ISF
from repro.cover.cube import Cube
from repro.spp.synthesis import _spp_irredundant, minimize_spp_heuristic
from repro.spp.spp_cover import SppCover
from repro.spp.pseudocube import Pseudocube
from repro.twolevel.chains import ChainMemo, irredundant_sweep
from repro.twolevel.espresso import _irredundant, espresso_minimize
from tests.conftest import fresh_manager, isf_from_masks


def random_cubes(rng: Random, n_vars: int, count: int) -> list[Cube]:
    cubes = []
    for _ in range(count):
        pos = neg = 0
        for var in rng.sample(range(n_vars), rng.randint(1, n_vars)):
            if rng.random() < 0.5:
                pos |= 1 << var
            else:
                neg |= 1 << var
        cubes.append(Cube(n_vars, pos, neg))
    return cubes


def sweep_reference(items, to_function, base):
    """The pre-memo prefix/suffix sweep, verbatim."""
    functions = [to_function(item) for item in items]
    mgr = base.mgr
    suffix = [mgr.false] * (len(items) + 1)
    for index in range(len(items) - 1, -1, -1):
        suffix[index] = suffix[index + 1] | functions[index]
    kept = []
    prefix = base
    for index, (item, function) in enumerate(zip(items, functions)):
        if function <= prefix | suffix[index + 1]:
            continue
        kept.append(item)
        prefix = prefix | function
    return kept


def test_sweep_matches_reference_on_random_covers():
    rng = Random(7)
    for trial in range(25):
        mgr = fresh_manager(5)
        cubes = random_cubes(rng, 5, rng.randint(0, 10))
        base = mgr.false
        if rng.random() < 0.5:
            base = Cube(5, 1, 0).to_function(mgr)
        to_function = lambda cube: cube.to_function(mgr)
        expected = sweep_reference(cubes, to_function, base)
        got = irredundant_sweep(cubes, to_function, base)
        assert got == expected, trial


def test_memoized_restart_reuses_chains_and_agrees():
    rng = Random(21)
    mgr = fresh_manager(6)
    cubes = random_cubes(rng, 6, 12)
    base = mgr.false
    to_function = lambda cube: cube.to_function(mgr)
    memo = ChainMemo()
    first = memo.sweep(cubes, to_function, base)
    cold_misses = memo.stats["verdict_misses"]
    second = memo.sweep(first, to_function, base)
    # A sweep over its own kept set drops nothing and is served from the
    # memo when the kept set equals the input (all suffix links reused).
    assert second == sweep_reference(first, to_function, base)
    if first == cubes:
        assert memo.stats["verdict_misses"] == cold_misses
    assert memo.stats["link_hits"] > 0 or first != cubes


def test_memo_distinguishes_bases():
    mgr = fresh_manager(3)
    cube = Cube(3, 0b001, 0)
    to_function = lambda c: c.to_function(mgr)
    memo = ChainMemo()
    # Base covering the cube: it is redundant. Empty base: it is kept.
    covered = memo.sweep([cube], to_function, mgr.true)
    kept = memo.sweep([cube], to_function, mgr.false)
    assert covered == []
    assert kept == [cube]


def test_espresso_identical_with_shared_chain_memo():
    rng = Random(3)
    for trial in range(10):
        mgr = fresh_manager(5)
        on = rng.getrandbits(32)
        dc = rng.getrandbits(32) & rng.getrandbits(32)
        isf = isf_from_masks(mgr, on, dc)
        cover = espresso_minimize(isf)
        # The memoized run must agree with a round-by-round fresh-memo
        # reference: _irredundant(memo=None) is the from-scratch sweep.
        fresh = _irredundant(cover, isf.dc, mgr, None)
        memo = ChainMemo()
        assert _irredundant(cover, isf.dc, mgr, memo).cubes == fresh.cubes
        assert _irredundant(cover, isf.dc, mgr, memo).cubes == fresh.cubes


def test_spp_irredundant_identical_with_memo():
    rng = Random(9)
    mgr = fresh_manager(5)
    isf = isf_from_masks(mgr, rng.getrandbits(32), 0)
    cover = minimize_spp_heuristic(isf)
    padded = SppCover(
        cover.n_vars,
        list(cover.pseudocubes) + list(cover.pseudocubes),
    )
    memo = ChainMemo()
    with_memo = _spp_irredundant(padded, isf.dc, mgr, memo)
    without = _spp_irredundant(padded, isf.dc, mgr, None)
    assert with_memo.pseudocubes == without.pseudocubes


def test_full_minimizers_unchanged_by_chain_memo():
    # The memo is wired into espresso_minimize/minimize_spp_heuristic
    # unconditionally; their outputs must equal a reference computed
    # with per-call sweeps (guarded by the cross-round purity of the
    # memo). Differential: rebuild the function and compare semantics.
    rng = Random(17)
    for _ in range(5):
        mgr = fresh_manager(5)
        isf = isf_from_masks(mgr, rng.getrandbits(32), rng.getrandbits(8))
        sop = espresso_minimize(isf)
        realized = sop.to_function(mgr)
        assert isf.on <= realized and realized <= isf.upper
        spp = minimize_spp_heuristic(isf)
        realized_spp = spp.to_function(mgr)
        assert isf.on <= realized_spp and realized_spp <= isf.upper
