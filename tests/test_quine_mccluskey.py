"""Tests for exact Quine-McCluskey minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cover.cube import Cube
from repro.twolevel.quine_mccluskey import generate_primes, minimize_exact
from tests.conftest import fresh_manager


def minterm_set(cube: Cube) -> set[int]:
    return set(cube.minterms())


def is_implicant(cube: Cube, allowed: set[int]) -> bool:
    return minterm_set(cube) <= allowed


def brute_force_primes(n_vars: int, allowed: set[int]) -> set[Cube]:
    """All prime implicants by enumeration of every cube."""
    primes = set()
    patterns = ["0", "1", "-"]

    def all_cubes(prefix: str):
        if len(prefix) == n_vars:
            yield Cube.from_string(prefix)
            return
        for ch in patterns:
            yield from all_cubes(prefix + ch)

    implicants = [c for c in all_cubes("") if minterm_set(c) and is_implicant(c, allowed)]
    for cube in implicants:
        is_prime = True
        for other in implicants:
            if other != cube and other.contains_cube(cube):
                is_prime = False
                break
        if is_prime:
            primes.add(cube)
    return primes


@given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=25, deadline=None)
def test_primes_match_brute_force(on_bits, dc_bits):
    on = {m for m in range(16) if (on_bits >> m) & 1}
    dc = {m for m in range(16) if (dc_bits >> m) & 1} - on
    allowed = on | dc
    expected = brute_force_primes(4, allowed)
    got = set(generate_primes(4, on, dc))
    assert got == expected


def test_primes_of_full_space():
    assert generate_primes(3, range(8)) == [Cube.tautology(3)]


def test_primes_empty():
    assert generate_primes(3, []) == []


@given(st.integers(min_value=1, max_value=2**16 - 1), st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=25, deadline=None)
def test_minimize_exact_is_correct_and_prime(on_bits, dc_bits):
    on = {m for m in range(16) if (on_bits >> m) & 1}
    dc = {m for m in range(16) if (dc_bits >> m) & 1} - on
    cover = minimize_exact(4, on, dc)
    covered = set()
    for cube in cover:
        covered |= minterm_set(cube)
    assert on <= covered
    assert covered <= on | dc


def test_minimize_exact_empty_on_set():
    assert minimize_exact(3, []).cube_count() == 0


def test_known_minimal_example():
    # f = majority(a, b, c): minimum SOP is ab + ac + bc.
    on = [0b011, 0b101, 0b110, 0b111]
    cover = minimize_exact(3, on)
    assert cover.cube_count() == 3
    assert cover.literal_count() == 6


def test_paper_figure1_function():
    # f = x1 x2 x4 + x2 x3 x4 -> 2 products, 6 literals.
    on = [7, 13, 15]
    cover = minimize_exact(4, on)
    assert cover.cube_count() == 2
    assert cover.literal_count() == 6


def test_dc_enables_smaller_cover():
    # With the dc-set of the paper's Figure 1 quotient, h = x1 + x3.
    mgr = fresh_manager(4)
    on = [7, 13, 15]
    dc = [m for m in range(16) if m not in on and m != 5]
    cover = minimize_exact(4, on, dc)
    assert cover.literal_count() == 2
    function = cover.to_function(mgr)
    assert all(function(m) for m in on)
    assert not function(5)


def test_product_count_is_primary_cost():
    # Two products of 3 literals beat three products of 2 literals under
    # the default weighting.
    on = list(range(8))
    cover = minimize_exact(3, on)
    assert cover.cube_count() == 1
    assert cover.cubes[0].literal_count == 0
