"""Tests for the generic random approximators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.error import error_count, error_rate, output_error_rate
from repro.approx.generic import (
    approximation_for_kind,
    approximation_for_operator,
    mixed_approximation,
    over_approximation,
    under_approximation,
)
from repro.core.operators import OPERATORS, ApproximationKind
from repro.core.quotient import validate_divisor
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)
rates = st.floats(min_value=0.0, max_value=1.0)


@given(tt_bits, tt_bits, rates, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_over_approximation_direction(on_bits, dc_bits, rate, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    g = over_approximation(f, rate, make_rng(seed))
    assert f.on <= g  # 0->1 only
    assert (g & f.off & ~f.dc).satcount() == error_count(f, g)


@given(tt_bits, tt_bits, rates, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_under_approximation_direction(on_bits, dc_bits, rate, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    g = under_approximation(f, rate, make_rng(seed))
    assert (g & f.off).is_false  # 1->0 only


@given(tt_bits, rates, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_mixed_approximation_error_count(on_bits, rate, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    g = mixed_approximation(f, rate, make_rng(seed))
    care_minterms = 16
    expected_flips = min(care_minterms, round(rate * care_minterms))
    assert error_count(f, g) == expected_flips


def test_rate_extremes():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b0000_1111_0000_1111, 0)
    rng = make_rng(0)
    exact = over_approximation(f, 0.0, rng)
    assert exact == f.on
    full = over_approximation(f, 1.0, make_rng(0))
    assert full.is_true  # every off-minterm flipped


@given(tt_bits, st.sampled_from(sorted(OPERATORS)), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_operator_dispatch_yields_valid_divisor(on_bits, op_name, seed):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0b0110)
    op = OPERATORS[op_name]
    rng = make_rng(seed)
    g = approximation_for_operator(f, op, rate=rng.random(), rng=rng)
    validate_divisor(f, g, op)  # must not raise


def test_kind_dispatch_covers_all_kinds():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b0011_1100_0101_1010, 0)
    rng = make_rng(1)
    for kind in ApproximationKind:
        g = approximation_for_kind(f, kind, 0.25, rng)
        if kind is ApproximationKind.OVER_F:
            assert f.on <= g
        elif kind is ApproximationKind.UNDER_F:
            assert g <= f.on
        elif kind is ApproximationKind.OVER_COMPLEMENT:
            assert f.off <= g
        elif kind is ApproximationKind.UNDER_COMPLEMENT:
            assert g <= f.off


def test_error_rate_definition():
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, 0b0000_0000_1111_1111, 0)
    g = f.on | mgr.minterm(15)
    assert error_count(f, g) == 1
    assert error_rate(f, g) == 1 / 16


def test_output_error_rate_aggregates():
    mgr = fresh_manager(4)
    f0 = isf_from_masks(mgr, 0b0000_0000_1111_1111, 0)
    f1 = isf_from_masks(mgr, 0b1111_0000_0000_0000, 0)
    g0 = f0.on | mgr.minterm(15)  # 1 flip
    g1 = f1.on | mgr.minterm(0) | mgr.minterm(1)  # 2 flips
    assert output_error_rate([(f0, g0), (f1, g1)]) == 3 / 32


def test_output_error_rate_requires_pairs():
    import pytest

    with pytest.raises(ValueError):
        output_error_rate([])
