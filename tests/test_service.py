"""Decomposition service: coalescing, sharded cache, fleet, wire identity.

The identity discipline under test: a service response's *result* must
match what an in-process run produces, byte for byte, once the
informational channels are stripped — ``timings``/``bdd_stats`` on
decompose payloads; ``pool_stats``/``engine_stats``/``time_s`` on netsyn
payloads.  Those channels report *how* a result was computed (wall
time, which manager, warm hits) and legitimately differ between a warm
worker and a cold process; everything else may not.
"""

import asyncio
import json

import pytest

from repro.bdd.serialize import canonical_hash
from repro.benchgen.registry import load_benchmark
from repro.core.operators import EXPERIMENT_OPERATORS
from repro.engine import wire
from repro.engine.decomposer import Decomposer
from repro.engine.parallel import make_work_item
from repro.netsyn.synthesis import NetsynConfig, synthesize_instance
from repro.service import (
    Coalescer,
    DecompositionService,
    ServerThread,
    ServiceClient,
    ServiceError,
    ShardedResultCache,
)

INFORMATIONAL_RESULT_KEYS = frozenset(("timings", "bdd_stats"))
INFORMATIONAL_NETSYN_KEYS = frozenset(("pool_stats", "engine_stats", "time_s"))


def stripped(payload: dict, informational: frozenset) -> dict:
    return {k: v for k, v in payload.items() if k not in informational}


def work_item(isf, name="f", op="auto", backend="auto"):
    return make_work_item(
        name,
        wire.isf_to_payload(isf),
        op,
        "expand-full",
        "spp",
        True,
        EXPERIMENT_OPERATORS,
        backend=backend,
    )


def in_process_payload(isf, name="f", op="auto", backend="auto"):
    engine = Decomposer(
        approximator="expand-full",
        minimizer="spp",
        operators=EXPERIMENT_OPERATORS,
        verify=True,
        backend=backend,
    )
    return wire.result_to_payload(engine.decompose(isf, op, name=name))


def drive(service, envelopes):
    """Run N ``handle`` coroutines concurrently on one fresh loop.

    ``asyncio.gather`` starts the tasks in order under cooperative
    scheduling: the leader registers its in-flight future before its
    first await completes, so every duplicate deterministically joins
    the flight — no socket timing involved.
    """

    async def _run():
        return await asyncio.gather(*(service.handle(e) for e in envelopes))

    return asyncio.run(_run())


@pytest.fixture(scope="module")
def z4():
    return load_benchmark("z4")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    thread = ServerThread(
        jobs=2,
        cache_dir=str(tmp_path_factory.mktemp("svc-cache")),
        cache_shards=4,
    )
    thread.start()
    yield thread
    thread.stop()


# ---------------------------------------------------------------------------
# Coalescer (unit)
# ---------------------------------------------------------------------------


def test_coalescer_runs_once_and_shares_value():
    async def _run():
        coalescer = Coalescer()
        calls = {"n": 0}

        async def compute():
            calls["n"] += 1
            await asyncio.sleep(0)
            return {"value": calls["n"]}

        outcomes = await asyncio.gather(
            *(coalescer.run("k", compute) for _ in range(5))
        )
        assert calls["n"] == 1
        values = {id(value) for value, _ in outcomes}
        assert len(values) == 1  # literally the same object, not a copy
        flags = sorted(flag for _, flag in outcomes)
        assert flags == [False, True, True, True, True]
        assert coalescer.stats == {"leaders": 1, "followers": 4}
        assert len(coalescer) == 0  # flight cleaned up
        assert 0.79 < coalescer.coalesce_rate() < 0.81

    asyncio.run(_run())


def test_coalescer_shares_failures_and_recovers():
    async def _run():
        coalescer = Coalescer()
        calls = {"n": 0}

        async def explode():
            calls["n"] += 1
            await asyncio.sleep(0)
            raise ValueError("boom")

        outcomes = await asyncio.gather(
            *(coalescer.run("k", explode) for _ in range(3)),
            return_exceptions=True,
        )
        assert calls["n"] == 1
        assert all(isinstance(o, ValueError) for o in outcomes)
        # A failed flight must not poison the key for later arrivals.
        async def ok():
            return "fine"

        value, coalesced = await coalescer.run("k", ok)
        assert (value, coalesced) == ("fine", False)

    asyncio.run(_run())


def test_distinct_keys_do_not_coalesce():
    async def _run():
        coalescer = Coalescer()

        async def make(n):
            await asyncio.sleep(0)
            return n

        outcomes = await asyncio.gather(
            *(coalescer.run(f"k{i}", lambda i=i: make(i)) for i in range(3))
        )
        assert [value for value, _ in outcomes] == [0, 1, 2]
        assert coalescer.stats == {"leaders": 3, "followers": 0}

    asyncio.run(_run())


# ---------------------------------------------------------------------------
# Sharded cache (unit)
# ---------------------------------------------------------------------------


def test_sharded_cache_routes_by_prefix_and_aggregates(tmp_path):
    cache = ShardedResultCache(tmp_path, shards=4)
    keys = [canonical_hash({"i": i}) for i in range(16)]
    for index, key in enumerate(keys):
        cache.put(key, {"index": index})
    assert len(cache) == 16
    for index, key in enumerate(keys):
        shard = cache.shard_for(key)
        assert shard is cache.shards[int(key[:8], 16) % 4]
        assert shard.path_for(key).exists()
        assert cache.get(key) == {"index": index}
    assert cache.get("ff" * 32) is None
    stats = cache.stats
    assert stats["stores"] == 16 and stats["hits"] == 16
    assert stats["misses"] == 1 and stats["evictions"] == 0
    assert 0.93 < cache.hit_rate() < 0.95
    # Keys spread over more than one shard (SHA-256 prefixes are uniform).
    assert sum(1 for shard in cache.shards if len(shard)) > 1


def test_sharded_cache_evicts_within_the_loaded_shard(tmp_path):
    cache = ShardedResultCache(tmp_path, shards=2, max_entries=4)
    # Per-shard budget is 2; aim 4 keys at one shard to force eviction
    # there while the other shard stays untouched.
    target = 0
    hot = [k for i in range(64) if
           (k := canonical_hash({"i": i})) and int(k[:8], 16) % 2 == target][:4]
    for index, key in enumerate(hot):
        cache.put(key, {"index": index})
    assert cache.stats["evictions"] == 2
    assert len(cache.shards[target]) == 2
    assert len(cache.shards[1 - target]) == 0


def test_sharded_cache_rejects_bad_shard_count(tmp_path):
    with pytest.raises(ValueError):
        ShardedResultCache(tmp_path, shards=0)


# ---------------------------------------------------------------------------
# Service.handle: coalescing + identity (no sockets)
# ---------------------------------------------------------------------------


def test_concurrent_identical_requests_compute_once(z4):
    service = DecompositionService(jobs=2)
    try:
        item = work_item(z4.outputs[1], name="o1")
        envelopes = [
            wire.svc_request("decompose", item, f"r{i}") for i in range(6)
        ]
        responses = drive(service, envelopes)
        assert all(r["ok"] for r in responses)
        # Byte-identical payloads: strip only the per-request envelope
        # fields (id + service stats); the *results* must already agree.
        bodies = {
            json.dumps(r["result"], sort_keys=True) for r in responses
        }
        assert len(bodies) == 1
        # ... computed exactly once:
        assert service.fleet.stats["dispatched"] == 1
        assert service.coalescer.stats == {"leaders": 1, "followers": 5}
        flags = sorted(r["stats"]["coalesced"] for r in responses)
        assert flags == [False] + [True] * 5
        # The worker-side computation counter confirms a single warm
        # worker ran the single computation.
        workers = {
            json.dumps(r["stats"]["worker"], sort_keys=True)
            for r in responses
        }
        assert len(workers) == 1
        assert responses[0]["stats"]["worker"]["computed"] == 1
    finally:
        service.close()


def test_backend_variants_coalesce_and_match_both_backends(z4):
    # The coalescing key is backend-free: a bdd and a bitset request for
    # the same function share one flight, and the shared payload matches
    # an in-process run of *either* backend (stripped of the
    # informational channels).
    service = DecompositionService(jobs=2)
    try:
        isf = z4.outputs[0]
        envelopes = [
            wire.svc_request(
                "decompose", work_item(isf, name="o0", backend=backend), backend
            )
            for backend in ("bdd", "bitset")
        ]
        responses = drive(service, envelopes)
        assert all(r["ok"] for r in responses)
        assert service.fleet.stats["dispatched"] == 1
        served = stripped(responses[0]["result"], INFORMATIONAL_RESULT_KEYS)
        for backend in ("bdd", "bitset"):
            expected = in_process_payload(isf, name="o0", backend=backend)
            assert served == stripped(expected, INFORMATIONAL_RESULT_KEYS)
    finally:
        service.close()


def test_decompose_many_orders_results_and_coalesces_duplicates(z4):
    service = DecompositionService(jobs=2)
    try:
        items = [
            work_item(z4.outputs[0], name="a"),
            work_item(z4.outputs[1], name="b"),
            work_item(z4.outputs[0], name="a"),  # intra-batch duplicate
        ]
        (response,) = drive(
            service,
            [wire.svc_request("decompose_many", {"items": items}, "batch")],
        )
        assert response["ok"]
        results = response["result"]["results"]
        assert len(results) == 3
        assert results[0] == results[2]  # the duplicate shared the flight
        assert results[0] != results[1]
        assert response["stats"]["items"] == 3
        assert response["stats"]["coalesced"] == 1
        assert service.fleet.stats["dispatched"] == 2
    finally:
        service.close()


def test_cache_persists_across_service_restarts(z4, tmp_path):
    item = work_item(z4.outputs[2], name="o2")
    envelope = wire.svc_request("decompose", item, "one")

    first = DecompositionService(jobs=1, cache_dir=tmp_path)
    try:
        (response,) = drive(first, [envelope])
        assert response["ok"]
        assert response["stats"]["served_by"] == "fleet"
        warm_payload = response["result"]
    finally:
        first.close()

    second = DecompositionService(jobs=1, cache_dir=tmp_path, prewarm=False)
    try:
        (cached,) = drive(second, [envelope])
        assert cached["ok"]
        assert cached["stats"]["served_by"] == "cache"
        assert cached["result"] == warm_payload  # byte-identical from disk
        assert second.fleet.stats["dispatched"] == 0
        assert second.stats["cache_hits"] == 1
    finally:
        second.close()


def test_malformed_and_failing_requests_become_error_envelopes():
    service = DecompositionService(jobs=1, prewarm=False)
    try:
        responses = drive(
            service,
            [
                {"format": "not-svc", "kind": "decompose"},
                wire.svc_request("decompose", {"name": "x"}, "no-f"),
                wire.svc_request("netsyn", {"benchmark": "no-such"}, "nb"),
                wire.svc_request("netsyn", {}, "nt"),
            ],
        )
        assert [r["ok"] for r in responses] == [False] * 4
        assert responses[0]["error"]["type"] == "bad-request"
        assert responses[1]["error"]["type"] == "bad-request"
        assert "'f'" in responses[1]["error"]["message"]
        assert responses[2]["error"]["type"] == "KeyError"
        assert responses[3]["error"]["type"] == "bad-request"
        # Failures are replies, not crashes: the service still serves.
        (status,) = drive(service, [wire.svc_request("status", None, "s")])
        assert status["ok"]
        assert status["result"]["requests"]["errors"] >= 3
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Socket server + client: wire identity end to end
# ---------------------------------------------------------------------------


def test_socket_decompose_matches_in_process_across_backends(server, z4):
    with ServiceClient(server.host, server.port) as client:
        for backend in ("bdd", "bitset"):
            for index in (0, 3):
                isf = z4.outputs[index]
                payload, stats = client.decompose(
                    work_item(isf, name=f"o{index}", backend=backend)
                )
                assert stats["served_by"] in ("fleet", "cache")
                expected = in_process_payload(
                    isf, name=f"o{index}", backend=backend
                )
                assert stripped(
                    payload, INFORMATIONAL_RESULT_KEYS
                ) == stripped(expected, INFORMATIONAL_RESULT_KEYS)


def test_socket_netsyn_matches_in_process_and_warm_pool_stays_exact(
    server, z4
):
    with ServiceClient(server.host, server.port) as client:
        result, stats = client.netsyn(benchmark="z4")
        expected = wire.netsyn_result_to_payload(
            synthesize_instance(load_benchmark("z4"))
        )
        assert stripped(result, INFORMATIONAL_NETSYN_KEYS) == stripped(
            expected, INFORMATIONAL_NETSYN_KEYS
        )
        # A different config is a different cache key, so this computes
        # on the fleet — seeded with the first run's warm covers.
        config = {"literal_threshold": 11}
        warm, warm_stats = client.netsyn(benchmark="z4", config=config)
        assert warm_stats["served_by"] == "fleet"
        assert warm["pool_stats"]["warm_hits"] > 0
        expected_warm = wire.netsyn_result_to_payload(
            synthesize_instance(
                load_benchmark("z4"), config=NetsynConfig(literal_threshold=11)
            )
        )
        assert stripped(warm, INFORMATIONAL_NETSYN_KEYS) == stripped(
            expected_warm, INFORMATIONAL_NETSYN_KEYS
        )


def test_status_probe_reports_all_sections(server):
    with ServiceClient(server.host, server.port) as client:
        status = client.status()
    assert set(status) == {"requests", "fleet", "coalesce", "cache", "pool"}
    assert status["fleet"]["size"] == 2
    assert status["fleet"]["prewarmed"] >= 1
    assert status["cache"]["shards"] == 4
    assert status["cache"]["entries"] >= 1
    assert status["pool"]["warm_covers"] >= 1


def test_server_rejects_garbage_lines_and_keeps_serving(server):
    import socket as socket_module

    with socket_module.create_connection(
        (server.host, server.port), timeout=60
    ) as sock:
        handle = sock.makefile("rwb")
        handle.write(b"this is not json\n")
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-json"
    with ServiceClient(server.host, server.port) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.request("decompose", {"name": "missing-f"})
        assert excinfo.value.type == "bad-request"
        assert client.status()["requests"]["requests"] >= 1


def test_shutdown_request_stops_the_server():
    thread = ServerThread(jobs=1, prewarm=False)
    thread.start()
    try:
        with ServiceClient(thread.host, thread.port) as client:
            assert client.shutdown() == {"stopping": True}
        thread._thread.join(timeout=60)
        assert not thread._thread.is_alive()
    finally:
        thread.stop()
