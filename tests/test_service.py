"""Decomposition service: coalescing, sharded cache, fleet, wire identity.

The identity discipline under test: a service response's *result* must
match what an in-process run produces, byte for byte, once the
informational channels are stripped — ``timings``/``bdd_stats`` on
decompose payloads; ``pool_stats``/``engine_stats``/``time_s`` on netsyn
payloads.  Those channels report *how* a result was computed (wall
time, which manager, warm hits) and legitimately differ between a warm
worker and a cold process; everything else may not.
"""

import asyncio
import json

import pytest

from repro.bdd.serialize import canonical_hash
from repro.benchgen.registry import load_benchmark
from repro.core.operators import EXPERIMENT_OPERATORS
from repro.engine import wire
from repro.engine.decomposer import Decomposer
from repro.engine.parallel import make_work_item
from repro.netsyn.synthesis import NetsynConfig, synthesize_instance
from repro.service import (
    Coalescer,
    DecompositionService,
    FleetTimeout,
    ServerThread,
    ServiceClient,
    ServiceError,
    ShardedResultCache,
    WorkerFleet,
    render_prometheus,
)
from repro.service.fleet import _worker_ident, service_sleep

INFORMATIONAL_RESULT_KEYS = frozenset(("timings", "bdd_stats"))
INFORMATIONAL_NETSYN_KEYS = frozenset(("pool_stats", "engine_stats", "time_s"))


def stripped(payload: dict, informational: frozenset) -> dict:
    return {k: v for k, v in payload.items() if k not in informational}


def work_item(isf, name="f", op="auto", backend="auto"):
    return make_work_item(
        name,
        wire.isf_to_payload(isf),
        op,
        "expand-full",
        "spp",
        True,
        EXPERIMENT_OPERATORS,
        backend=backend,
    )


def in_process_payload(isf, name="f", op="auto", backend="auto"):
    engine = Decomposer(
        approximator="expand-full",
        minimizer="spp",
        operators=EXPERIMENT_OPERATORS,
        verify=True,
        backend=backend,
    )
    return wire.result_to_payload(engine.decompose(isf, op, name=name))


def drive(service, envelopes):
    """Run N ``handle`` coroutines concurrently on one fresh loop.

    ``asyncio.gather`` starts the tasks in order under cooperative
    scheduling: the leader registers its in-flight future before its
    first await completes, so every duplicate deterministically joins
    the flight — no socket timing involved.
    """

    async def _run():
        return await asyncio.gather(*(service.handle(e) for e in envelopes))

    return asyncio.run(_run())


@pytest.fixture(scope="module")
def z4():
    return load_benchmark("z4")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    thread = ServerThread(
        jobs=2,
        cache_dir=str(tmp_path_factory.mktemp("svc-cache")),
        cache_shards=4,
    )
    thread.start()
    yield thread
    thread.stop()


# ---------------------------------------------------------------------------
# Coalescer (unit)
# ---------------------------------------------------------------------------


def test_coalescer_runs_once_and_shares_value():
    async def _run():
        coalescer = Coalescer()
        calls = {"n": 0}

        async def compute():
            calls["n"] += 1
            await asyncio.sleep(0)
            return {"value": calls["n"]}

        outcomes = await asyncio.gather(
            *(coalescer.run("k", compute) for _ in range(5))
        )
        assert calls["n"] == 1
        values = {id(value) for value, _ in outcomes}
        assert len(values) == 1  # literally the same object, not a copy
        flags = sorted(flag for _, flag in outcomes)
        assert flags == [False, True, True, True, True]
        assert coalescer.stats == {"leaders": 1, "followers": 4}
        assert len(coalescer) == 0  # flight cleaned up
        assert 0.79 < coalescer.coalesce_rate() < 0.81

    asyncio.run(_run())


def test_coalescer_shares_failures_and_recovers():
    async def _run():
        coalescer = Coalescer()
        calls = {"n": 0}

        async def explode():
            calls["n"] += 1
            await asyncio.sleep(0)
            raise ValueError("boom")

        outcomes = await asyncio.gather(
            *(coalescer.run("k", explode) for _ in range(3)),
            return_exceptions=True,
        )
        assert calls["n"] == 1
        assert all(isinstance(o, ValueError) for o in outcomes)
        # A failed flight must not poison the key for later arrivals.
        async def ok():
            return "fine"

        value, coalesced = await coalescer.run("k", ok)
        assert (value, coalesced) == ("fine", False)

    asyncio.run(_run())


def test_distinct_keys_do_not_coalesce():
    async def _run():
        coalescer = Coalescer()

        async def make(n):
            await asyncio.sleep(0)
            return n

        outcomes = await asyncio.gather(
            *(coalescer.run(f"k{i}", lambda i=i: make(i)) for i in range(3))
        )
        assert [value for value, _ in outcomes] == [0, 1, 2]
        assert coalescer.stats == {"leaders": 3, "followers": 0}

    asyncio.run(_run())


# ---------------------------------------------------------------------------
# Sharded cache (unit)
# ---------------------------------------------------------------------------


def test_sharded_cache_routes_by_prefix_and_aggregates(tmp_path):
    cache = ShardedResultCache(tmp_path, shards=4)
    keys = [canonical_hash({"i": i}) for i in range(16)]
    for index, key in enumerate(keys):
        cache.put(key, {"index": index})
    assert len(cache) == 16
    for index, key in enumerate(keys):
        shard = cache.shard_for(key)
        assert shard is cache.shards[int(key[:8], 16) % 4]
        assert shard.path_for(key).exists()
        assert cache.get(key) == {"index": index}
    assert cache.get("ff" * 32) is None
    stats = cache.stats
    assert stats["stores"] == 16 and stats["hits"] == 16
    assert stats["misses"] == 1 and stats["evictions"] == 0
    assert 0.93 < cache.hit_rate() < 0.95
    # Keys spread over more than one shard (SHA-256 prefixes are uniform).
    assert sum(1 for shard in cache.shards if len(shard)) > 1


def test_sharded_cache_evicts_within_the_loaded_shard(tmp_path):
    cache = ShardedResultCache(tmp_path, shards=2, max_entries=4)
    # Per-shard budget is 2; aim 4 keys at one shard to force eviction
    # there while the other shard stays untouched.
    target = 0
    hot = [k for i in range(64) if
           (k := canonical_hash({"i": i})) and int(k[:8], 16) % 2 == target][:4]
    for index, key in enumerate(hot):
        cache.put(key, {"index": index})
    assert cache.stats["evictions"] == 2
    assert len(cache.shards[target]) == 2
    assert len(cache.shards[1 - target]) == 0


def test_sharded_cache_rejects_bad_shard_count(tmp_path):
    with pytest.raises(ValueError):
        ShardedResultCache(tmp_path, shards=0)


# ---------------------------------------------------------------------------
# Service.handle: coalescing + identity (no sockets)
# ---------------------------------------------------------------------------


def test_concurrent_identical_requests_compute_once(z4):
    service = DecompositionService(jobs=2)
    try:
        item = work_item(z4.outputs[1], name="o1")
        envelopes = [
            wire.svc_request("decompose", item, f"r{i}") for i in range(6)
        ]
        responses = drive(service, envelopes)
        assert all(r["ok"] for r in responses)
        # Byte-identical payloads: strip only the per-request envelope
        # fields (id + service stats); the *results* must already agree.
        bodies = {
            json.dumps(r["result"], sort_keys=True) for r in responses
        }
        assert len(bodies) == 1
        # ... computed exactly once:
        assert service.fleet.stats["dispatched"] == 1
        assert service.coalescer.stats == {"leaders": 1, "followers": 5}
        flags = sorted(r["stats"]["coalesced"] for r in responses)
        assert flags == [False] + [True] * 5
        # The worker-side computation counter confirms a single warm
        # worker ran the single computation.
        workers = {
            json.dumps(r["stats"]["worker"], sort_keys=True)
            for r in responses
        }
        assert len(workers) == 1
        assert responses[0]["stats"]["worker"]["computed"] == 1
    finally:
        service.close()


def test_backend_variants_coalesce_and_match_both_backends(z4):
    # The coalescing key is backend-free: a bdd and a bitset request for
    # the same function share one flight, and the shared payload matches
    # an in-process run of *either* backend (stripped of the
    # informational channels).
    service = DecompositionService(jobs=2)
    try:
        isf = z4.outputs[0]
        envelopes = [
            wire.svc_request(
                "decompose", work_item(isf, name="o0", backend=backend), backend
            )
            for backend in ("bdd", "bitset")
        ]
        responses = drive(service, envelopes)
        assert all(r["ok"] for r in responses)
        assert service.fleet.stats["dispatched"] == 1
        served = stripped(responses[0]["result"], INFORMATIONAL_RESULT_KEYS)
        for backend in ("bdd", "bitset"):
            expected = in_process_payload(isf, name="o0", backend=backend)
            assert served == stripped(expected, INFORMATIONAL_RESULT_KEYS)
    finally:
        service.close()


def test_decompose_many_orders_results_and_coalesces_duplicates(z4):
    service = DecompositionService(jobs=2)
    try:
        items = [
            work_item(z4.outputs[0], name="a"),
            work_item(z4.outputs[1], name="b"),
            work_item(z4.outputs[0], name="a"),  # intra-batch duplicate
        ]
        (response,) = drive(
            service,
            [wire.svc_request("decompose_many", {"items": items}, "batch")],
        )
        assert response["ok"]
        results = response["result"]["results"]
        assert len(results) == 3
        assert results[0] == results[2]  # the duplicate shared the flight
        assert results[0] != results[1]
        assert response["stats"]["items"] == 3
        assert response["stats"]["coalesced"] == 1
        assert service.fleet.stats["dispatched"] == 2
    finally:
        service.close()


def test_cache_persists_across_service_restarts(z4, tmp_path):
    item = work_item(z4.outputs[2], name="o2")
    envelope = wire.svc_request("decompose", item, "one")

    first = DecompositionService(jobs=1, cache_dir=tmp_path)
    try:
        (response,) = drive(first, [envelope])
        assert response["ok"]
        assert response["stats"]["served_by"] == "fleet"
        warm_payload = response["result"]
    finally:
        first.close()

    second = DecompositionService(jobs=1, cache_dir=tmp_path, prewarm=False)
    try:
        (cached,) = drive(second, [envelope])
        assert cached["ok"]
        assert cached["stats"]["served_by"] == "cache"
        assert cached["result"] == warm_payload  # byte-identical from disk
        assert second.fleet.stats["dispatched"] == 0
        assert second.stats["cache_hits"] == 1
    finally:
        second.close()


def test_malformed_and_failing_requests_become_error_envelopes():
    service = DecompositionService(jobs=1, prewarm=False)
    try:
        responses = drive(
            service,
            [
                {"format": "not-svc", "kind": "decompose"},
                wire.svc_request("decompose", {"name": "x"}, "no-f"),
                wire.svc_request("netsyn", {"benchmark": "no-such"}, "nb"),
                wire.svc_request("netsyn", {}, "nt"),
            ],
        )
        assert [r["ok"] for r in responses] == [False] * 4
        assert responses[0]["error"]["type"] == "bad-request"
        assert responses[1]["error"]["type"] == "bad-request"
        assert "'f'" in responses[1]["error"]["message"]
        assert responses[2]["error"]["type"] == "KeyError"
        assert responses[3]["error"]["type"] == "bad-request"
        # Malformed traffic is *visible* traffic: even the envelope that
        # failed to parse is counted in requests and errors.
        assert service.stats["requests"] == 4
        assert service.stats["errors"] == 4
        # Failures are replies, not crashes: the service still serves.
        (status,) = drive(service, [wire.svc_request("status", None, "s")])
        assert status["ok"]
        assert status["result"]["requests"]["errors"] == 4
        assert status["result"]["requests"]["requests"] == 5
    finally:
        service.close()


# ---------------------------------------------------------------------------
# Socket server + client: wire identity end to end
# ---------------------------------------------------------------------------


def test_socket_decompose_matches_in_process_across_backends(server, z4):
    with ServiceClient(server.host, server.port) as client:
        for backend in ("bdd", "bitset"):
            for index in (0, 3):
                isf = z4.outputs[index]
                payload, stats = client.decompose(
                    work_item(isf, name=f"o{index}", backend=backend)
                )
                assert stats["served_by"] in ("fleet", "cache")
                expected = in_process_payload(
                    isf, name=f"o{index}", backend=backend
                )
                assert stripped(
                    payload, INFORMATIONAL_RESULT_KEYS
                ) == stripped(expected, INFORMATIONAL_RESULT_KEYS)


def test_socket_netsyn_matches_in_process_and_warm_pool_stays_exact(
    server, z4
):
    with ServiceClient(server.host, server.port) as client:
        result, stats = client.netsyn(benchmark="z4")
        expected = wire.netsyn_result_to_payload(
            synthesize_instance(load_benchmark("z4"))
        )
        assert stripped(result, INFORMATIONAL_NETSYN_KEYS) == stripped(
            expected, INFORMATIONAL_NETSYN_KEYS
        )
        # A different config is a different cache key, so this computes
        # on the fleet — seeded with the first run's warm covers.
        config = {"literal_threshold": 11}
        warm, warm_stats = client.netsyn(benchmark="z4", config=config)
        assert warm_stats["served_by"] == "fleet"
        assert warm["pool_stats"]["warm_hits"] > 0
        expected_warm = wire.netsyn_result_to_payload(
            synthesize_instance(
                load_benchmark("z4"), config=NetsynConfig(literal_threshold=11)
            )
        )
        assert stripped(warm, INFORMATIONAL_NETSYN_KEYS) == stripped(
            expected_warm, INFORMATIONAL_NETSYN_KEYS
        )


def test_status_probe_reports_all_sections(server):
    with ServiceClient(server.host, server.port) as client:
        status = client.status()
    assert set(status) == {
        "server",
        "requests",
        "fleet",
        "coalesce",
        "cache",
        "pool",
        "admission",
        "trace",
    }
    assert status["trace"]["enabled"] is False
    assert status["trace"]["recorded"] == 0
    assert status["server"]["uptime_s"] >= 0
    assert status["fleet"]["size"] == 2
    assert status["fleet"]["slots_target"] == 2
    assert status["fleet"]["slots_live"] == 2
    assert status["fleet"]["draining"] == 0
    assert status["fleet"]["prewarmed"] == 2
    assert len(status["fleet"]["pids"]) == 2
    for counter in (
        "timeouts", "kills", "restarts", "retries",
        "resizes", "grown", "shrunk",
    ):
        assert status["fleet"][counter] >= 0
    assert status["cache"]["shards"] == 4
    assert status["cache"]["entries"] >= 1
    assert status["cache"]["quarantined"] == 0
    assert status["cache"]["replayed"] == 0
    assert status["pool"]["warm_covers"] >= 1
    assert status["admission"]["overloaded"] == 0
    assert status["admission"]["too_large"] == 0
    assert status["admission"]["rate_limited"] == 0
    assert status["admission"]["inflight"] == 0


def test_server_rejects_garbage_lines_and_keeps_serving(server):
    import socket as socket_module

    with socket_module.create_connection(
        (server.host, server.port), timeout=60
    ) as sock:
        handle = sock.makefile("rwb")
        handle.write(b"this is not json\n")
        handle.flush()
        reply = json.loads(handle.readline())
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad-json"
    with ServiceClient(server.host, server.port) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.request("decompose", {"name": "missing-f"})
        assert excinfo.value.type == "bad-request"
        assert client.status()["requests"]["requests"] >= 1


# ---------------------------------------------------------------------------
# Hardening: cancellation, self-healing, admission control, metrics
# ---------------------------------------------------------------------------


def test_coalescer_detached_flight_survives_leader_cancellation():
    # The docstring's promise: one cancelled client never cancels the
    # shared computation under the others — including the client that
    # *started* the flight.
    async def _run():
        coalescer = Coalescer()
        calls = {"n": 0}
        release = asyncio.Event()

        async def compute():
            calls["n"] += 1
            await release.wait()
            return {"value": calls["n"]}

        leader = asyncio.create_task(coalescer.run("k", compute))
        await asyncio.sleep(0)  # leader registers the flight
        follower = asyncio.create_task(coalescer.run("k", compute))
        await asyncio.sleep(0)  # follower joins it
        leader.cancel()
        await asyncio.gather(leader, return_exceptions=True)
        assert leader.cancelled()
        release.set()
        value, coalesced = await follower
        assert value == {"value": 1}
        assert coalesced is True
        assert calls["n"] == 1
        # The flight retired cleanly: a later arrival starts fresh.
        assert len(coalescer) == 0
        value2, coalesced2 = await coalescer.run("k", compute)
        assert (value2, coalesced2) == ({"value": 2}, False)

    asyncio.run(_run())


def test_coalescer_flight_completes_even_if_every_waiter_cancels():
    async def _run():
        coalescer = Coalescer()
        done = asyncio.Event()

        async def compute():
            await asyncio.sleep(0)
            done.set()
            return "computed"

        waiter = asyncio.create_task(coalescer.run("k", compute))
        await asyncio.sleep(0)
        waiter.cancel()
        await asyncio.gather(waiter, return_exceptions=True)
        await done.wait()  # flight ran to completion regardless
        await asyncio.sleep(0)  # let the retire callback run
        assert len(coalescer) == 0

    asyncio.run(_run())


def test_prewarm_counts_every_slot_exactly_once():
    # One process per slot means prewarm cannot flake below size (the
    # executor-queue race where one fast worker grabbed two idents).
    fleet = WorkerFleet(size=3, prewarm=False)
    try:
        for _ in range(5):
            pids = fleet.prewarm()
            assert len(pids) == 3
            assert len(set(pids)) == 3
            assert fleet.stats["prewarmed"] == 3
        assert sorted(fleet.pids()) == pids
    finally:
        fleet.shutdown()


def test_fleet_timeout_kills_and_respawns_the_slot():
    fleet = WorkerFleet(size=1)
    try:
        (victim,) = fleet.pids()
        with pytest.raises(FleetTimeout):
            fleet.run_sync(service_sleep, {"seconds": 60.0}, timeout_s=0.2)
        assert fleet.stats["timeouts"] == 1
        assert fleet.stats["kills"] == 1
        assert fleet.stats["restarts"] == 1
        (replacement,) = fleet.pids()
        assert replacement != victim
        # The slot is free and healthy: the next request succeeds.
        reply = fleet.run_sync(service_sleep, {"seconds": 0.0}, timeout_s=30)
        assert reply["ok"] and reply["worker"]["pid"] == replacement
    finally:
        fleet.shutdown()


def test_fleet_sigkill_worker_is_replaced_and_request_retries():
    import os
    import signal
    import time

    fleet = WorkerFleet(size=1)
    try:
        (victim,) = fleet.pids()
        os.kill(victim, signal.SIGKILL)
        time.sleep(0.2)
        reply = fleet.run_sync(_worker_ident, {}, timeout_s=60)
        assert reply["ok"]
        assert reply["pid"] != victim
        assert fleet.stats["restarts"] >= 1
        assert fleet.stats["retries"] >= 1
    finally:
        fleet.shutdown()


def test_sigkilled_worker_payload_is_byte_identical_to_healthy_run(z4):
    import os
    import signal
    import time

    with ServerThread(jobs=1) as thread:
        item = work_item(z4.outputs[1], name="o1")
        with ServiceClient(thread.host, thread.port) as client:
            healthy, _stats = client.decompose(item)
            for pid in thread.service.fleet.pids():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)
            # Cache-less server + retired flight: this recomputes on the
            # replacement worker (cold state) and must match byte for
            # byte once the informational channels are stripped.
            recovered, stats = client.decompose(item)
            assert stats["served_by"] == "fleet"
        assert stripped(recovered, INFORMATIONAL_RESULT_KEYS) == stripped(
            healthy, INFORMATIONAL_RESULT_KEYS
        )
        status = thread.service.status()
        assert status["fleet"]["restarts"] >= 1


def test_wire_timeout_is_typed_and_does_not_pin_the_slot(z4):
    # A deadline no real decomposition can meet: the request times out,
    # the worker is killed and respawned, and the *same key* computes
    # fine afterwards — the flight did not corrupt later arrivals.
    with ServerThread(jobs=1) as thread:
        item = work_item(z4.outputs[0], name="o0")
        with ServiceClient(thread.host, thread.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.decompose(item, timeout_s=0.001)
            assert excinfo.value.type == "timeout"
            payload, stats = client.decompose(item)
            assert stats["served_by"] == "fleet"
            assert payload["verified"] is True
            status = client.status()
        assert status["fleet"]["timeouts"] == 1
        assert status["fleet"]["kills"] == 1
        assert status["requests"]["timeouts"] == 1


def test_timeout_propagates_to_coalesced_followers(z4):
    service = DecompositionService(jobs=1)
    try:
        item = work_item(z4.outputs[0], name="o0")
        doomed = wire.svc_request(
            "decompose", {**item, "timeout_s": 0.001}, "lead"
        )
        follower = wire.svc_request("decompose", dict(item), "follow")
        responses = drive(service, [doomed, follower])
        assert [r["ok"] for r in responses] == [False, False]
        assert {r["error"]["type"] for r in responses} == {"timeout"}
        # The key is not poisoned: a later request recomputes cleanly.
        (ok,) = drive(service, [wire.svc_request("decompose", item, "later")])
        assert ok["ok"]
        assert ok["stats"]["served_by"] == "fleet"
    finally:
        service.close()


def test_invalid_timeout_param_is_a_bad_request(z4):
    service = DecompositionService(jobs=1, prewarm=False)
    try:
        item = work_item(z4.outputs[0], name="o0")
        responses = drive(
            service,
            [
                wire.svc_request("decompose", {**item, "timeout_s": -1}, "n"),
                wire.svc_request("decompose", {**item, "timeout_s": "x"}, "s"),
            ],
        )
        assert [r["error"]["type"] for r in responses] == ["bad-request"] * 2
        assert service.fleet.stats["dispatched"] == 0
    finally:
        service.close()


def test_max_inflight_rejects_overbudget_burst_with_typed_errors(z4):
    service = DecompositionService(jobs=1, max_inflight=1)
    try:
        envelopes = [
            wire.svc_request(
                "decompose", work_item(z4.outputs[0], op=op), f"r-{op}"
            )
            for op in ("AND", "OR", "XOR")
        ]
        responses = drive(service, envelopes)
        # gather starts the handlers in order: the first is admitted and
        # parks on the fleet; the rest are over budget, deterministically.
        assert [r["ok"] for r in responses] == [True, False, False]
        assert {r["error"]["type"] for r in responses[1:]} == {"overloaded"}
        assert service.admission["overloaded"] == 2
        assert service.inflight == 0  # gauge returns to idle
        # In-budget traffic completes: send the rejects again, one at a time.
        for envelope in envelopes[1:]:
            (response,) = drive(service, [envelope])
            assert response["ok"]
    finally:
        service.close()


def test_oversized_request_line_gets_typed_too_large_error(z4):
    import socket as socket_module

    service = DecompositionService(jobs=1, prewarm=False, max_line_bytes=4096)
    with ServerThread(service=service) as thread:
        with socket_module.create_connection(
            (thread.host, thread.port), timeout=60
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"x" * 8192 + b"\n")
            handle.flush()
            reply = json.loads(handle.readline())
            assert reply["ok"] is False
            assert reply["error"]["type"] == "too-large"
            assert handle.readline() == b""  # desynced connection closed
        # The server survives and serves new connections.
        with ServiceClient(thread.host, thread.port) as client:
            assert client.status()["admission"]["too_large"] == 1
    service.close()


def test_per_connection_pending_cap_rejects_pipelining_abuse(z4):
    import socket as socket_module

    service = DecompositionService(jobs=1, max_pending_per_conn=1)
    with ServerThread(service=service) as thread:
        item = work_item(z4.outputs[0], name="o0")
        lines = [
            json.dumps(wire.svc_request("decompose", item, f"p{i}"))
            for i in range(3)
        ]
        with socket_module.create_connection(
            (thread.host, thread.port), timeout=120
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(("\n".join(lines) + "\n").encode("utf-8"))
            handle.flush()
            replies = [json.loads(handle.readline()) for _ in range(3)]
        by_id = {reply["id"]: reply for reply in replies}
        # The first request is in flight when lines 2 and 3 are read, so
        # both trip the cap; replies keep their request ids.
        assert by_id["p0"]["ok"] is True
        assert by_id["p1"]["error"]["type"] == "overloaded"
        assert by_id["p2"]["error"]["type"] == "overloaded"
        assert service.admission["overloaded"] == 2
    service.close()


def test_client_timeout_marks_connection_broken():
    import socket as socket_module
    import threading
    import time

    # A deliberately slow server: reads the request, replies after the
    # client's socket deadline has long passed.
    listener = socket_module.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def slow_server():
        conn, _addr = listener.accept()
        with conn:
            handle = conn.makefile("rwb")
            handle.readline()
            time.sleep(1.0)
            try:
                handle.write(
                    json.dumps(
                        wire.svc_response("c1", {"late": True})
                    ).encode("utf-8")
                    + b"\n"
                )
                handle.flush()
            except (BrokenPipeError, ConnectionError, OSError):
                pass

    thread = threading.Thread(target=slow_server, daemon=True)
    thread.start()
    try:
        client = ServiceClient("127.0.0.1", port, timeout=0.2)
        with pytest.raises(ServiceError) as excinfo:
            client.request("status")
        assert excinfo.value.type == "timeout"
        # The late reply must never pair with a later request: the
        # connection is poisoned.  A *compute* kind never auto-retries —
        # it fails fast on the broken connection.
        with pytest.raises(ServiceError) as excinfo:
            client.request("decompose", {"f": {}})
        assert excinfo.value.type == "connection-closed"
        assert client.stats["reconnects"] == 0
    finally:
        thread.join(timeout=30)
        listener.close()


def test_client_idempotent_kinds_reconnect_transparently(server):
    client = ServiceClient(server.host, server.port)
    try:
        assert client.status()["fleet"]["size"] >= 1
        # Poison the connection the way a timeout would.
        client._break()
        with pytest.raises(ServiceError):
            client.request("decompose", {"f": {}})  # compute: fails fast
        # status is idempotent: the client reconnects and retries on its
        # own instead of failing fast forever.
        assert client.status()["fleet"]["size"] >= 1
        assert client.stats["reconnects"] == 1
        assert not client._broken
    finally:
        client.close()


def test_client_reconnect_escape_hatch(server):
    client = ServiceClient(server.host, server.port)
    try:
        client._break()
        client.reconnect()
        assert not client._broken
        # A compute kind works again after the explicit reconnect.
        with pytest.raises(ServiceError) as excinfo:
            client.request("decompose", {"name": "missing-f"})
        assert excinfo.value.type == "bad-request"
    finally:
        client.close()


def test_metrics_request_renders_prometheus_exposition(server):
    with ServiceClient(server.host, server.port) as client:
        result, _stats = client.request("metrics")
        text = client.metrics()
    assert result["content_type"].startswith("text/plain")
    # Rendering is a pure function of the status counters.
    assert render_prometheus(server.service.status()).startswith("# HELP repro_")
    lines = text.strip().splitlines()
    samples = [line for line in lines if not line.startswith("#")]
    assert samples, "metrics page has no samples"
    for line in samples:
        name, value = line.rsplit(" ", 1)
        assert name.startswith("repro_")
        float(value)  # every sample parses as a number
    names = {line.rsplit(" ", 1)[0] for line in samples}
    # The hardening counters are all on the page.
    for expected in (
        "repro_fleet_restarts",
        "repro_fleet_kills",
        "repro_fleet_timeouts",
        "repro_admission_overloaded",
        "repro_admission_too_large",
        "repro_admission_rate_limited",
        "repro_requests_requests",
        "repro_coalesce_rate",
        "repro_server_uptime_s",
        "repro_fleet_slots_target",
        "repro_fleet_slots_live",
        "repro_fleet_draining",
        "repro_fleet_resizes",
        "repro_fleet_grown",
        "repro_fleet_shrunk",
        "repro_cache_quarantined",
        "repro_cache_replayed",
    ):
        assert expected in names
    # TYPE comments precede their samples.
    assert any(line.startswith("# TYPE repro_fleet_size gauge") for line in lines)


def test_shutdown_request_stops_the_server():
    thread = ServerThread(jobs=1, prewarm=False)
    thread.start()
    try:
        with ServiceClient(thread.host, thread.port) as client:
            assert client.shutdown() == {"stopping": True}
        thread._thread.join(timeout=60)
        assert not thread._thread.is_alive()
    finally:
        thread.stop()


# ---------------------------------------------------------------------------
# Graceful resize + autoscale
# ---------------------------------------------------------------------------


def test_fleet_resize_grow_then_shrink_idle():
    with WorkerFleet(2, prewarm=False) as fleet:
        summary = fleet.resize(4)
        assert summary["size"] == 4
        assert summary["grown"] == 2
        assert fleet.slots_live == 4
        assert len(set(fleet.pids())) == 4
        assert fleet.run_sync(_worker_ident, {})["ok"]
        # Shrink with every slot idle: victims retire immediately (the
        # process joins run detached; the bookkeeping is synchronous).
        summary = fleet.resize(2)
        assert summary["size"] == 2
        assert summary["shrunk"] == 2
        assert fleet.slots_live == 2
        assert fleet.draining == 0
        assert fleet.stats["resizes"] == 2
        assert fleet.stats["grown"] == 2
        assert fleet.stats["shrunk"] == 2
        assert fleet.run_sync(_worker_ident, {})["ok"]


def test_fleet_shrink_drains_busy_slots_without_dropping():
    import threading
    import time

    with WorkerFleet(2) as fleet:
        results = []

        def sleeper():
            results.append(fleet.run_sync(service_sleep, {"seconds": 0.6}))

        threads = [threading.Thread(target=sleeper) for _ in range(2)]
        for thread in threads:
            thread.start()
        # Wait until both slots are checked out.
        deadline = time.time() + 5
        while fleet._free and time.time() < deadline:
            time.sleep(0.01)
        assert not fleet._free, "slots never became busy"

        summary = fleet.resize(1)
        # No idle slot to retire: one busy slot is draining instead.
        assert summary["size"] == 1
        assert summary["draining"] == 1
        assert fleet.slots_live == 2  # still finishing its request

        for thread in threads:
            thread.join(timeout=30)
        # Zero dropped: both in-flight sleeps resolved normally.
        assert [reply["ok"] for reply in results] == [True, True]
        assert {reply["payload"]["slept"] for reply in results} == {0.6}
        # The draining slot retired once its request released it.
        deadline = time.time() + 5
        while (fleet.draining or fleet.slots_live != 1) and time.time() < deadline:
            time.sleep(0.01)
        assert fleet.draining == 0
        assert fleet.slots_live == 1
        assert fleet.stats["shrunk"] == 1
        # Growing reclaims nothing (no drains left) and spawns fresh.
        assert fleet.resize(2)["size"] == 2
        assert fleet.run_sync(_worker_ident, {})["ok"]


def test_resize_grow_cancels_drains_first():
    import threading
    import time

    with WorkerFleet(2) as fleet:
        results = []

        def sleeper():
            results.append(fleet.run_sync(service_sleep, {"seconds": 0.8}))

        threads = [threading.Thread(target=sleeper) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5
        while fleet._free and time.time() < deadline:
            time.sleep(0.01)
        fleet.resize(1)
        assert fleet.draining == 1
        # Growing back before the drain completes just un-marks the
        # victim: the slot is warm and returns to the pool on release.
        summary = fleet.resize(2)
        assert summary["grown"] == 1
        assert fleet.draining == 0
        for thread in threads:
            thread.join(timeout=30)
        assert [reply["ok"] for reply in results] == [True, True]
        assert fleet.slots_live == 2
        assert fleet.stats["shrunk"] == 0  # nothing actually retired


def test_resize_service_kind_and_validation():
    service = DecompositionService(jobs=1, prewarm=False)
    try:
        bad, good = drive(
            service,
            [
                wire.svc_request("resize", {}, "x1"),
                wire.svc_request("resize", {"size": 2}, "x2"),
            ],
        )
        assert bad["ok"] is False
        assert bad["error"]["type"] == "bad-request"
        assert good["ok"] is True
        assert good["result"]["size"] == 2
        assert service.fleet.size == 2
    finally:
        service.close()


def test_autoscale_decision_is_queue_depth_driven():
    service = DecompositionService(
        jobs=1, prewarm=False, min_slots=1, max_slots=3
    )
    try:
        fleet = service.fleet
        assert service.autoscale_decision() is None  # at the floor, idle
        fleet.waiting = 2  # simulate dispatches queued for a slot
        assert service.autoscale_decision() == 3  # grow by depth, capped
        fleet.waiting = 0
        fleet.resize(3)
        # Sustained idleness shrinks one slot after three ticks.
        assert service.autoscale_decision() is None
        assert service.autoscale_decision() is None
        assert service.autoscale_decision() == 2
        # A manual resize outside the bounds is pulled back into range.
        fleet.resize(5)
        assert service.autoscale_decision() == 3
    finally:
        service.close()


def test_resize_under_load_drops_zero_requests(z4):
    import threading
    import time

    service = DecompositionService(jobs=2)
    expected = [
        in_process_payload(isf, name=f"o{index}")
        for index, isf in enumerate(z4.outputs)
    ]
    with ServerThread(service=service) as thread:
        errors: list = []
        payloads: list = []
        stop = threading.Event()

        def pound(worker: int) -> None:
            with ServiceClient(thread.host, thread.port) as client:
                index = worker
                while not stop.is_set():
                    isf_index = index % len(z4.outputs)
                    item = work_item(
                        z4.outputs[isf_index], name=f"o{isf_index}"
                    )
                    try:
                        payload, _stats = client.request("decompose", item)
                        payloads.append((isf_index, payload))
                    except ServiceError as exc:  # pragma: no cover
                        errors.append(exc)
                    index += 1

        workers = [
            threading.Thread(target=pound, args=(n,)) for n in range(4)
        ]
        for worker in workers:
            worker.start()
        try:
            with ServiceClient(thread.host, thread.port) as control:
                grow = control.resize(4)
                assert grow["size"] == 4
                time.sleep(0.4)
                shrink = control.resize(2)
                assert shrink["size"] == 2
                time.sleep(0.3)
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=60)
        assert errors == []
        assert payloads, "no requests completed under load"
        # Every response is byte-identical to the in-process result.
        for isf_index, payload in payloads:
            assert stripped(payload, INFORMATIONAL_RESULT_KEYS) == stripped(
                expected[isf_index], INFORMATIONAL_RESULT_KEYS
            )
        # The fleet converges back to the shrink target.
        deadline = time.time() + 10
        while (
            service.fleet.draining or service.fleet.slots_live != 2
        ) and time.time() < deadline:
            time.sleep(0.05)
        assert service.fleet.size == 2
        assert service.fleet.slots_live == 2
        assert service.fleet.stats["resizes"] == 2
    service.close()


# ---------------------------------------------------------------------------
# Per-client rate limiting
# ---------------------------------------------------------------------------


def test_rate_limiter_token_bucket_with_fake_clock():
    from repro.service import RateLimiter

    clock = {"t": 0.0}
    limiter = RateLimiter(rate=2.0, burst=2.0, clock=lambda: clock["t"])
    assert limiter.admit("a") == 0.0  # burst token 1
    assert limiter.admit("a") == 0.0  # burst token 2
    wait = limiter.admit("a")
    assert wait == pytest.approx(0.5)  # empty: one token is 1/rate away
    clock["t"] = 0.25
    assert limiter.admit("a") == pytest.approx(0.25)  # halfway refilled
    clock["t"] = 0.75
    assert limiter.admit("a") == 0.0  # refilled past one token
    assert limiter.admit("b") == 0.0  # buckets are per peer


def test_rate_limited_envelope_carries_retry_after(z4):
    service = DecompositionService(jobs=1, rate=0.001, burst=1)
    try:
        item = work_item(z4.outputs[0], name="o0")
        replies = drive(
            service,
            [
                wire.svc_request("decompose", item, "r1"),
                wire.svc_request("decompose", item, "r2"),
            ],
        )
        ok = [reply for reply in replies if reply["ok"]]
        limited = [reply for reply in replies if not reply["ok"]]
        assert len(ok) == 1 and len(limited) == 1
        error = limited[0]["error"]
        assert error["type"] == "rate-limited"
        assert error["retry_after_s"] > 0
        # Probe kinds are never throttled — monitoring keeps working.
        probe = drive(service, [wire.svc_request("status", {}, "s1")])[0]
        assert probe["ok"] is True
        assert service.admission["rate_limited"] == 1
    finally:
        service.close()


def test_rate_limited_client_recovers_with_backoff(z4):
    service = DecompositionService(jobs=1, rate=5.0, burst=1)
    expected = in_process_payload(z4.outputs[0], name="o0")
    with ServerThread(service=service) as thread:
        with ServiceClient(thread.host, thread.port) as client:
            payloads = [
                client.request(
                    "decompose", work_item(z4.outputs[0], name="o0")
                )[0]
                for _ in range(3)
            ]
            retries = client.stats["rate_limited_retries"]
    # Back-to-back requests overran 5 req/s: at least one was limited,
    # backed off per the server's retry_after_s hint, and recovered.
    assert retries >= 1
    assert service.admission["rate_limited"] >= 1
    for payload in payloads:
        assert stripped(payload, INFORMATIONAL_RESULT_KEYS) == stripped(
            expected, INFORMATIONAL_RESULT_KEYS
        )
    service.close()
