"""Tests for truth-table <-> BDD conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.convert import (
    MAX_DENSE_VARS,
    function_to_truthtable,
    truthtable_to_function,
)
from repro.boolfunc.truthtable import TruthTable
from tests.conftest import fresh_manager


@given(st.integers(min_value=1, max_value=6), st.data())
@settings(max_examples=60, deadline=None)
def test_roundtrip(n_vars, data):
    bits = data.draw(st.integers(min_value=0, max_value=(1 << (1 << n_vars)) - 1))
    mgr = fresh_manager(n_vars)
    table = TruthTable(n_vars, bits)
    function = truthtable_to_function(mgr, table)
    assert function_to_truthtable(function) == table
    # Pointwise agreement too.
    for m in range(1 << n_vars):
        assert function(m) == table(m)


def test_bit_order_convention():
    # Variable 0 is the MSB of the minterm index on both sides.
    mgr = fresh_manager(3)
    table = TruthTable.variable(3, 0)
    function = truthtable_to_function(mgr, table)
    assert function == mgr.var("x1")


def test_constants():
    mgr = fresh_manager(3)
    assert truthtable_to_function(mgr, TruthTable.zeros(3)).is_false
    assert truthtable_to_function(mgr, TruthTable.ones(3)).is_true
    assert function_to_truthtable(mgr.true) == TruthTable.ones(3)


def test_arity_mismatch_rejected():
    mgr = fresh_manager(3)
    with pytest.raises(ValueError):
        truthtable_to_function(mgr, TruthTable.zeros(4))


def test_dense_limit_guard():
    mgr = fresh_manager(2)
    assert MAX_DENSE_VARS >= 16
    # Small managers are fine.
    function_to_truthtable(mgr.true)


def test_structure_sharing_produces_small_bdds():
    # Parity has a linear-size BDD even though its truth table is dense.
    mgr = fresh_manager(8)
    bits = 0
    for m in range(256):
        if bin(m).count("1") % 2:
            bits |= 1 << m
    parity = truthtable_to_function(mgr, TruthTable(8, bits))
    assert parity.size() <= 2 * 8 + 2
