"""ResultCache robustness: temp-file hygiene, stats accounting, keys.

Regressions covered:

* ``put`` used ``<name>.tmp<pid>``, so a writer that died before its
  atomic ``os.replace`` left an orphan forever, and two threads in one
  process collided on the same temp name (one thread's rename could ship
  the other's half-written bytes).  Temp names are now unique per
  (pid, instance, write) and stale orphans are swept on cache open.
* A corrupt entry must count as exactly one miss plus one corrupt — no
  double-count drift across warm/cold/corrupt sequences.
* ``key_for`` must ignore the engine's operator search space for named
  operators but honor it under ``op="auto"``.
"""

import json
import os
import threading
import time

from repro.engine.cache import STALE_TEMP_AGE_S, ResultCache


def _entry_paths(cache: ResultCache):
    return sorted(cache.cache_dir.glob("*/*.json"))


# ---------------------------------------------------------------------------
# Temp-file hygiene
# ---------------------------------------------------------------------------


def test_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(5):
        cache.put(f"{index:02x}{'0' * 62}", {"v": index})
    assert len(cache) == 5
    assert list(tmp_path.glob("*/*.tmp*")) == []


def test_stale_temp_from_dead_writer_is_swept_on_open(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" + "0" * 62
    cache.put(key, {"v": 1})
    # Simulate a writer that died after writing its temp but before the
    # atomic replace: an orphan temp next to the entry.
    orphan = cache.path_for(key).with_name(
        cache.path_for(key).name + ".tmp99999-deadbeef-0"
    )
    orphan.write_text("{half-written", encoding="utf-8")
    fresh = cache.path_for(key).with_name(
        cache.path_for(key).name + ".tmp88888-cafecafe-0"
    )
    fresh.write_text("{in-flight", encoding="utf-8")
    # Backdate only the orphan past the staleness horizon.
    stale_time = time.time() - STALE_TEMP_AGE_S - 60
    os.utime(orphan, (stale_time, stale_time))

    reopened = ResultCache(tmp_path)
    assert reopened.swept_temps == 1
    assert not orphan.exists()
    # A young temp may belong to a live concurrent writer: untouched.
    assert fresh.exists()
    # The real entry is intact.
    assert reopened.get(key) == {"v": 1}


def test_concurrent_threaded_puts_never_collide(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" + "0" * 62
    errors = []

    def writer(worker: int):
        try:
            for round_index in range(25):
                cache.put(key, {"worker": worker, "round": round_index})
                payload = cache.get(key)
                assert isinstance(payload, dict) and payload.keys() == {
                    "worker",
                    "round",
                }
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    # The final file is one complete, valid entry; no temps remain.
    entry = json.loads(cache.path_for(key).read_text(encoding="utf-8"))
    assert entry["format"] and "payload" in entry
    assert list(tmp_path.glob("*/*.tmp*")) == []
    assert cache.stats["corrupt"] == 0


def test_two_instances_same_pid_use_distinct_temp_names(tmp_path):
    first = ResultCache(tmp_path)
    second = ResultCache(tmp_path)
    # The per-instance token is what separates same-pid writers whose
    # counters align; identical tokens would recreate the collision.
    assert first._tmp_token != second._tmp_token


# ---------------------------------------------------------------------------
# Stats accounting
# ---------------------------------------------------------------------------


def _stats(**overrides) -> dict:
    base = {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "corrupt": 0,
        "evictions": 0,
        "quarantined": 0,
        "replayed": 0,
    }
    base.update(overrides)
    return base


def test_corrupt_entry_counts_exactly_one_miss_and_one_corrupt(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ef" + "0" * 62

    assert cache.get(key) is None  # cold
    assert cache.stats == _stats(misses=1)

    cache.put(key, {"v": 1})
    assert cache.get(key) == {"v": 1}  # warm
    assert cache.stats == _stats(hits=1, misses=1, stores=1)

    cache.path_for(key).write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None  # corrupt: counted AND quarantined
    assert cache.stats == _stats(
        hits=1, misses=2, stores=1, corrupt=1, quarantined=1
    )
    assert not cache.path_for(key).exists()

    # Repeat the whole sequence: counters advance linearly, no drift.
    cache.put(key, {"v": 2})
    assert cache.get(key) == {"v": 2}
    cache.path_for(key).write_text(
        json.dumps({"format": "alien/1", "payload": {}}), encoding="utf-8"
    )
    assert cache.get(key) is None
    assert cache.stats == _stats(
        hits=2, misses=3, stores=2, corrupt=2, quarantined=2
    )
    assert cache.hit_rate() == 2 / 5


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def test_key_for_ignores_operators_for_named_ops():
    payload = {"fake": "dump"}
    narrow = ResultCache.key_for(
        payload, "AND", "expand-full", "spp", True, operators=("AND",)
    )
    wide = ResultCache.key_for(
        payload, "AND", "expand-full", "spp", True,
        operators=("AND", "OR", "XOR"),
    )
    assert narrow == wide


def test_key_for_honors_operators_for_auto():
    payload = {"fake": "dump"}
    narrow = ResultCache.key_for(
        payload, "auto", "expand-full", "spp", True, operators=("AND",)
    )
    wide = ResultCache.key_for(
        payload, "auto", "expand-full", "spp", True,
        operators=("AND", "OR", "XOR"),
    )
    assert narrow != wide
    # And the search space is order-sensitive (it changes tie-breaking).
    reordered = ResultCache.key_for(
        payload, "auto", "expand-full", "spp", True,
        operators=("OR", "AND", "XOR"),
    )
    assert reordered != wide


def test_key_for_distinguishes_everything_else():
    payload = {"fake": "dump"}
    base = ResultCache.key_for(payload, "AND", "expand-full", "spp", True)
    assert base != ResultCache.key_for(payload, "OR", "expand-full", "spp", True)
    assert base != ResultCache.key_for(payload, "AND", "random:0.1", "spp", True)
    assert base != ResultCache.key_for(payload, "AND", "expand-full", "espresso", True)
    assert base != ResultCache.key_for(payload, "AND", "expand-full", "spp", False)
    assert base != ResultCache.key_for({"other": 1}, "AND", "expand-full", "spp", True)


# ---------------------------------------------------------------------------
# LRU eviction budgets
# ---------------------------------------------------------------------------


def _key(index: int) -> str:
    return f"{index:02x}" + "0" * 62


def _backdate(cache: ResultCache, key: str, seconds_ago: float) -> None:
    """Pin an entry's mtime (and the in-memory index) into the past."""
    then = time.time() - seconds_ago
    path = cache.path_for(key)
    os.utime(path, (then, then))
    cache._index_entry(key, then, path.stat().st_size)


def test_max_entries_evicts_oldest_first(tmp_path):
    cache = ResultCache(tmp_path, max_entries=3)
    for index in range(3):
        cache.put(_key(index), {"v": index})
        _backdate(cache, _key(index), 100 - index)
    cache.put(_key(3), {"v": 3})
    assert len(cache) == 3
    assert cache.stats["evictions"] == 1
    assert cache.get(_key(0)) is None  # the oldest entry went
    assert cache.get(_key(3)) == {"v": 3}


def test_max_bytes_evicts_until_within_budget(tmp_path):
    probe = ResultCache(tmp_path / "probe")
    probe.put(_key(0), {"v": 0})
    entry_size = probe.path_for(_key(0)).stat().st_size

    cache = ResultCache(tmp_path / "real", max_bytes=3 * entry_size)
    for index in range(5):
        cache.put(_key(index), {"v": index})
        _backdate(cache, _key(index), 100 - index)
    assert len(cache) == 3
    assert cache.stats["evictions"] == 2
    # Survivors are the most recently written ones.
    assert cache.get(_key(0)) is None
    assert cache.get(_key(1)) is None
    assert cache.get(_key(4)) == {"v": 4}


def test_get_refreshes_recency(tmp_path):
    cache = ResultCache(tmp_path, max_entries=2)
    cache.put(_key(0), {"v": 0})
    _backdate(cache, _key(0), 200)
    cache.put(_key(1), {"v": 1})
    _backdate(cache, _key(1), 100)
    # Touch the older entry: it becomes the most recently used.
    assert cache.get(_key(0)) == {"v": 0}
    cache.put(_key(2), {"v": 2})
    assert cache.get(_key(0)) == {"v": 0}
    assert cache.get(_key(1)) is None  # LRU after the touch


def test_put_never_evicts_its_own_entry(tmp_path):
    cache = ResultCache(tmp_path, max_bytes=1)
    cache.put(_key(0), {"v": "x" * 100})
    assert cache.get(_key(0)) == {"v": "x" * 100}
    assert cache.stats["evictions"] == 0
    # The next write reclaims the over-budget predecessor.
    cache.put(_key(1), {"v": 1})
    assert cache.get(_key(0)) is None
    assert cache.stats["evictions"] >= 1


def test_budgets_govern_preexisting_entries_on_open(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(5):
        cache.put(_key(index), {"v": index})
        _backdate(cache, _key(index), 100 - index)
    bounded = ResultCache(tmp_path, max_entries=2)
    assert len(bounded) == 2
    assert bounded.stats["evictions"] == 3
    assert bounded.get(_key(4)) == {"v": 4}


def test_unbounded_cache_never_evicts(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(20):
        cache.put(_key(index), {"v": index})
    assert len(cache) == 20
    assert cache.stats["evictions"] == 0
