"""Tests for quotient maximality (Corollaries 1-4 of the paper)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.generic import approximation_for_operator
from repro.boolfunc.isf import ISF
from repro.core.flexibility import (
    is_full_quotient,
    is_valid_quotient,
    semantic_full_quotient,
)
from repro.core.operators import OPERATORS
from repro.core.quotient import full_quotient
from repro.utils.rng import make_rng
from tests.conftest import fresh_manager, isf_from_masks

tt_bits = st.integers(min_value=0, max_value=2**16 - 1)
op_names = st.sampled_from(sorted(OPERATORS))


@given(tt_bits, tt_bits, op_names)
@settings(max_examples=80, deadline=None)
def test_full_quotient_is_recognized(on_bits, dc_bits, op_name):
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, dc_bits)
    op = OPERATORS[op_name]
    rng = make_rng(op_name + str(on_bits))
    g = approximation_for_operator(f, op, rate=0.35, rng=rng)
    h = full_quotient(f, g, op)
    assert is_full_quotient(f, g, op, h)
    assert is_valid_quotient(f, g, op, h)


@given(tt_bits, op_names, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=80, deadline=None)
def test_shrinking_flexibility_stays_valid_but_not_full(on_bits, op_name, seed):
    """Corollaries 1-4: any ISF refining the full quotient is still a
    valid quotient; strictly refining it is no longer *the* full one."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0b0101_0011)
    op = OPERATORS[op_name]
    rng = make_rng(seed)
    g = approximation_for_operator(f, op, rate=0.3, rng=rng)
    h = full_quotient(f, g, op)
    if h.dc.is_false:
        return  # nothing to refine
    # Move a random nonempty subset of the dc-set into on or off.
    moved_on = mgr.false
    moved_off = mgr.false
    dc_minterms = list(h.dc.minterms())
    chosen = dc_minterms[:: 2] or dc_minterms
    for m in chosen:
        if rng.random() < 0.5:
            moved_on = moved_on | mgr.minterm(m)
        else:
            moved_off = moved_off | mgr.minterm(m)
    refined = ISF(h.on | moved_on, h.dc - (moved_on | moved_off))
    assert is_valid_quotient(f, g, op, refined)
    assert not is_full_quotient(f, g, op, refined)


@given(tt_bits, op_names)
@settings(max_examples=80, deadline=None)
def test_violating_a_forced_value_is_invalid(on_bits, op_name):
    """Flipping any forced (on/off) minterm of the quotient breaks it."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0)
    op = OPERATORS[op_name]
    rng = make_rng(op_name + "viol")
    g = approximation_for_operator(f, op, rate=0.3, rng=rng)
    h = full_quotient(f, g, op)
    on_minterms = list(h.on.minterms())
    if on_minterms:
        m = on_minterms[0]
        broken = ISF(h.on - mgr.minterm(m), h.dc)  # forced-1 becomes 0
        assert not is_valid_quotient(f, g, op, broken)
    off_minterms = list(h.off.minterms())
    if off_minterms:
        m = off_minterms[0]
        broken = ISF(h.on | mgr.minterm(m), h.dc)  # forced-0 becomes 1
        assert not is_valid_quotient(f, g, op, broken)


@given(tt_bits, op_names)
@settings(max_examples=60, deadline=None)
def test_smallest_on_set_among_valid_quotients(on_bits, op_name):
    """The full quotient's on-set is contained in every valid quotient's."""
    mgr = fresh_manager(4)
    f = isf_from_masks(mgr, on_bits, 0b0011)
    op = OPERATORS[op_name]
    rng = make_rng(op_name + "min")
    g = approximation_for_operator(f, op, rate=0.25, rng=rng)
    h = full_quotient(f, g, op)
    # Any valid candidate must contain h.on and exclude h.off; hence h has
    # the smallest on-set and the biggest dc-set.
    candidate = ISF(h.on | (h.dc & mgr.var("x1")), h.dc - mgr.var("x1"))
    if is_valid_quotient(f, g, op, candidate):
        assert h.on <= candidate.on
        assert candidate.dc <= h.dc


def test_invalid_divisor_is_reported_by_checks():
    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1") & mgr.var("x2"))
    bad_g = mgr.var("x1") & mgr.var("x2") & mgr.var("x3")  # not an over-approx
    candidate = ISF.completely_specified(mgr.true)
    assert not is_valid_quotient(f, bad_g, "AND", candidate)
    assert not is_full_quotient(f, bad_g, "AND", candidate)


def test_semantic_quotient_rejects_invalid_divisor():
    import pytest

    from repro.core.quotient import InvalidDivisorError

    mgr = fresh_manager(3)
    f = ISF.completely_specified(mgr.var("x1"))
    with pytest.raises(InvalidDivisorError):
        semantic_full_quotient(f, mgr.false, "AND")
