"""Cross-backend transfer and serializer round trips on benchmark loads.

Loads real multi-output benchmarks, moves every output across the
bdd↔bitset boundary in both directions (via ``transfer`` and via the
canonical serializer), and checks that canonical hashes and sampled
evaluations survive every hop — the property the netsyn divisor pool
and the backend-free cache keys rest on.
"""

from random import Random

import pytest

from repro.backend.bitset import BitsetBDD
from repro.bdd.manager import BDD
from repro.bdd.ops import transfer
from repro.bdd.serialize import dump, function_fingerprint, load
from repro.benchgen.registry import load_benchmark
from repro.engine.wire import isf_fingerprint, isf_from_payload, isf_to_payload

BENCHES = ("newtpla2", "z4", "dist")


def sampled_minterms(n_vars: int, rng: Random, count: int = 64) -> list[int]:
    space = 1 << n_vars
    if space <= count:
        return list(range(space))
    return [rng.randrange(space) for _ in range(count)]


@pytest.mark.parametrize("name", BENCHES)
def test_transfer_round_trip_preserves_hash_and_semantics(name):
    instance = load_benchmark(name)
    mgr = instance.mgr
    rng = Random(f"transfer:{name}")
    bitset_mgr = BitsetBDD(mgr.var_names)
    back_mgr = BDD(mgr.var_names)
    for index, isf in enumerate(instance.outputs):
        for label, function in (("on", isf.on), ("dc", isf.dc)):
            dense = transfer(function, bitset_mgr)
            assert function_fingerprint(dense) == function_fingerprint(
                function
            ), f"{name}/o{index}.{label}: bdd->bitset hash drift"
            back = transfer(dense, back_mgr)
            assert function_fingerprint(back) == function_fingerprint(
                function
            ), f"{name}/o{index}.{label}: bitset->bdd hash drift"
            for minterm in sampled_minterms(mgr.n_vars, rng):
                expected = bool(function(minterm))
                assert bool(dense(minterm)) == expected
                assert bool(back(minterm)) == expected


@pytest.mark.parametrize("name", BENCHES)
def test_serializer_round_trip_across_backends(name):
    instance = load_benchmark(name)
    mgr = instance.mgr
    rng = Random(f"serialize:{name}")
    for index, isf in enumerate(instance.outputs):
        payload = isf_to_payload(isf)
        # ISF fingerprints must be identical whichever backend re-dumps.
        dense_mgr = BitsetBDD(mgr.var_names)
        dense_isf = isf_from_payload(payload, dense_mgr)
        assert isf_fingerprint(dense_isf) == isf_fingerprint(isf), (
            f"{name}/o{index}: payload hash drift through bitset backend"
        )
        rebuilt = isf_from_payload(payload)  # fresh BDD manager
        assert isf_fingerprint(rebuilt) == isf_fingerprint(isf)
        for minterm in sampled_minterms(mgr.n_vars, rng):
            assert dense_isf(minterm) == isf(minterm)
            assert rebuilt(minterm) == isf(minterm)


@pytest.mark.parametrize("name", BENCHES)
def test_single_function_dump_is_backend_invariant(name):
    instance = load_benchmark(name)
    mgr = instance.mgr
    dense_mgr = BitsetBDD(mgr.var_names)
    for isf in instance.outputs:
        payload = dump(isf.on)
        dense = load(payload, dense_mgr)
        assert dump(dense) == payload
        assert load(dump(dense)).mgr is not mgr  # fresh manager rebuild
