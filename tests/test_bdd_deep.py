"""Depth-robustness regression tests (chain functions, many variables).

The pre-overhaul recursive core died with ``RecursionError`` around a
thousand chained variables (``_ite``), and earlier still when recursions
nested (``isop`` calling apply per frame).  Every algorithm here now
runs on explicit work stacks, so chain-structured functions far beyond
Python's recursion limit must work end to end: apply, satcount, minterm
enumeration, ISOP extraction, cross-manager transfer, canonical
serialization — and a full engine decomposition.
"""

from repro.bdd.manager import BDD
from repro.bdd.ops import isop, transfer
from repro.bdd.serialize import dump, function_fingerprint, load
from repro.engine.decomposer import Decomposer

#: Comfortably past the default interpreter recursion limit.
DEEP = 1200

_CHAIN_CACHE: dict[int, tuple] = {}


def _conjunction_chain(n: int) -> tuple[BDD, "object"]:
    # The chain build is O(n²) apply work; share it across the tests in
    # this module (they only read the function, never mutate state that
    # matters to another test).
    cached = _CHAIN_CACHE.get(n)
    if cached is None:
        mgr = BDD([f"x{i}" for i in range(n)])
        f = mgr.true
        for i in range(n):
            f = f & mgr.var(f"x{i}")
        cached = _CHAIN_CACHE[n] = (mgr, f)
    return cached


def test_deep_chain_apply_and_counting():
    mgr, f = _conjunction_chain(DEEP)
    assert f.size() == DEEP + 2
    assert f.satcount() == 1
    assert list(f.minterms()) == [(1 << DEEP) - 1]
    assert f((1 << DEEP) - 1) and not f((1 << DEEP) - 2)
    g = ~f
    assert g.satcount() == (1 << DEEP) - 1


def test_deep_parity_chain():
    n = DEEP
    mgr = BDD([f"x{i}" for i in range(n)])
    parity = mgr.false
    for i in range(n):
        parity = parity ^ mgr.var(f"x{i}")
    # size() reports canonical subfunctions (complement-free view): one
    # root, even and odd parity on every level below, both constants.
    # Physically the complemented-edge manager stores one node per level;
    # the ~n²/2 intermediate prefix parities are reclaimed by gc() once
    # their handles die.
    assert parity.size() == 2 * n + 1
    assert mgr.node_count() > n
    mgr.gc()
    assert mgr.node_count() <= n + 2
    assert parity.satcount() == 1 << (n - 1)
    assert parity((1 << n) - 1) == (n % 2 == 1)


def test_deep_chain_isop_single_cube():
    mgr, f = _conjunction_chain(DEEP)
    cubes, realized = isop(f, f)
    assert realized == f
    assert len(cubes) == 1
    assert len(cubes[0]) == DEEP
    assert all(value for value in cubes[0].values())


def test_deep_chain_transfer_and_serialize():
    mgr, f = _conjunction_chain(DEEP)
    payload = dump(f)
    assert len(payload["nodes"]) == DEEP
    other = BDD([f"x{i}" for i in range(DEEP)])
    copied = transfer(f, other)
    assert function_fingerprint(copied) == function_fingerprint(f)
    reloaded = load(payload)
    assert function_fingerprint(reloaded) == function_fingerprint(f)


def test_deep_chain_quantifiers_and_substitution():
    mgr, f = _conjunction_chain(DEEP)
    mid = f"x{DEEP // 2}"
    # Freeing one variable of the conjunction doubles the count.
    assert f.cofactor(mid, 1).satcount() == 2
    assert f.cofactor(mid, 0).is_false
    assert f.exists([mid]).satcount() == 2
    assert f.restrict({mid: 1, "x0": 1}).satcount() == 4
    # Substituting x0 for the mid variable drops the mid constraint
    # (x0 already appears positively), i.e. the positive cofactor.
    assert f.compose(mid, mgr.var("x0")) == f.cofactor(mid, 1)


def test_400_var_chain_decomposes():
    """The acceptance check: a 400-variable chain through the engine."""
    mgr, f = _conjunction_chain(400)
    engine = Decomposer(minimizer="espresso")
    result = engine.decompose(f, op="AND", approximator=f)
    assert result.verified
    assert result.literal_cost == 400
    assert result.bdd_stats is not None and result.bdd_stats["nodes"] > 400
