"""Smoke tests for the engine-backed CLI surface (decompose, --json)."""

import json

import pytest

from repro.cli import main


def test_decompose_text_output(capsys):
    assert main(["decompose", "z4", "--op", "AND"]) == 0
    out = capsys.readouterr().out
    assert "z4/o0" in out
    assert "AND" in out
    assert "yes" in out
    assert "literals total" in out


def test_decompose_auto_json(capsys):
    assert main(["decompose", "z4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 4  # z4 has four outputs
    for entry in payload:
        assert entry["verified"] is True
        assert entry["approximator"] == "expand-full"
        assert entry["minimizer"] == "spp"
        assert len(entry["candidates"]) == 10
        assert entry["timings"]["total"] >= 0.0
    assert payload[0]["name"] == "z4/o0"


def test_decompose_strategy_flags(capsys):
    assert (
        main(
            [
                "decompose",
                "z4",
                "--op",
                "AND",
                "--approx",
                "random:0.1",
                "--minimizer",
                "espresso",
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert all(entry["approximator"] == "random:0.1" for entry in payload)
    assert all(entry["minimizer"] == "espresso" for entry in payload)


def test_decompose_unknown_strategy_raises():
    from repro.engine import UnknownStrategyError

    with pytest.raises(UnknownStrategyError):
        main(["decompose", "z4", "--approx", "bogus"])


def test_bench_json(capsys):
    assert main(["bench", "z4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["name"] == "z4"
    assert payload[0]["n_inputs"] == 7
    assert set(payload[0]["op_areas"]) == {"AND", "NOT_IMPLIES"}
    assert payload[0]["time_s"] >= 0.0
