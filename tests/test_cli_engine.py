"""Smoke tests for the engine-backed CLI surface (decompose, --json)."""

import json

import pytest

from repro.cli import main


def test_decompose_text_output(capsys):
    assert main(["decompose", "z4", "--op", "AND"]) == 0
    out = capsys.readouterr().out
    assert "z4/o0" in out
    assert "AND" in out
    assert "yes" in out
    assert "literals total" in out


def test_decompose_auto_json(capsys):
    assert main(["decompose", "z4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 4  # z4 has four outputs
    for entry in payload:
        assert entry["verified"] is True
        assert entry["approximator"] == "expand-full"
        assert entry["minimizer"] == "spp"
        assert len(entry["candidates"]) == 10
        assert entry["timings"]["total"] >= 0.0
    assert payload[0]["name"] == "z4/o0"


def test_decompose_strategy_flags(capsys):
    assert (
        main(
            [
                "decompose",
                "z4",
                "--op",
                "AND",
                "--approx",
                "random:0.1",
                "--minimizer",
                "espresso",
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert all(entry["approximator"] == "random:0.1" for entry in payload)
    assert all(entry["minimizer"] == "espresso" for entry in payload)


def test_decompose_unknown_strategy_raises():
    from repro.engine import UnknownStrategyError

    with pytest.raises(UnknownStrategyError):
        main(["decompose", "z4", "--approx", "bogus"])


def test_bench_json(capsys):
    assert main(["bench", "z4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["name"] == "z4"
    assert payload[0]["n_inputs"] == 7
    assert set(payload[0]["op_areas"]) == {"AND", "NOT_IMPLIES"}
    assert payload[0]["time_s"] >= 0.0


def test_netsyn_text_output(capsys):
    assert main(["netsyn", "z4", "newtpla2"]) == 0
    out = capsys.readouterr().out
    assert "z4" in out and "newtpla2" in out
    assert "Shared" in out and "Isolated" in out and "total" in out


def test_netsyn_json_output(capsys):
    assert main(["netsyn", "z4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    entry = payload[0]
    assert entry["name"] == "z4"
    assert entry["outputs"] == 4
    assert entry["shared_area"] <= entry["isolated_area"]
    assert entry["pool_stats"]["registered"] > 0
    assert len(entry["per_output"]) == 4


def test_netsyn_jobs_and_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "netsyn-cache")
    assert main(["netsyn", "z4", "--jobs", "2", "--cache-dir", cache_dir,
                 "--json"]) == 0
    cold = json.loads(capsys.readouterr().out)[0]
    assert cold["cached"] is False
    assert main(["netsyn", "z4", "--cache-dir", cache_dir, "--json"]) == 0
    warm = json.loads(capsys.readouterr().out)[0]
    assert warm["cached"] is True
    assert warm["shared_area"] == cold["shared_area"]


def test_netsyn_threshold_flags(capsys):
    assert main(["netsyn", "z4", "--literal-threshold", "1000000",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)[0]
    assert all(r["source"] == "cover" for r in payload["per_output"])
