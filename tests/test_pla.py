"""Tests for the PLA reader/writer."""

import pytest

from repro.cover.pla import PLAError, parse_pla, pla_from_covers, write_pla
from repro.cover.cover import Cover

EXAMPLE = """\
# a small fd-type PLA
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
.p 3
10-1 1~
-01- d1
0000 01
.e
"""


def test_parse_basic_structure():
    pla = parse_pla(EXAMPLE)
    assert pla.n_inputs == 4
    assert pla.n_outputs == 2
    assert pla.input_labels == ["a", "b", "c", "d"]
    assert pla.output_labels == ["f", "g"]
    assert len(pla.rows) == 3


def test_output_covers_fd_semantics():
    pla = parse_pla(EXAMPLE)
    on0, dc0 = pla.output_covers(0)
    assert [c.to_string() for c in on0] == ["10-1"]
    assert [c.to_string() for c in dc0] == ["-01-"]
    on1, dc1 = pla.output_covers(1)
    assert [c.to_string() for c in on1] == ["-01-", "0000"]
    assert len(dc1) == 0


def test_output_covers_bounds():
    pla = parse_pla(EXAMPLE)
    with pytest.raises(IndexError):
        pla.output_covers(2)


def test_output_isf_resolves_overlap():
    text = """\
.i 2
.o 1
11 1
1- d
.e
"""
    pla = parse_pla(text)
    mgr = pla.make_manager()
    f = pla.output_isf(mgr, 0)
    assert f(0b11) == 1  # on wins over dc
    assert f(0b10) is None
    assert f(0b00) == 0


def test_roundtrip():
    pla = parse_pla(EXAMPLE)
    text = write_pla(pla)
    again = parse_pla(text)
    assert again.n_inputs == pla.n_inputs
    assert again.n_outputs == pla.n_outputs
    assert [(c.to_string(), o) for c, o in again.rows] == [
        (c.to_string(), o) for c, o in pla.rows
    ]


def test_default_labels():
    pla = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
    assert pla.input_labels == ["x1", "x2"]
    assert pla.output_labels == ["f0"]


def test_whitespace_between_parts_is_tolerated():
    pla = parse_pla(".i 3\n.o 1\n1 0 -  1\n.e\n")
    assert pla.rows[0][0].to_string() == "10-"


def test_errors():
    with pytest.raises(PLAError):
        parse_pla("10-1 1\n")  # cube before .i
    with pytest.raises(PLAError):
        parse_pla(".i 4\n.o 1\n1-1 1\n")  # short input part
    with pytest.raises(PLAError):
        parse_pla(".i 2\n.o 2\n11 1\n")  # short output part
    with pytest.raises(PLAError):
        parse_pla(".o 2\n.e\n")  # missing .i
    with pytest.raises(PLAError):
        parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n")  # label count


def test_unknown_directives_ignored():
    pla = parse_pla(".i 2\n.o 1\n.phase 10\n11 1\n.e\n")
    assert len(pla.rows) == 1


def test_pla_from_covers_roundtrip():
    on_a = Cover.from_strings(["11--", "0--1"])
    dc_a = Cover.from_strings(["--00"])
    on_b = Cover.from_strings(["1---"])
    pla = pla_from_covers([(on_a, dc_a), (on_b, Cover(4, []))])
    assert pla.n_outputs == 2
    got_on_a, got_dc_a = pla.output_covers(0)
    assert {c.to_string() for c in got_on_a} == {"11--", "0--1"}
    assert {c.to_string() for c in got_dc_a} == {"--00"}
    got_on_b, got_dc_b = pla.output_covers(1)
    assert {c.to_string() for c in got_on_b} == {"1---"}
    assert len(got_dc_b) == 0


def test_pla_from_covers_empty_rejected():
    with pytest.raises(ValueError):
        pla_from_covers([])
