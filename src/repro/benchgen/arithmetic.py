"""Arithmetic benchmark functions.

Each generator returns a list of per-output integer functions
``minterm_index -> bit`` plus input labels; the registry tabulates them
into truth tables and converts to BDDs.  Variable 0 is the most
significant bit of the minterm index, so input words are read from the
index with plain shifts.

The functions mirror what the MCNC originals compute (adders, clipping,
distance, logarithms, ``5x+1``); where the original's exact specification
is not public, a function of the same arithmetic family and identical
arity is used (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import math
from collections.abc import Callable

BitFunction = Callable[[int], int]


def _slice_of(minterm: int, n_vars: int, start: int, width: int) -> int:
    """Extract ``width`` input bits starting at variable ``start``.

    Variable ``start`` becomes the most significant bit of the result.
    """
    shift = n_vars - start - width
    return (minterm >> shift) & ((1 << width) - 1)


def _output_bit(value: int, n_outputs: int, output: int) -> int:
    """Bit ``output`` of ``value``; output 0 is the most significant."""
    return (value >> (n_outputs - 1 - output)) & 1


def _word_function(
    n_vars: int,
    n_outputs: int,
    word: Callable[[int], int],
) -> list[BitFunction]:
    """Lift an integer word function to per-output bit functions."""

    def make(output: int) -> BitFunction:
        return lambda minterm: _output_bit(word(minterm), n_outputs, output)

    return [make(output) for output in range(n_outputs)]


# -- adders ------------------------------------------------------------------

def adder(bits: int, carry_in: bool = False) -> tuple[list[BitFunction], int]:
    """A ``bits+bits`` (+carry) adder; returns (outputs, n_inputs)."""
    n_vars = 2 * bits + (1 if carry_in else 0)
    n_outputs = bits + 1

    def word(minterm: int) -> int:
        a = _slice_of(minterm, n_vars, 0, bits)
        b = _slice_of(minterm, n_vars, bits, bits)
        carry = _slice_of(minterm, n_vars, 2 * bits, 1) if carry_in else 0
        return a + b + carry

    return _word_function(n_vars, n_outputs, word), n_vars


def interleaved_adder(bits: int) -> tuple[list[BitFunction], int]:
    """An adder with interleaved operand bits (a0 b0 a1 b1 ...).

    Functionally an adder like :func:`adder`, but the different input
    ordering gives the synthesis flow a structurally different instance
    (used for ``radd`` vs ``adr4``).
    """
    n_vars = 2 * bits
    n_outputs = bits + 1

    def word(minterm: int) -> int:
        a = 0
        b = 0
        for position in range(bits):
            a = (a << 1) | ((minterm >> (n_vars - 1 - 2 * position)) & 1)
            b = (b << 1) | ((minterm >> (n_vars - 2 - 2 * position)) & 1)
        return a + b

    return _word_function(n_vars, n_outputs, word), n_vars


# -- Table IV instances ------------------------------------------------------

def dist() -> tuple[list[BitFunction], int]:
    """``dist`` (8/5): Euclidean norm ``round(sqrt(a^2 + b^2))``."""
    n_vars, n_outputs = 8, 5

    def word(minterm: int) -> int:
        a = _slice_of(minterm, n_vars, 0, 4)
        b = _slice_of(minterm, n_vars, 4, 4)
        return round(math.sqrt(a * a + b * b))

    return _word_function(n_vars, n_outputs, word), n_vars


def clip() -> tuple[list[BitFunction], int]:
    """``clip`` (9/5): saturated scaled product ``min(31, (a*b) >> 3)``.

    A bare clamp of a 9-bit word would be mostly wiring (trivial area);
    the MCNC ``clip`` is a signal-processing block, so the substitute
    computes a 5x4-bit product, scales it and saturates into 5 bits.
    """
    n_vars, n_outputs = 9, 5

    def word(minterm: int) -> int:
        a = _slice_of(minterm, n_vars, 0, 5)
        b = _slice_of(minterm, n_vars, 5, 4)
        return min(31, (a * b) >> 3)

    return _word_function(n_vars, n_outputs, word), n_vars


def max512() -> tuple[list[BitFunction], int]:
    """``max512`` (9/6): the power law ``floor(x^(2/3))`` on [0, 511]."""
    n_vars, n_outputs = 9, 6

    def word(minterm: int) -> int:
        x = _slice_of(minterm, n_vars, 0, 9)
        return int(round(x ** (2.0 / 3.0) - 0.5)) if x else 0

    return _word_function(n_vars, n_outputs, word), n_vars


def max1024() -> tuple[list[BitFunction], int]:
    """``max1024`` (10/6): the power law ``floor(x^0.6)`` on [0, 1023]."""
    n_vars, n_outputs = 10, 6

    def word(minterm: int) -> int:
        x = _slice_of(minterm, n_vars, 0, 10)
        return int(x ** 0.6) if x else 0

    return _word_function(n_vars, n_outputs, word), n_vars


def log8mod() -> tuple[list[BitFunction], int]:
    """``log8mod`` (8/5): ``round(8 * log2(1 + x)) mod 32``."""
    n_vars, n_outputs = 8, 5

    def word(minterm: int) -> int:
        x = _slice_of(minterm, n_vars, 0, 8)
        return int(round(8.0 * math.log2(1.0 + x))) % 32

    return _word_function(n_vars, n_outputs, word), n_vars


def z5xp1() -> tuple[list[BitFunction], int]:
    """``Z5xp1`` (7/10): the affine polynomial ``5x + 1``."""
    n_vars, n_outputs = 7, 10

    def word(minterm: int) -> int:
        x = _slice_of(minterm, n_vars, 0, 7)
        return 5 * x + 1

    return _word_function(n_vars, n_outputs, word), n_vars


def z4() -> tuple[list[BitFunction], int]:
    """``z4`` (7/4): 3-bit + 3-bit + carry-in adder."""
    outputs, n_vars = adder(3, carry_in=True)
    return outputs, n_vars


def adr4() -> tuple[list[BitFunction], int]:
    """``adr4`` (8/5): 4-bit + 4-bit adder."""
    return adder(4)


def radd() -> tuple[list[BitFunction], int]:
    """``radd`` (8/5): 4-bit adder with interleaved operands."""
    return interleaved_adder(4)


def add6() -> tuple[list[BitFunction], int]:
    """``add6`` (12/7): 6-bit + 6-bit adder."""
    return adder(6)


def ex7() -> tuple[list[BitFunction], int]:
    """``ex7`` (16/5): count of leading zeros of a 16-bit word.

    A population count would be the most natural 16→5 arithmetic
    function, but its low-order output bit is the 16-variable parity,
    whose two-level covers are exponential (32768 products) — far beyond
    what any two-level flow, the paper's included, would run.  The
    leading-zero counter is an equally standard datapath block with
    compact prefix-structured covers.
    """
    n_vars, n_outputs = 16, 5

    def word(minterm: int) -> int:
        if minterm == 0:
            return 16
        return 16 - minterm.bit_length()

    return _word_function(n_vars, n_outputs, word), n_vars


#: All arithmetic generators by benchmark name.
ARITHMETIC_GENERATORS: dict[str, Callable[[], tuple[list[BitFunction], int]]] = {
    "dist": dist,
    "max512": max512,
    "ex7": ex7,
    "z4": z4,
    "clip": clip,
    "max1024": max1024,
    "adr4": adr4,
    "radd": radd,
    "add6": add6,
    "log8mod": log8mod,
    "Z5xp1": z5xp1,
}
