"""Seeded synthetic PLA generators for control-logic benchmarks.

The control-logic MCNC instances (bcb, br1, spla, chkn, ...) are not
redistributable; these generators produce multi-output PLA covers with
the original arity and comparable product counts / literal densities.
Everything is driven by a deterministic per-benchmark seed so the whole
suite is reproducible.

Row model: each product term binds a random subset of inputs (with a
density typical of control logic, where cubes are fairly specific) and
asserts a small random subset of outputs.  Every output is guaranteed at
least ``min_rows_per_output`` products.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cover.cover import Cover
from repro.cover.cube import Cube
from repro.cover.pla import PLA
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape parameters of one synthetic PLA benchmark."""

    name: str
    n_inputs: int
    n_outputs: int
    n_rows: int
    #: Fraction of inputs bound by each product (mean).
    literal_density: float = 0.6
    #: Mean number of outputs asserted per product.
    outputs_per_row: float = 2.0
    min_rows_per_output: int = 2


def generate_pla(spec: SyntheticSpec) -> PLA:
    """Deterministically generate the PLA of a synthetic benchmark.

    Cubes are emitted in *clusters*: a base product plus a handful of
    perturbed variants sharing most literals.  Control-logic PLAs have
    exactly this kind of heavily overlapping term structure, and it is
    what makes pseudoproduct expansion cheap on them (an expanded term
    lands mostly inside sibling terms).
    """
    rng = make_rng(f"synthetic-pla:{spec.name}")
    rows: list[tuple[Cube, str]] = []
    per_output_rows = [0] * spec.n_outputs

    def random_cube() -> Cube:
        spread = max(1, round(spec.n_inputs * 0.15))
        count = round(spec.literal_density * spec.n_inputs) + rng.randint(
            -spread, spread
        )
        count = max(1, min(spec.n_inputs, count))
        chosen = rng.sample(range(spec.n_inputs), count)
        pos = neg = 0
        for var in chosen:
            if rng.random() < 0.5:
                pos |= 1 << var
            else:
                neg |= 1 << var
        return Cube(spec.n_inputs, pos, neg)

    def perturbed(base: Cube) -> Cube:
        """A sibling of ``base``: flip, drop, or add one or two literals."""
        pos, neg = base.pos, base.neg
        for _ in range(rng.randint(1, 2)):
            move = rng.random()
            bound = [v for v in range(spec.n_inputs) if (pos | neg) & (1 << v)]
            free = [v for v in range(spec.n_inputs) if not (pos | neg) & (1 << v)]
            if move < 0.5 and bound:
                # Flip the polarity of one literal.
                bit = 1 << rng.choice(bound)
                if pos & bit:
                    pos, neg = pos & ~bit, neg | bit
                else:
                    pos, neg = pos | bit, neg & ~bit
            elif move < 0.8 and bound:
                # Drop one literal (the sibling strictly contains the base
                # on that variable).
                bit = 1 << rng.choice(bound)
                pos, neg = pos & ~bit, neg & ~bit
            elif free:
                # Bind one more variable.
                bit = 1 << rng.choice(free)
                if rng.random() < 0.5:
                    pos |= bit
                else:
                    neg |= bit
        return Cube(spec.n_inputs, pos, neg)

    def random_outputs() -> list[int]:
        count = max(
            1,
            min(spec.n_outputs, round(rng.expovariate(1.0 / spec.outputs_per_row))),
        )
        return rng.sample(range(spec.n_outputs), count)

    emitted = 0
    while emitted < spec.n_rows:
        base = random_cube()
        cluster_size = min(spec.n_rows - emitted, rng.randint(3, 7))
        cluster_outputs = random_outputs()
        for position in range(cluster_size):
            cube = base if position == 0 else perturbed(base)
            # Sibling terms mostly share their output set.
            outputs = (
                cluster_outputs
                if rng.random() < 0.7
                else random_outputs()
            )
            pattern = ["~"] * spec.n_outputs
            for output in outputs:
                pattern[output] = "1"
                per_output_rows[output] += 1
            rows.append((cube, "".join(pattern)))
            emitted += 1

    # Guarantee minimum support for every output.
    for output in range(spec.n_outputs):
        while per_output_rows[output] < spec.min_rows_per_output:
            cube = random_cube()
            pattern = ["~"] * spec.n_outputs
            pattern[output] = "1"
            per_output_rows[output] += 1
            rows.append((cube, "".join(pattern)))

    return PLA(
        spec.n_inputs,
        spec.n_outputs,
        [f"x{i + 1}" for i in range(spec.n_inputs)],
        [f"f{j}" for j in range(spec.n_outputs)],
        rows,
        "fd",
    )


def output_cover(pla: PLA, output: int) -> Cover:
    """Convenience: the on-set cover of one output."""
    on_cover, _dc = pla.output_covers(output)
    return on_cover


#: Shape parameters for each control-logic benchmark of the paper's
#: tables.  Row counts follow the originals where known, scaled where the
#: original would be prohibitively slow in pure Python (noted inline).
SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    spec.name: spec
    for spec in (
        SyntheticSpec("bcb", 26, 39, 80, 0.45, 2.5),       # original ~155 rows
        SyntheticSpec("br1", 12, 8, 34, 0.70, 2.0),
        SyntheticSpec("br2", 12, 8, 35, 0.70, 2.0),
        SyntheticSpec("mp2d", 14, 14, 60, 0.55, 1.6),      # original ~123 rows
        SyntheticSpec("alcom", 15, 38, 47, 0.50, 1.8),
        SyntheticSpec("spla", 16, 46, 120, 0.55, 2.2),     # original ~581 rows
        SyntheticSpec("al2", 16, 47, 66, 0.50, 1.8),
        SyntheticSpec("ex5", 8, 63, 100, 0.75, 2.4),       # original ~256 rows
        SyntheticSpec("newtpla2", 10, 4, 12, 0.75, 1.3),
        SyntheticSpec("ts10", 22, 16, 64, 0.50, 1.5),      # original 128 rows
        SyntheticSpec("chkn", 29, 7, 70, 0.40, 1.4),       # original ~140 rows
        SyntheticSpec("opa", 17, 69, 79, 0.50, 2.2),
        SyntheticSpec("b7", 8, 31, 60, 0.70, 2.2),
        SyntheticSpec("risc", 8, 31, 50, 0.70, 2.2),
    )
}
