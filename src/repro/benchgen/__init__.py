"""Benchmark suite generators.

The paper evaluates on PLA benchmarks from the MCNC/espresso collection
(ref. [12]), which cannot be redistributed here.  This package provides
substitutes with the exact input/output arity of the originals:

* :mod:`~repro.benchgen.arithmetic` — real arithmetic functions for the
  instances that *are* arithmetic circuits (adders, distance, clipping,
  logarithm, polynomial, power laws, population count);
* :mod:`~repro.benchgen.synthetic` — seeded random multi-output PLA
  covers for the control-logic instances;
* :mod:`~repro.benchgen.registry` — the name → generator map for every
  row of the paper's Tables III and IV;
* :mod:`~repro.benchgen.paper_data` — the numbers printed in the paper,
  for side-by-side reporting.
"""

from repro.benchgen.registry import (
    BENCHMARKS,
    BenchmarkInstance,
    BenchmarkSpec,
    load_benchmark,
    table_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkInstance",
    "BenchmarkSpec",
    "load_benchmark",
    "table_benchmarks",
]
