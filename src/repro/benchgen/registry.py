"""Benchmark registry: name → loadable instance for every table row."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.manager import BDD
from repro.benchgen.arithmetic import ARITHMETIC_GENERATORS
from repro.benchgen.paper_data import PAPER_ROWS, PaperRow
from repro.benchgen.synthetic import SYNTHETIC_SPECS, generate_pla
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable
from repro.boolfunc.convert import truthtable_to_function


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one benchmark."""

    name: str
    n_inputs: int
    n_outputs: int
    kind: str  # "arithmetic" | "synthetic"
    table: str  # "III" | "IV"


@dataclass
class BenchmarkInstance:
    """A loaded benchmark: one BDD manager and one ISF per output."""

    spec: BenchmarkSpec
    mgr: BDD
    outputs: list[ISF] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name

    def paper_row(self) -> PaperRow | None:
        """The paper's printed row for this benchmark, if any."""
        return PAPER_ROWS.get(self.spec.name)


def _build_specs() -> dict[str, BenchmarkSpec]:
    specs: dict[str, BenchmarkSpec] = {}
    for name, row in PAPER_ROWS.items():
        kind = "arithmetic" if name in ARITHMETIC_GENERATORS else "synthetic"
        specs[name] = BenchmarkSpec(
            name, row.n_inputs, row.n_outputs, kind, row.table
        )
    return specs


#: All benchmarks of the paper's Tables III and IV.
BENCHMARKS: dict[str, BenchmarkSpec] = _build_specs()


def table_benchmarks(table: str) -> list[BenchmarkSpec]:
    """Specs of the benchmarks in one paper table ("III" or "IV")."""
    return [spec for spec in BENCHMARKS.values() if spec.table == table]


def _load_arithmetic(spec: BenchmarkSpec) -> BenchmarkInstance:
    bit_functions, n_vars = ARITHMETIC_GENERATORS[spec.name]()
    if n_vars != spec.n_inputs:
        raise AssertionError(
            f"{spec.name}: generator arity {n_vars} != spec {spec.n_inputs}"
        )
    if len(bit_functions) != spec.n_outputs:
        raise AssertionError(
            f"{spec.name}: generator outputs {len(bit_functions)} != spec"
            f" {spec.n_outputs}"
        )
    mgr = BDD([f"x{i + 1}" for i in range(n_vars)])
    outputs = []
    for bit_function in bit_functions:
        bits = 0
        for minterm in range(1 << n_vars):
            if bit_function(minterm):
                bits |= 1 << minterm
        table = TruthTable(n_vars, bits)
        outputs.append(ISF.completely_specified(truthtable_to_function(mgr, table)))
    return BenchmarkInstance(spec, mgr, outputs)


def _load_synthetic(spec: BenchmarkSpec) -> BenchmarkInstance:
    pla = generate_pla(SYNTHETIC_SPECS[spec.name])
    mgr = pla.make_manager()
    outputs = [
        pla.output_isf(mgr, output) for output in range(pla.n_outputs)
    ]
    return BenchmarkInstance(spec, mgr, outputs)


def load_benchmark(name: str) -> BenchmarkInstance:
    """Load a benchmark by its paper-table name."""
    spec = BENCHMARKS.get(name)
    if spec is None:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}")
    if spec.kind == "arithmetic":
        return _load_arithmetic(spec)
    return _load_synthetic(spec)
