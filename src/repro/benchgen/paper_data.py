"""The numbers printed in the paper's Tables III and IV.

Used by the harness to report paper-vs-measured side by side and by
EXPERIMENTS.md.  Column meanings (per the paper, Section IV-B):

* ``time_s`` — seconds to construct g and h (authors' C/CUDD code);
* ``area_f`` / ``area_g`` — SIS-mapped area (mcnc.genlib) of the 2-SPP
  forms of f and g;
* ``pct_errors`` — error rate of the approximation g;
* ``pct_reduction`` — (area_f - area_g) / area_f, in percent;
* ``area_and`` / ``gain_and`` — area of (g AND h) and its gain over f;
* ``area_nimp`` / ``gain_nimp`` — same for the 6⇒ operator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperRow:
    """One row of paper Table III or IV."""

    name: str
    n_inputs: int
    n_outputs: int
    time_s: float
    area_f: int
    area_g: int
    pct_errors: float
    pct_reduction: float
    area_and: int
    gain_and: float
    area_nimp: int
    gain_nimp: float
    table: str


TABLE_III_ROWS: tuple[PaperRow, ...] = (
    PaperRow("bcb", 26, 39, 1.20, 4662, 4154, 0.10, 10.90, 4855, -4.14, 4800, -2.96, "III"),
    PaperRow("br1", 12, 8, 0.04, 384, 356, 0.35, 7.29, 370, 3.65, 370, 3.65, "III"),
    PaperRow("br2", 12, 8, 0.04, 275, 250, 0.38, 9.09, 263, 4.36, 263, 4.36, "III"),
    PaperRow("mp2d", 14, 14, 0.09, 204, 65, 3.73, 68.14, 210, -2.94, 210, -2.94, "III"),
    PaperRow("alcom", 15, 38, 0.19, 210, 140, 4.93, 33.33, 210, 0.00, 210, 0.00, "III"),
    PaperRow("spla", 16, 46, 0.39, 1792, 1394, 5.01, 22.21, 1919, -7.09, 1931, -7.76, "III"),
    PaperRow("al2", 16, 47, 0.59, 328, 226, 5.03, 31.10, 340, -3.66, 342, -4.27, "III"),
    PaperRow("ex5", 8, 63, 0.12, 935, 206, 5.52, 77.97, 925, 1.07, 907, 2.99, "III"),
    PaperRow("newtpla2", 10, 4, 0.01, 56, 19, 5.62, 66.07, 55, 1.79, 55, 1.79, "III"),
    PaperRow("ts10", 22, 16, 0.67, 901, 609, 5.76, 32.41, 1153, -27.97, 1173, -30.19, "III"),
    PaperRow("chkn", 29, 7, 0.25, 744, 370, 5.78, 50.27, 995, -33.74, 971, -30.51, "III"),
    PaperRow("opa", 17, 69, 0.49, 1566, 1482, 8.09, 5.36, 1578, -0.77, 1578, -0.77, "III"),
    PaperRow("b7", 8, 31, 0.10, 198, 146, 8.52, 26.26, 197, 0.51, 194, 2.02, "III"),
    PaperRow("risc", 8, 31, 0.08, 204, 150, 8.62, 26.47, 203, 0.49, 200, 1.96, "III"),
)

TABLE_IV_ROWS: tuple[PaperRow, ...] = (
    PaperRow("dist", 8, 5, 0.03, 669, 77, 40.62, 88.49, 736, -10.01, 718, -7.32, "IV"),
    PaperRow("max512", 9, 6, 0.01, 817, 3, 43.23, 99.63, 769, 5.88, 745, 8.81, "IV"),
    PaperRow("ex7", 16, 5, 0.05, 192, 32, 43.51, 83.33, 338, -76.04, 386, -101.04, "IV"),
    PaperRow("z4", 7, 4, 0.01, 140, 3, 43.75, 97.86, 135, 3.57, 136, 2.86, "IV"),
    PaperRow("clip", 9, 5, 0.03, 430, 24, 44.65, 94.42, 142, 66.98, 47, 89.07, "IV"),
    PaperRow("max1024", 10, 6, 0.03, 1362, 48, 44.79, 96.48, 946, 30.54, 838, 38.47, "IV"),
    PaperRow("adr4", 8, 5, 0.02, 180, 27, 45.00, 85.00, 223, -23.89, 215, -19.44, "IV"),
    PaperRow("radd", 8, 5, 0.00, 119, 3, 45.62, 97.48, 144, -21.01, 141, -18.49, "IV"),
    PaperRow("add6", 12, 7, 0.05, 292, 3, 46.54, 98.97, 402, -37.67, 401, -37.33, "IV"),
    PaperRow("log8mod", 8, 5, 0.01, 237, 11, 47.50, 95.36, 219, 7.59, 221, 6.75, "IV"),
    PaperRow("Z5xp1", 7, 10, 0.01, 273, 10, 48.91, 96.34, 271, 0.73, 265, 2.93, "IV"),
)

PAPER_ROWS: dict[str, PaperRow] = {
    row.name: row for row in TABLE_III_ROWS + TABLE_IV_ROWS
}
