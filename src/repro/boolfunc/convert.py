"""Conversions between truth tables and BDD functions."""

from __future__ import annotations

from repro.bdd.manager import BDD, Function
from repro.boolfunc.truthtable import TruthTable

#: Safety bound: dense conversion above this arity would allocate 2^24 bits.
MAX_DENSE_VARS = 24


def truthtable_to_function(mgr: BDD, table: TruthTable) -> Function:
    """Build the BDD of a dense truth table.

    The manager must declare exactly ``table.n_vars`` variables; variable 0
    (top of the order) is the most significant bit of the minterm index,
    matching the truth-table convention.
    """
    if mgr.n_vars != table.n_vars:
        raise ValueError(
            f"manager has {mgr.n_vars} variables, table has {table.n_vars}"
        )

    cache: dict[tuple[int, int], int] = {}

    def rec(level: int, bits: int) -> int:
        # ``bits`` is the truth table of the subfunction on variables
        # [level, n): 2^(n - level) entries.
        width = 1 << (table.n_vars - level)
        if bits == 0:
            return 0
        if bits == (1 << width) - 1:
            return 1
        key = (level, bits)
        cached = cache.get(key)
        if cached is not None:
            return cached
        half = width >> 1
        # Minterm index bit for variable ``level`` is at position
        # (n - 1 - level); within this sub-block it is the top bit, so the
        # low half of the bit range is variable=0.
        low_bits = bits & ((1 << half) - 1)
        high_bits = bits >> half
        node = mgr._mk(level, rec(level + 1, low_bits), rec(level + 1, high_bits))
        cache[key] = node
        return node

    return Function(mgr, rec(0, table.bits))


def function_to_truthtable(function: Function) -> TruthTable:
    """Tabulate a BDD function densely (bounded by ``MAX_DENSE_VARS``)."""
    mgr = function.mgr
    if mgr.n_vars > MAX_DENSE_VARS:
        raise ValueError(
            f"refusing dense conversion for {mgr.n_vars} > {MAX_DENSE_VARS} variables"
        )

    cache: dict[tuple[int, int], int] = {}

    def rec(level: int, edge: int) -> int:
        width = 1 << (mgr.n_vars - level)
        if edge == 0:
            return 0
        if edge == 1:
            return (1 << width) - 1
        key = (level, edge)
        cached = cache.get(key)
        if cached is not None:
            return cached
        half = width >> 1
        index = edge >> 1
        if mgr._level[index] == level:
            complement = edge & 1
            low_bits = rec(level + 1, mgr._low[index] ^ complement)
            high_bits = rec(level + 1, mgr._high[index] ^ complement)
        else:
            low_bits = high_bits = rec(level + 1, edge)
        bits = (high_bits << half) | low_bits
        cache[key] = bits
        return bits

    return TruthTable(mgr.n_vars, rec(0, function.node))
