"""Dense truth tables as arbitrary-precision bitmasks.

A :class:`TruthTable` over ``n`` variables stores one bit per minterm in a
single Python integer (bit ``i`` = value on minterm ``i``).  Bitwise
operators on Python integers are implemented in C, so this backend is both
exact and quick for the ``n <= ~20`` range where dense representations are
feasible.  Variable 0 is the most significant bit of the minterm index
(library-wide convention).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from random import Random

from repro.utils.bitops import mask_for, minterm_to_assignment


class TruthTable:
    """Completely specified Boolean function as a packed truth table."""

    __slots__ = ("n_vars", "bits")

    def __init__(self, n_vars: int, bits: int) -> None:
        if n_vars < 0:
            raise ValueError("n_vars must be non-negative")
        self.n_vars = n_vars
        self.bits = bits & mask_for(n_vars)

    # -- constructors -----------------------------------------------------
    @classmethod
    def zeros(cls, n_vars: int) -> "TruthTable":
        """The constant-0 function."""
        return cls(n_vars, 0)

    @classmethod
    def ones(cls, n_vars: int) -> "TruthTable":
        """The constant-1 function."""
        return cls(n_vars, mask_for(n_vars))

    @classmethod
    def variable(cls, n_vars: int, index: int) -> "TruthTable":
        """Projection function of variable ``index`` (0 = most significant)."""
        if not 0 <= index < n_vars:
            raise ValueError(f"variable index {index} out of range")
        bits = 0
        shift = n_vars - 1 - index
        for minterm in range(1 << n_vars):
            if (minterm >> shift) & 1:
                bits |= 1 << minterm
        return cls(n_vars, bits)

    @classmethod
    def from_function(cls, n_vars: int, fn: Callable[..., int | bool]) -> "TruthTable":
        """Tabulate ``fn(x0, x1, ..)`` over all assignments."""
        bits = 0
        for minterm in range(1 << n_vars):
            if fn(*minterm_to_assignment(minterm, n_vars)):
                bits |= 1 << minterm
        return cls(n_vars, bits)

    @classmethod
    def from_minterms(cls, n_vars: int, minterms: Iterator[int] | list[int]) -> "TruthTable":
        """Build from an iterable of on-set minterm indices."""
        bits = 0
        for minterm in minterms:
            bits |= 1 << minterm
        return cls(n_vars, bits)

    @classmethod
    def random(cls, n_vars: int, rng: Random, density: float = 0.5) -> "TruthTable":
        """A random function where each minterm is on with probability ``density``."""
        bits = 0
        for minterm in range(1 << n_vars):
            if rng.random() < density:
                bits |= 1 << minterm
        return cls(n_vars, bits)

    # -- queries -----------------------------------------------------------
    def __call__(self, minterm: int) -> bool:
        return bool((self.bits >> minterm) & 1)

    def __len__(self) -> int:
        return 1 << self.n_vars

    def count(self) -> int:
        """Number of on-set minterms."""
        return self.bits.bit_count()

    def minterms(self) -> Iterator[int]:
        """Iterate on-set minterm indices in increasing order."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    @property
    def is_false(self) -> bool:
        """True iff the function is constantly 0."""
        return self.bits == 0

    @property
    def is_true(self) -> bool:
        """True iff the function is constantly 1."""
        return self.bits == mask_for(self.n_vars)

    # -- operators -----------------------------------------------------------
    def _check(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other.n_vars != self.n_vars:
            raise ValueError("mixing truth tables of different arity")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n_vars, self.bits ^ other.bits)

    def __sub__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n_vars, self.bits & ~other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n_vars, ~self.bits)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and other.n_vars == self.n_vars
            and other.bits == self.bits
        )

    def __hash__(self) -> int:
        return hash((self.n_vars, self.bits))

    def __le__(self, other: "TruthTable") -> bool:
        """Subset (implication) test."""
        self._check(other)
        return self.bits & ~other.bits == 0

    def __ge__(self, other: "TruthTable") -> bool:
        self._check(other)
        return other.bits & ~self.bits == 0

    def disjoint(self, other: "TruthTable") -> bool:
        """True iff the on-sets do not intersect."""
        self._check(other)
        return self.bits & other.bits == 0

    def __repr__(self) -> str:
        if self.n_vars <= 5:
            rows = format(self.bits, f"0{1 << self.n_vars}b")
            return f"TruthTable({self.n_vars}, 0b{rows})"
        return f"TruthTable({self.n_vars}, count={self.count()})"

    # -- misc -------------------------------------------------------------------
    def cofactor(self, index: int, value: int | bool) -> "TruthTable":
        """Shannon cofactor w.r.t. variable ``index`` (result keeps arity)."""
        var = TruthTable.variable(self.n_vars, index)
        keep = var if value else ~var
        shift = 1 << (self.n_vars - 1 - index)
        selected = self.bits & keep.bits
        if value:
            other_half = selected >> shift
        else:
            other_half = (selected << shift) & mask_for(self.n_vars)
        return TruthTable(self.n_vars, selected | other_half)

    def error_count(self, other: "TruthTable") -> int:
        """Number of minterms where the two functions differ."""
        self._check(other)
        return (self.bits ^ other.bits).bit_count()
