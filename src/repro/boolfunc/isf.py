"""Incompletely specified functions (ISFs) as disjoint function pairs.

An ISF ``f: {0,1}^n -> {0, 1, -}`` is represented by two disjoint
functions: the on-set and the dc-set; the off-set is their complement.
This is the object the paper manipulates: the dividend ``f`` and the
full quotient ``h`` are ISFs, while the divisor ``g`` is completely
specified.  The pair may live in either backend — BDDs
(:class:`~repro.bdd.manager.Function`) or dense truth tables
(:class:`~repro.backend.bitset.BitsetFunction`) — as long as both sets
share one manager.
"""

from __future__ import annotations

from collections.abc import Iterator
from random import Random

from repro.backend.protocol import BooleanFunction as Function
from repro.backend.protocol import BooleanManager as BDD


class ISF:
    """An incompletely specified function: disjoint (on, dc) BDD pair."""

    __slots__ = ("on", "dc")

    def __init__(self, on: Function, dc: Function) -> None:
        if on.mgr is not dc.mgr:
            raise ValueError("on-set and dc-set use different managers")
        if not on.disjoint(dc):
            raise ValueError("on-set and dc-set must be disjoint")
        self.on = on
        self.dc = dc

    # -- constructors -----------------------------------------------------
    @classmethod
    def completely_specified(cls, on: Function) -> "ISF":
        """Wrap a completely specified function (empty dc-set)."""
        return cls(on, on.mgr.false)

    @classmethod
    def from_sets(cls, mgr: BDD, on_minterms, dc_minterms) -> "ISF":
        """Build from explicit minterm iterables (small n; tests/figures)."""
        on = mgr.false
        for minterm in on_minterms:
            on = on | mgr.minterm(minterm)
        dc = mgr.false
        for minterm in dc_minterms:
            dc = dc | mgr.minterm(minterm)
        return cls(on, dc)

    @classmethod
    def random(
        cls,
        mgr: BDD,
        rng: Random,
        on_density: float = 0.4,
        dc_density: float = 0.2,
    ) -> "ISF":
        """Random ISF for property-based testing (requires small n)."""
        on = mgr.false
        dc = mgr.false
        for minterm in range(1 << mgr.n_vars):
            draw = rng.random()
            if draw < on_density:
                on = on | mgr.minterm(minterm)
            elif draw < on_density + dc_density:
                dc = dc | mgr.minterm(minterm)
        return cls(on, dc)

    # -- derived sets -------------------------------------------------------
    @property
    def mgr(self) -> BDD:
        """The owning BDD manager."""
        return self.on.mgr

    @property
    def off(self) -> Function:
        """The off-set (complement of on ∪ dc)."""
        return ~(self.on | self.dc)

    @property
    def care(self) -> Function:
        """The care set (on ∪ off = complement of dc)."""
        return ~self.dc

    @property
    def upper(self) -> Function:
        """Largest completion: on ∪ dc."""
        return self.on | self.dc

    @property
    def is_completely_specified(self) -> bool:
        """True iff the dc-set is empty."""
        return self.dc.is_false

    @property
    def n_vars(self) -> int:
        """Number of variables of the underlying space."""
        return self.mgr.n_vars

    # -- queries --------------------------------------------------------------
    def __call__(self, minterm: int) -> int | None:
        """Value on a minterm: 1, 0, or ``None`` for don't-care."""
        if self.on(minterm):
            return 1
        if self.dc(minterm):
            return None
        return 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ISF)
            and other.on == self.on
            and other.dc == self.dc
        )

    def __hash__(self) -> int:
        return hash((self.on, self.dc))

    def __repr__(self) -> str:
        return (
            f"ISF(on={self.on.satcount()}, dc={self.dc.satcount()},"
            f" off={self.off.satcount()} minterms)"
        )

    def is_completion(self, candidate: Function) -> bool:
        """True iff ``candidate`` agrees with this ISF on its care set."""
        return self.on <= candidate and candidate <= self.upper

    def accepts(self, other: "ISF") -> bool:
        """True iff every completion of ``other`` is a completion of ``self``.

        Equivalent to: ``other`` refines ``self`` — its on-set covers our
        on-set requirement and stays within our upper bound, and its
        flexibility is contained in ours.
        """
        return self.on <= other.on and other.upper <= self.upper

    # -- transformations --------------------------------------------------------
    def __invert__(self) -> "ISF":
        """Complement: swaps on and off, keeps the dc-set."""
        return ISF(self.off, self.dc)

    def restrict_flexibility(self, keep_dc: Function) -> "ISF":
        """Shrink the dc-set to ``dc & keep_dc`` (minterms leaving the
        dc-set become off-set, i.e. the function stays an extension)."""
        return ISF(self.on, self.dc & keep_dc)

    def cofactor(self, name: str, value: int | bool) -> "ISF":
        """Shannon cofactor of both sets."""
        return ISF(self.on.cofactor(name, value), self.dc.cofactor(name, value))

    # -- counting ------------------------------------------------------------------
    def counts(self) -> tuple[int, int, int]:
        """Return ``(|on|, |dc|, |off|)`` minterm counts."""
        on = self.on.satcount()
        dc = self.dc.satcount()
        return on, dc, (1 << self.n_vars) - on - dc

    def on_minterms(self) -> Iterator[int]:
        """Iterate the on-set minterm indices."""
        return self.on.minterms()

    def dc_minterms(self) -> Iterator[int]:
        """Iterate the dc-set minterm indices."""
        return self.dc.minterms()
