"""Boolean function representations.

Two complementary backends:

* :class:`~repro.boolfunc.truthtable.TruthTable` — dense bit-packed truth
  tables (a Python integer with one bit per minterm).  Exact, simple and
  fast for small variable counts; used as the brute-force oracle in tests
  and for Karnaugh-map rendering.
* :class:`~repro.boolfunc.isf.ISF` — incompletely specified functions as
  (on-set, dc-set) BDD pairs, the representation the paper's flow uses
  for ``f`` and the full quotient ``h``.
"""

from repro.boolfunc.convert import function_to_truthtable, truthtable_to_function
from repro.boolfunc.isf import ISF
from repro.boolfunc.truthtable import TruthTable

__all__ = ["ISF", "TruthTable", "function_to_truthtable", "truthtable_to_function"]
