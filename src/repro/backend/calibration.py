"""Measured calibration behind the ``backend="auto"`` dispatch boundary.

The auto dispatcher (:func:`repro.backend.protocol.choose_backend`)
routes a request to the dense bitset backend when its support is at most
``DEFAULT_BITSET_SUPPORT`` variables.  That threshold is not a guess —
it is the *measured* crossover from the PR-4 backend comparison
(``benchmarks/output/BENCH_BDD_backends_pr4.json``): every suite
benchmark decomposed on both backends, per-benchmark wall times and
speedups recorded.  The rows are embedded here verbatim so the boundary
is derivable offline, auditable in review, and pinned by tests:

* every benchmark with support <= 16 ran faster dense — including the
  ``ex7`` class at exactly 16 support, the widest measured win (1.53x,
  the thinnest margin in the table, which is what makes it the
  boundary row);
* no measured workload has support in (16, 20], so the boundary sits at
  the last point with evidence rather than an extrapolation.

:func:`support_boundary` re-derives the threshold from the rows;
:data:`repro.backend.protocol.DEFAULT_BITSET_SUPPORT` imports it, so
the shipped default cannot silently drift from the committed
measurements.  Re-run ``benchmarks/bench_bdd.py`` (full mode) after
backend perf changes and refresh the rows if the crossover moves.
"""

from __future__ import annotations

#: Where the embedded rows were measured (committed benchmark artifact).
CALIBRATION_SOURCE = "benchmarks/output/BENCH_BDD_backends_pr4.json"

#: Per-benchmark backend comparison: multi-output suite benchmarks
#: decomposed once per backend on the same machine and commit.
#: ``max_support`` is the widest per-output support of the benchmark;
#: ``speedup_bitset`` is ``bdd_s / bitset_s`` (> 1 means dense wins);
#: ``auto_vs_best`` is the auto dispatcher's wall time over the faster
#: backend's (1.0 would be a perfect oracle).
CALIBRATION_ROWS: tuple[dict, ...] = (
    {"name": "Z5xp1", "max_support": 7, "bdd_s": 0.07612, "bitset_s": 0.016888, "speedup_bitset": 4.507, "auto_vs_best": 1.042},
    {"name": "add6", "max_support": 12, "bdd_s": 1.067754, "bitset_s": 0.10901, "speedup_bitset": 9.795, "auto_vs_best": 1.037},
    {"name": "adr4", "max_support": 8, "bdd_s": 0.086085, "bitset_s": 0.014181, "speedup_bitset": 6.07, "auto_vs_best": 0.996},
    {"name": "b7", "max_support": 8, "bdd_s": 0.248405, "bitset_s": 0.053258, "speedup_bitset": 4.664, "auto_vs_best": 1.049},
    {"name": "br1", "max_support": 12, "bdd_s": 0.327464, "bitset_s": 0.048699, "speedup_bitset": 6.724, "auto_vs_best": 1.002},
    {"name": "br2", "max_support": 12, "bdd_s": 0.19287, "bitset_s": 0.035539, "speedup_bitset": 5.427, "auto_vs_best": 1.032},
    {"name": "clip", "max_support": 9, "bdd_s": 0.966507, "bitset_s": 0.081305, "speedup_bitset": 11.887, "auto_vs_best": 0.978},
    {"name": "dist", "max_support": 8, "bdd_s": 0.493052, "bitset_s": 0.04925, "speedup_bitset": 10.011, "auto_vs_best": 1.04},
    {"name": "ex7", "max_support": 16, "bdd_s": 0.070337, "bitset_s": 0.046066, "speedup_bitset": 1.527, "auto_vs_best": 1.037},
    {"name": "log8mod", "max_support": 8, "bdd_s": 0.277754, "bitset_s": 0.034152, "speedup_bitset": 8.133, "auto_vs_best": 1.018},
    {"name": "max1024", "max_support": 10, "bdd_s": 1.246687, "bitset_s": 0.108017, "speedup_bitset": 11.542, "auto_vs_best": 1.018},
    {"name": "max512", "max_support": 9, "bdd_s": 0.73073, "bitset_s": 0.073666, "speedup_bitset": 9.919, "auto_vs_best": 0.995},
    {"name": "mp2d", "max_support": 14, "bdd_s": 0.544302, "bitset_s": 0.130911, "speedup_bitset": 4.158, "auto_vs_best": 0.992},
    {"name": "newtpla2", "max_support": 10, "bdd_s": 0.021768, "bitset_s": 0.007027, "speedup_bitset": 3.098, "auto_vs_best": 0.978},
    {"name": "radd", "max_support": 8, "bdd_s": 0.05904, "bitset_s": 0.012692, "speedup_bitset": 4.652, "auto_vs_best": 1.017},
    {"name": "risc", "max_support": 8, "bdd_s": 0.122162, "bitset_s": 0.036798, "speedup_bitset": 3.32, "auto_vs_best": 0.996},
    {"name": "z4", "max_support": 7, "bdd_s": 0.050178, "bitset_s": 0.009151, "speedup_bitset": 5.483, "auto_vs_best": 1.027},
)


def support_boundary(
    rows: tuple[dict, ...] = CALIBRATION_ROWS, min_speedup: float = 1.0
) -> int:
    """Widest measured support at which the bitset backend still wins.

    The auto-dispatch threshold: dense routing is extended exactly as
    far as the committed evidence supports (``speedup_bitset`` at least
    ``min_speedup``), never past it.  Raises :class:`ValueError` when
    no row wins — a boundary without evidence would be a guess.
    """
    winning = [
        row["max_support"]
        for row in rows
        if row["speedup_bitset"] >= min_speedup
    ]
    if not winning:
        raise ValueError(
            "no calibration row shows a bitset win; cannot derive a boundary"
        )
    return max(winning)


def boundary_row(
    rows: tuple[dict, ...] = CALIBRATION_ROWS, min_speedup: float = 1.0
) -> dict:
    """The row that *sets* the boundary (widest winning support).

    Ties break toward the smallest speedup — the thinnest margin is the
    evidence that actually constrains the threshold.
    """
    boundary = support_boundary(rows, min_speedup)
    at_boundary = [row for row in rows if row["max_support"] == boundary]
    return min(at_boundary, key=lambda row: row["speedup_bitset"])


def calibration_payload() -> dict:
    """JSON-ready snapshot of the calibration (the committed artifact).

    ``benchmarks/output/BACKEND_CALIBRATION_pr8.json`` is this payload
    verbatim; the regression suite reloads it and checks it still
    matches the embedded rows and the derived boundary.
    """
    return {
        "format": "repro-backend-calibration/1",
        "source": CALIBRATION_SOURCE,
        "support_boundary": support_boundary(),
        "boundary_row": boundary_row(),
        "rows": list(CALIBRATION_ROWS),
    }


__all__ = [
    "CALIBRATION_ROWS",
    "CALIBRATION_SOURCE",
    "boundary_row",
    "calibration_payload",
    "support_boundary",
]
