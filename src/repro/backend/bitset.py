"""Dense truth-table backend behind the :class:`~repro.bdd.manager.Function` API.

For functions over ``n <= ~20`` variables a packed-integer truth table —
one bit per minterm, bitwise operators implemented in C — beats BDD
applies by an order of magnitude: every connective, containment test,
satcount, and cofactor is a handful of big-int operations instead of a
memoized graph traversal.  :class:`BitsetBDD` and :class:`BitsetFunction`
expose the same interface as :class:`~repro.bdd.manager.BDD` and
:class:`~repro.bdd.manager.Function` (both register as virtual
subclasses of the protocol ABCs in :mod:`repro.backend.protocol`), so
the whole decomposition stack — quotients, operators, flexibility,
approximators, minimizers — runs unchanged on either representation.

Design notes:

* **Raw values are plain ints.**  A function's "edge" is its truth-table
  bitmask over the manager's declared variable space (bit ``i`` = value
  on minterm ``i``; variable 0 is the most significant bit of the
  minterm index, the library-wide convention).  The constants are ``0``
  and the all-ones mask.
* **Identity matches the BDD backend.**  Equal functions have equal
  bitmasks, serialization (see :mod:`repro.bdd.serialize`) emits the
  reduced-OBDD expansion of the table in the same canonical post-order
  the BDD manager produces, so dumps, ``canonical_hash`` fingerprints,
  and ResultCache keys are byte-identical across backends.
* **Late declaration is supported.**  :meth:`BitsetBDD.add_var` widens
  the space; live :class:`BitsetFunction` handles remember the width
  they were built in and re-align lazily (a new variable is added below
  all existing ones, so alignment duplicates each bit).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.bdd.manager import ComputedTable, DEFAULT_CACHE_SIZE
from repro.utils.bitops import mask_for

#: Hard feasibility cap: a dense table over more variables than this
#: would allocate >= 2^24 bits per function.
MAX_BITSET_VARS = 24


def _projection_bits(level: int, n_vars: int) -> int:
    """Truth-table mask of the projection of variable ``level``.

    Variable 0 is the most significant bit of the minterm index, so the
    mask is a run of ``2^(n-1-level)`` zeros then as many ones, repeated
    across the ``2^n``-bit table (built by doubling, not per bit).
    """
    block = 1 << (n_vars - 1 - level)
    pattern = ((1 << block) - 1) << block
    width = block << 1
    total = 1 << n_vars
    while width < total:
        pattern |= pattern << width
        width <<= 1
    return pattern


def _double_bits(bits: int, size: int) -> int:
    """Duplicate each of ``size`` bits in place (bit ``b`` -> bits 2b, 2b+1).

    This is the table expansion for one newly declared (deepest)
    variable; divide-and-conquer keeps it O(size log size) big-int work.
    """
    if bits == 0:
        return 0
    if size == 1:
        return 3
    half = size >> 1
    low = _double_bits(bits & ((1 << half) - 1), half)
    high = _double_bits(bits >> half, half)
    return (high << size) | low


class BitsetBDD:
    """Manager for dense truth-table functions (the "bitset" backend).

    Mirrors the :class:`~repro.bdd.manager.BDD` surface: variable
    declaration and lookup, constants, cubes and minterms, product /
    pseudoproduct construction with shared memo tables,
    ``computed_table`` for consumer-owned memos, ``stats``/``gc``
    bookkeeping hooks.  There is no unique table — canonical form *is*
    the bitmask.
    """

    #: Identifies the backend in dispatch helpers and ``stats()``.
    backend = "bitset"

    def __init__(
        self, var_names: Iterable[str] = (), cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        #: Projection bitmask per level (over the current full space).
        self._var_bits: list[int] = []
        #: Complemented projection masks (precomputed: ``~v`` on a wide
        #: table allocates a fresh big int per use otherwise).
        self._nvar_bits: list[int] = []
        self._mask = 1  # mask_for(0): the 0-variable space has one minterm
        self._n = 0  # declared variable count (attribute: hot path)
        self._cache_size = cache_size
        self._user_tables: dict[str, ComputedTable] = {}
        #: The shared product memo (also reachable as
        #: ``computed_table("product")`` for stats and cache clearing).
        self._product_table = self.computed_table("product")
        self._false_fn = self._make(0)
        self._true_fn = self._make(1)
        self._var_handles: list[BitsetFunction] = []
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def var_names(self) -> tuple[str, ...]:
        """Declared variable names, in order (index 0 on top)."""
        return tuple(self._var_names)

    @property
    def n_vars(self) -> int:
        """Number of declared variables."""
        return self._n

    def add_var(self, name: str) -> "BitsetFunction":
        """Declare a new variable below all existing ones and return it.

        Widening the space invalidates memoized tables (their cached
        bitmasks are in the old width); live function handles re-align
        lazily through :meth:`BitsetFunction._aligned_bits`.
        """
        if name in self._var_index:
            raise ValueError(f"variable {name!r} already declared")
        if len(self._var_names) >= MAX_BITSET_VARS:
            raise ValueError(
                f"bitset backend is capped at {MAX_BITSET_VARS} variables;"
                " use the BDD backend for wider spaces"
            )
        index = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = index
        n = index + 1
        self._n = n
        mask = mask_for(n)
        self._mask = mask
        # Closed-form rebuild of every projection mask in the new width:
        # O(n log 2^n) shift work, no per-bit recursion.
        self._var_bits = [_projection_bits(level, n) for level in range(n)]
        self._nvar_bits = [bits ^ mask for bits in self._var_bits]
        # Shared immutable handles for constants and projections (hot
        # accessors would otherwise allocate per call).
        self._false_fn = self._make(0)
        self._true_fn = self._make(mask)
        self._var_handles = [self._make(bits) for bits in self._var_bits]
        self.clear_caches()
        return self._var_handles[index]

    def var(self, name: str) -> "BitsetFunction":
        """Return the projection function of a declared variable."""
        return self._var_handles[self._var_index[name]]

    def var_at(self, index: int) -> "BitsetFunction":
        """Return the projection function of the variable at ``index``."""
        return self._var_handles[index]

    def level_of(self, name: str) -> int:
        """Return the order position of variable ``name``."""
        return self._var_index[name]

    # ------------------------------------------------------------------
    # Constants, cubes, minterms
    # ------------------------------------------------------------------
    @property
    def false(self) -> "BitsetFunction":
        """The constant-0 function."""
        return self._false_fn

    @property
    def true(self) -> "BitsetFunction":
        """The constant-1 function."""
        return self._true_fn

    def cube(self, assignment: dict[str, int | bool]) -> "BitsetFunction":
        """Build the conjunction of literals described by ``assignment``."""
        pos = neg = 0
        for name, value in assignment.items():
            bit = 1 << self._var_index[name]
            if value:
                pos |= bit
            else:
                neg |= bit
        return self.product(pos, neg)

    def minterm(self, minterm_index: int) -> "BitsetFunction":
        """Build the single-minterm function for ``minterm_index``."""
        return BitsetFunction(self, 1 << minterm_index)

    def _make(self, bits: int) -> "BitsetFunction":
        """Internal handle constructor for already-masked tables."""
        fn = BitsetFunction.__new__(BitsetFunction)
        fn.mgr = self
        fn.width = self._n
        fn.bits = bits
        return fn

    def product(self, pos: int, neg: int) -> "BitsetFunction":
        """Product function from literal masks (bit ``i`` = variable ``i``).

        Memoized in the shared ``"product"`` table, mirroring the BDD
        manager's cube construction path.  The table stores the *handle*
        — handles are immutable values here (no gc root set to pollute,
        unlike the BDD backend), so the hit path is one dict lookup.
        """
        table = self._product_table
        key = (pos, neg)
        fn = table.data.get(key)
        if fn is None:
            table.misses += 1
            fn = self._make(self._product_bits(pos, neg))
            table.put(key, fn)
        else:
            table.hits += 1
        return fn

    def _product_bits(self, pos: int, neg: int) -> int:
        """Truth table of a product, built bottom-up by doubling.

        Processing levels deepest-first, a bound level places the
        current pattern in one half of the doubled table and a free
        level replicates it — total work is one table's worth of shifts
        (geometric series), versus one full-width AND *per literal* in
        the naive form.
        """
        bound = pos | neg
        if not bound:
            return self._mask
        pattern = 1
        width = 1
        for level in range(self._n - 1, -1, -1):
            bit = 1 << level
            if bound & bit:
                if pos & bit:
                    pattern <<= width
            else:
                pattern |= pattern << width
            width <<= 1
        return pattern

    def spp_product(self, pos: int, neg: int, xors) -> "BitsetFunction":
        """Pseudoproduct function: literal masks plus XOR factors.

        ``xors`` is an iterable of ``(i, j, phase)``-shaped factors (the
        :class:`~repro.spp.pseudocube.XorFactor` named tuple matches).
        The same memo key layout as the BDD manager's product table.
        """
        if not xors:
            return self.product(pos, neg)
        table = self._product_table
        key = (pos, neg, xors) if isinstance(xors, frozenset) else None
        fn = table.data.get(key) if key is not None else None
        if fn is None:
            table.misses += 1
            bits = self._product_bits(pos, neg)
            for i, j, phase in sorted(tuple(x) for x in xors):
                factor = self._var_bits[i] ^ self._var_bits[j]
                if not phase:
                    factor ^= self._mask
                bits &= factor
            fn = self._make(bits)
            if key is not None:
                table.put(key, fn)
        else:
            table.hits += 1
        return fn

    # ------------------------------------------------------------------
    # Bit-level helpers (shared by BitsetFunction and the serializer)
    # ------------------------------------------------------------------
    def _cofactor_bits(self, bits: int, level: int, value: int) -> int:
        """Shannon cofactor of a full-width table (keeps the arity)."""
        block = 1 << (self._n - 1 - level)
        if value:
            selected = bits & self._var_bits[level]
            return selected | (selected >> block)
        selected = bits & self._nvar_bits[level]
        return selected | (selected << block)

    def _depends_on(self, bits: int, level: int) -> bool:
        """True iff the table depends on the variable at ``level``."""
        block = 1 << (self._n - 1 - level)
        return bool((bits ^ (bits >> block)) & self._nvar_bits[level])

    def _top_level(self, bits: int, start: int = 0) -> int:
        """Smallest level >= ``start`` the table depends on.

        Returns ``n_vars`` for constants.  ``start`` lets Shannon-walk
        callers skip levels a parent already resolved (children of a
        node at level ``l`` cannot depend on anything above ``l``).
        """
        n = self._n
        nvar_bits = self._nvar_bits
        for level in range(start, n):
            block = 1 << (n - 1 - level)
            if (bits ^ (bits >> block)) & nvar_bits[level]:
                return level
        return n

    def _support_levels(self, bits: int) -> list[int]:
        return [
            level for level in range(self._n) if self._depends_on(bits, level)
        ]

    # ------------------------------------------------------------------
    # Manager bookkeeping (BDD-surface parity)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Bitset functions have no node store; reported as 0."""
        return 0

    def size(self, function: "BitsetFunction") -> int:
        """Distinct subfunctions of ``function`` (= ROBDD edge count)."""
        return function.size()

    def computed_table(self, name: str, capacity: int | None = None) -> ComputedTable:
        """A named memo table sharing the manager's lifecycle."""
        table = self._user_tables.get(name)
        if table is None:
            table = ComputedTable(self._cache_size if capacity is None else capacity)
            self._user_tables[name] = table
        return table

    def clear_caches(self) -> None:
        """Drop all memo tables (cached bitmasks may be stale in width)."""
        for table in self._user_tables.values():
            table.clear()

    def gc(self) -> dict:
        """No node store to collect; clears memo tables for parity."""
        self.clear_caches()
        return {"marked": 0, "swept": 0, "nodes": 0}

    def reorder(self, max_growth: float = 1.2) -> dict:
        """Dense tables address variables positionally: a no-op, kept
        for surface parity with :meth:`repro.bdd.manager.BDD.reorder`."""
        return {
            "before": 0,
            "after": 0,
            "swaps": 0,
            "order": list(self.var_names),
        }

    def stats(self) -> dict:
        """Manager health counters (same shape as the BDD manager's)."""
        return {
            "backend": self.backend,
            "n_vars": self.n_vars,
            "nodes": 0,
            "allocated": 0,
            "free_slots": 0,
            "tracked_handles": 0,
            "gc_runs": 0,
            "gc_reclaimed": 0,
            "tables": {
                f"user:{name}": table.stats()
                for name, table in sorted(self._user_tables.items())
            },
        }

    # ------------------------------------------------------------------
    # Serializer hooks (see repro.bdd.serialize)
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Combine child tables under the variable at ``level``.

        The raw-value counterpart of the BDD manager's unique-table
        constructor: ``low``/``high`` are full-width tables and the
        result is ``(~v & low) | (v & high)``.  Used by the generic
        serializer load loop.
        """
        return (self._nvar_bits[level] & low) | (self._var_bits[level] & high)

    def _wrap(self, raw: int) -> "BitsetFunction":
        """Wrap a raw table value as a function handle."""
        return BitsetFunction(self, raw)

    def _constant_raw(self) -> tuple[int, int]:
        """Raw values of the constants (serializer ref seeds)."""
        return 0, self._mask


class BitsetFunction:
    """Handle to a dense truth table, with Boolean operator overloading.

    Drop-in for :class:`~repro.bdd.manager.Function`: identical operator
    surface, set-ordering comparisons, evaluation, counting, cofactor /
    quantifier / composition methods.  Handles compare equal iff they
    denote the same function in the same manager.
    """

    __slots__ = ("mgr", "bits", "width")

    def __init__(self, mgr: BitsetBDD, bits: int) -> None:
        self.mgr = mgr
        self.width = mgr._n
        self.bits = bits & mgr._mask

    # -- width alignment ---------------------------------------------------
    def _aligned_bits(self) -> int:
        """Table bits in the manager's *current* width.

        A variable declared after this handle was built sits below all
        existing ones, so alignment duplicates each bit once per new
        variable.  The handle is updated in place (amortized O(1)).
        """
        if self.width == self.mgr._n:
            return self.bits
        delta = self.mgr._n - self.width
        bits = self.bits
        size = 1 << self.width
        for _ in range(delta):
            bits = _double_bits(bits, size)
            size <<= 1
        self.bits = bits
        self.width = self.mgr._n
        return bits

    def _raw_of(self, other: "BitsetFunction | int | bool") -> int:
        if isinstance(other, BitsetFunction):
            if other.mgr is not self.mgr:
                raise ValueError("mixing functions from different managers")
            return other._aligned_bits()
        return self.mgr._mask if other else 0

    def _wrap(self, bits: int) -> "BitsetFunction":
        # Internal constructor: callers guarantee ``bits`` is already
        # masked to the current width, so skip the (wide) re-mask the
        # public __init__ performs.
        fn = BitsetFunction.__new__(BitsetFunction)
        fn.mgr = self.mgr
        fn.width = self.mgr._n
        fn.bits = bits
        return fn

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitsetFunction)
            and other.mgr is self.mgr
            and other._aligned_bits() == self._aligned_bits()
        )

    def __hash__(self) -> int:
        return hash((id(self.mgr), self._aligned_bits()))

    def __repr__(self) -> str:
        return (
            f"<BitsetFunction n={self.mgr.n_vars}"
            f" count={self._aligned_bits().bit_count()}>"
        )

    # -- constants ----------------------------------------------------------
    @property
    def is_false(self) -> bool:
        """True iff this is the constant-0 function."""
        return self._aligned_bits() == 0

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-1 function."""
        return self._aligned_bits() == self.mgr._mask

    # -- connectives --------------------------------------------------------
    def __invert__(self) -> "BitsetFunction":
        return self._wrap(self._aligned_bits() ^ self.mgr._mask)

    # The binary connectives fast-path the overwhelmingly common case —
    # two same-width handles of one manager — down to a single big-int
    # operation; the general path handles bool/int operands and stale
    # widths after add_var.

    def __and__(self, other: "BitsetFunction | int | bool") -> "BitsetFunction":
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return mgr._make(self.bits & other.bits)
        return self._wrap(self._aligned_bits() & self._raw_of(other))

    __rand__ = __and__

    def __or__(self, other: "BitsetFunction | int | bool") -> "BitsetFunction":
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return mgr._make(self.bits | other.bits)
        return self._wrap(self._aligned_bits() | self._raw_of(other))

    __ror__ = __or__

    def __xor__(self, other: "BitsetFunction | int | bool") -> "BitsetFunction":
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return mgr._make(self.bits ^ other.bits)
        return self._wrap(self._aligned_bits() ^ self._raw_of(other))

    __rxor__ = __xor__

    def __sub__(self, other: "BitsetFunction | int | bool") -> "BitsetFunction":
        """Set difference: ``f - g`` is ``f & ~g``."""
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return mgr._make(self.bits & (other.bits ^ mgr._mask))
        return self._wrap(self._aligned_bits() & ~self._raw_of(other))

    def implies(self, other: "BitsetFunction") -> "BitsetFunction":
        """The function ``~self | other``."""
        return ~self | other

    def equiv(self, other: "BitsetFunction") -> "BitsetFunction":
        """The function ``self XNOR other``."""
        return ~(self ^ other)

    def ite(
        self, when_true: "BitsetFunction", when_false: "BitsetFunction"
    ) -> "BitsetFunction":
        """If-then-else with ``self`` as the condition."""
        bits = self._aligned_bits()
        return self._wrap(
            (bits & self._raw_of(when_true))
            | (~bits & self.mgr._mask & self._raw_of(when_false))
        )

    # -- ordering as sets ----------------------------------------------------
    def __le__(self, other: "BitsetFunction") -> bool:
        """Subset test: True iff ``self`` implies ``other`` everywhere."""
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return self.bits & ~other.bits == 0
        return self._aligned_bits() & ~self._raw_of(other) == 0

    def __ge__(self, other: "BitsetFunction") -> bool:
        return self._raw_of(other) & ~self._aligned_bits() == 0

    def __lt__(self, other: "BitsetFunction") -> bool:
        return self != other and self <= other

    def __gt__(self, other: "BitsetFunction") -> bool:
        return self != other and self >= other

    def disjoint(self, other: "BitsetFunction") -> bool:
        """True iff the two on-sets do not intersect."""
        mgr = self.mgr
        if (
            type(other) is BitsetFunction
            and other.mgr is mgr
            and self.width == mgr._n
            and other.width == mgr._n
        ):
            return self.bits & other.bits == 0
        return self._aligned_bits() & self._raw_of(other) == 0

    # -- structure -------------------------------------------------------------
    def support(self) -> tuple[str, ...]:
        """Names of the variables the function actually depends on."""
        names = self.mgr.var_names
        return tuple(
            names[level]
            for level in self.mgr._support_levels(self._aligned_bits())
        )

    def size(self) -> int:
        """Number of distinct subfunctions (= node count of the ROBDD).

        Matches :meth:`repro.bdd.manager.Function.size` — constants are
        counted when reachable, so a projection variable has size 3.
        """
        mgr = self.mgr
        seen: set[int] = set()
        stack = [self._aligned_bits()]
        while stack:
            bits = stack.pop()
            if bits in seen:
                continue
            seen.add(bits)
            if bits == 0 or bits == mgr._mask:
                continue
            level = mgr._top_level(bits)
            stack.append(mgr._cofactor_bits(bits, level, 0))
            stack.append(mgr._cofactor_bits(bits, level, 1))
        return len(seen)

    # -- evaluation / counting ---------------------------------------------------
    def __call__(self, minterm_index: int) -> bool:
        """Evaluate on a minterm index (variable 0 = most significant bit)."""
        return bool((self._aligned_bits() >> minterm_index) & 1)

    def evaluate(self, assignment: dict[str, int | bool]) -> bool:
        """Evaluate on a full variable assignment given by name."""
        index = 0
        for name in self.mgr.var_names:
            index = (index << 1) | (1 if assignment[name] else 0)
        return self(index)

    def satcount(self) -> int:
        """Number of on-set minterms over all declared variables."""
        return self._aligned_bits().bit_count()

    def minterms(self) -> Iterator[int]:
        """Iterate on-set minterm indices in increasing order."""
        bits = self._aligned_bits()
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # -- cofactors / quantifiers ----------------------------------------------
    def cofactor(self, name: str, value: int | bool) -> "BitsetFunction":
        """Shannon cofactor with respect to one variable."""
        return self._wrap(
            self.mgr._cofactor_bits(
                self._aligned_bits(), self.mgr.level_of(name), 1 if value else 0
            )
        )

    def restrict(self, assignment: dict[str, int | bool]) -> "BitsetFunction":
        """Simultaneous cofactor for several variables."""
        bits = self._aligned_bits()
        for name, value in assignment.items():
            bits = self.mgr._cofactor_bits(
                bits, self.mgr.level_of(name), 1 if value else 0
            )
        return self._wrap(bits)

    def exists(self, names: Iterable[str]) -> "BitsetFunction":
        """Existential quantification over ``names``."""
        bits = self._aligned_bits()
        for name in names:
            level = self.mgr.level_of(name)
            bits = self.mgr._cofactor_bits(bits, level, 0) | self.mgr._cofactor_bits(
                bits, level, 1
            )
        return self._wrap(bits)

    def forall(self, names: Iterable[str]) -> "BitsetFunction":
        """Universal quantification over ``names``."""
        bits = self._aligned_bits()
        for name in names:
            level = self.mgr.level_of(name)
            bits = self.mgr._cofactor_bits(bits, level, 0) & self.mgr._cofactor_bits(
                bits, level, 1
            )
        return self._wrap(bits)

    def compose(self, name: str, replacement: "BitsetFunction") -> "BitsetFunction":
        """Substitute ``replacement`` for variable ``name``."""
        level = self.mgr.level_of(name)
        bits = self._aligned_bits()
        g = self._raw_of(replacement)
        low = self.mgr._cofactor_bits(bits, level, 0)
        high = self.mgr._cofactor_bits(bits, level, 1)
        return self._wrap((g & high) | (~g & self.mgr._mask & low))


def dense_dump_nodes(
    mgr: BitsetBDD, labeled: list
) -> tuple[dict[int, int], list[list[int]]]:
    """Shared-DAG node list of dense functions, in canonical post-order.

    Mirrors the walk of :func:`repro.bdd.serialize.dump_many` over the
    Shannon decomposition of the truth tables: roots in dump order, low
    children before high children, nodes numbered in post-order.  Since
    the reduced OBDD of a function is unique, the emitted ``nodes`` list
    — and therefore the whole payload and its ``canonical_hash`` — is
    byte-identical to what the BDD backend dumps for equal functions.

    Returns ``(number, nodes)`` where ``number`` maps a subfunction's
    table bits to its ref (constants are ``0`` and ``1``).
    """
    number: dict[int, int] = {0: 0, mgr._mask: 1}
    nodes: list[list[int]] = []
    expansion: dict[int, tuple[int, int, int]] = {}

    def expand(bits: int, start: int) -> tuple[int, int, int]:
        cached = expansion.get(bits)
        if cached is None:
            level = mgr._top_level(bits, start)
            cached = (
                level,
                mgr._cofactor_bits(bits, level, 0),
                mgr._cofactor_bits(bits, level, 1),
            )
            expansion[bits] = cached
        return cached

    for _, function in labeled:
        # Stack entries carry the parent's level as a scan floor: a
        # child cannot depend on variables above its parent.
        stack: list[tuple[int, int, bool]] = [(function._aligned_bits(), 0, False)]
        while stack:
            bits, floor, emit = stack.pop()
            if emit:
                if bits not in number:
                    level, low, high = expand(bits, floor)
                    number[bits] = len(nodes) + 2
                    nodes.append([level, number[low], number[high]])
                continue
            if bits in number:
                continue
            level, low, high = expand(bits, floor)
            stack.append((bits, floor, True))
            stack.append((high, level + 1, False))
            stack.append((low, level + 1, False))
    return number, nodes


def isop_dense(
    mgr: BitsetBDD, lower: int, upper: int
) -> tuple[int, tuple[tuple[tuple[int, bool], ...], ...]]:
    """Minato–Morreale ISOP over dense tables.

    Structurally mirrors the BDD recursion in
    :func:`repro.bdd.ops._isop_edges` — same branch order, same
    terminal handling, same memoization granularity — so the produced
    cube sequence is identical to the BDD backend's for equal bounds.
    Returns ``(cover_bits, cubes)``; cubes are ``(level, polarity)``
    tuples, top variable first.
    """
    mask = mgr._mask
    cache: dict[tuple[int, int], tuple[int, tuple]] = {}

    def rec(low: int, up: int, floor: int) -> tuple[int, tuple]:
        if low == 0:
            return 0, ()
        if up == mask:
            return mask, ((),)
        key = (low, up)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level = min(mgr._top_level(low, floor), mgr._top_level(up, floor))
        low0 = mgr._cofactor_bits(low, level, 0)
        low1 = mgr._cofactor_bits(low, level, 1)
        up0 = mgr._cofactor_bits(up, level, 0)
        up1 = mgr._cofactor_bits(up, level, 1)
        f0, cubes0 = rec(low0 & ~up1 & mask, up0, level + 1)
        f1, cubes1 = rec(low1 & ~up0 & mask, up1, level + 1)
        fd, cubes_d = rec((low0 & ~f0) | (low1 & ~f1), up0 & up1, level + 1)
        var = mgr._var_bits[level]
        cover = ((~var & (f0 | fd)) | (var & (f1 | fd))) & mask
        cubes = (
            tuple(((level, False),) + cube for cube in cubes0)
            + tuple(((level, True),) + cube for cube in cubes1)
            + cubes_d
        )
        result = (cover, cubes)
        cache[key] = result
        return result

    return rec(lower & mask, upper & mask, 0)


def isop_stream_dense(mgr: BitsetBDD, lower: int, upper: int):
    """Lazy counterpart of :func:`isop_dense`: yields cubes one by one.

    Trades the per-node cube memoization for O(depth) memory — shared
    subproblems re-derive their cubes, exactly the replication the eager
    version performs when prefixing cached child lists — so early exits
    (first-k consumers) stop all remaining work.
    """
    mask = mgr._mask

    def rec(low: int, up: int, floor: int, prefix: tuple):
        if low == 0:
            return 0
        if up == mask:
            yield prefix
            return mask
        level = min(mgr._top_level(low, floor), mgr._top_level(up, floor))
        low0 = mgr._cofactor_bits(low, level, 0)
        low1 = mgr._cofactor_bits(low, level, 1)
        up0 = mgr._cofactor_bits(up, level, 0)
        up1 = mgr._cofactor_bits(up, level, 1)
        nxt = level + 1
        f0 = yield from rec(
            low0 & ~up1 & mask, up0, nxt, prefix + ((level, False),)
        )
        f1 = yield from rec(
            low1 & ~up0 & mask, up1, nxt, prefix + ((level, True),)
        )
        fd = yield from rec((low0 & ~f0) | (low1 & ~f1), up0 & up1, nxt, prefix)
        var = mgr._var_bits[level]
        return ((~var & (f0 | fd)) | (var & (f1 | fd))) & mask

    def run():
        yield from rec(lower & mask, upper & mask, 0, ())

    return run()


def function_from_bdd(function, target: BitsetBDD) -> BitsetFunction:
    """Tabulate a BDD function densely inside ``target`` (match by name).

    The direct counterpart of a serializer dump+load round trip —
    semantically identical, but a single iterative post-order walk with
    no intermediate payload.  Extra variables in ``target`` are simply
    unused (the projection masks encode positions, so independence
    duplicates automatically).
    """
    from repro.bdd.ops import level_map_by_name

    src = function.mgr
    level_map = level_map_by_name(src.var_names, target)
    # The walk reads *source levels*; route the declaration-indexed map
    # through the source's current order (a reordered BDD is fine here —
    # the per-node mask combination needs no monotonicity).
    level_map = [level_map[var] for var in src._level_var]
    mask = target._mask
    var_bits, nvar_bits = target._var_bits, target._nvar_bits
    src_level, src_low, src_high = src._level, src._low, src._high
    #: node index -> dense table of the *plain* (uncomplemented) function.
    copied: dict[int, int] = {0: 0}
    stack: list[tuple[int, bool]] = [(function.node >> 1, False)]
    while stack:
        index, expanded = stack.pop()
        if index in copied:
            continue
        low, high = src_low[index], src_high[index]
        if expanded:
            low_bits = copied[low >> 1] ^ (mask if low & 1 else 0)
            high_bits = copied[high >> 1] ^ (mask if high & 1 else 0)
            level = level_map[src_level[index]]
            copied[index] = (nvar_bits[level] & low_bits) | (
                var_bits[level] & high_bits
            )
        else:
            stack.append((index, True))
            stack.append((high >> 1, False))
            stack.append((low >> 1, False))
    bits = copied[function.node >> 1] ^ (mask if function.node & 1 else 0)
    return target._make(bits)


def function_to_bdd(function: BitsetFunction, target):
    """Rebuild a dense function as a BDD in ``target`` (match by name).

    Shannon recursion over narrowing sub-tables with memoization — the
    direct counterpart of a serializer round trip, minus the payload.
    """
    from repro.bdd.ops import level_map_by_name

    src = function.mgr
    level_map = level_map_by_name(src.var_names, target)
    # A reordered BDD target breaks the monotonicity the bottom-up
    # ``_mk`` rebuild relies on; fall back to a semantic ``ite`` build.
    structural = all(a < b for a, b in zip(level_map, level_map[1:]))
    n = src._n
    cache: dict[tuple[int, int], int] = {}

    def rec(level: int, bits: int, width: int) -> int:
        if bits == 0:
            return 0
        if bits == (1 << width) - 1:
            return 1
        key = (level, bits)
        cached = cache.get(key)
        if cached is not None:
            return cached
        half = width >> 1
        low = rec(level + 1, bits & ((1 << half) - 1), half)
        high = rec(level + 1, bits >> half, half)
        if structural:
            edge = target._mk(level_map[level], low, high)
        else:
            edge = target._ite(target._mk(level_map[level], 0, 1), high, low)
        cache[key] = edge
        return edge

    return target._wrap(rec(0, function._aligned_bits(), 1 << n))


def from_truthtable(mgr: BitsetBDD, table) -> BitsetFunction:
    """Wrap a :class:`~repro.boolfunc.truthtable.TruthTable` (same arity)."""
    if mgr.n_vars != table.n_vars:
        raise ValueError(
            f"manager has {mgr.n_vars} variables, table has {table.n_vars}"
        )
    return BitsetFunction(mgr, table.bits)


def to_truthtable(function: BitsetFunction):
    """Extract the packed table of a bitset function."""
    from repro.boolfunc.truthtable import TruthTable

    return TruthTable(function.mgr.n_vars, function._aligned_bits())


__all__ = [
    "MAX_BITSET_VARS",
    "BitsetBDD",
    "BitsetFunction",
    "dense_dump_nodes",
    "from_truthtable",
    "isop_dense",
    "isop_stream_dense",
    "to_truthtable",
]
