"""Function-representation backends behind one protocol.

See :mod:`repro.backend.protocol` for the protocol and the dispatch
policy, :mod:`repro.backend.bitset` for the dense truth-table backend.
Cross-backend conversion rides on the canonical serializer
(:mod:`repro.bdd.serialize`), which reads and writes both
representations with byte-identical payloads.
"""

from repro.backend.bitset import (
    MAX_BITSET_VARS,
    BitsetBDD,
    BitsetFunction,
    from_truthtable,
    to_truthtable,
)
from repro.backend.protocol import (
    BACKENDS,
    DEFAULT_BITSET_MAX_VARS,
    DEFAULT_BITSET_SUPPORT,
    BooleanFunction,
    BooleanManager,
    backend_of,
    choose_backend,
    support_size,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BITSET_MAX_VARS",
    "DEFAULT_BITSET_SUPPORT",
    "MAX_BITSET_VARS",
    "BitsetBDD",
    "BitsetFunction",
    "BooleanFunction",
    "BooleanManager",
    "backend_of",
    "choose_backend",
    "from_truthtable",
    "support_size",
    "to_truthtable",
]
