"""Backend-neutral protocol for Boolean function representations.

The decomposition stack (Table II quotients, operator algebra,
flexibility analysis, approximators, minimizers) manipulates functions
through a small structural interface: Boolean connectives with operator
overloading, set-ordering comparisons, evaluation, counting, cofactors
and quantifiers, plus a manager offering constants, variables, cubes,
minterms and shared memo tables.  Two backends implement it:

* :class:`~repro.bdd.manager.BDD` / :class:`~repro.bdd.manager.Function`
  — reduced ordered BDDs with complemented edges (scales with function
  structure; the only choice for wide-support functions);
* :class:`~repro.backend.bitset.BitsetBDD` /
  :class:`~repro.backend.bitset.BitsetFunction` — packed-integer dense
  truth tables (an order of magnitude faster on small-support
  functions).

This module declares the two classes of each role as virtual subclasses
of :class:`BooleanFunction` / :class:`BooleanManager`, so layers that
need a nominal check (``isinstance``) stay backend-agnostic, and hosts
the dispatch policy helpers the engine uses to pick a backend per
request.
"""

from __future__ import annotations

from abc import ABC

from repro.backend.bitset import MAX_BITSET_VARS, BitsetBDD, BitsetFunction
from repro.backend.calibration import support_boundary
from repro.bdd.manager import BDD, Function

#: Names accepted wherever a backend is selected.
BACKENDS = ("auto", "bdd", "bitset")

#: Default ``backend="auto"`` support threshold: at or below this many
#: support variables the dense table measured faster on every suite
#: benchmark.  Derived from the committed calibration rows
#: (:mod:`repro.backend.calibration`) rather than hard-coded, so the
#: shipped default tracks the evidence.
DEFAULT_BITSET_SUPPORT = support_boundary()

#: ``auto`` never picks the bitset backend above this many *declared*
#: variables, regardless of support — the dense table is over the full
#: declared space, so feasibility is bounded by the declaration.
DEFAULT_BITSET_MAX_VARS = 20


class BooleanFunction(ABC):
    """Structural protocol both backend function types satisfy."""


class BooleanManager(ABC):
    """Structural protocol both backend manager types satisfy."""


BooleanFunction.register(Function)
BooleanFunction.register(BitsetFunction)
BooleanManager.register(BDD)
BooleanManager.register(BitsetBDD)


def backend_of(obj) -> str:
    """Backend name (``"bdd"`` or ``"bitset"``) of a manager or function."""
    mgr = getattr(obj, "mgr", obj)
    if isinstance(mgr, BitsetBDD):
        return "bitset"
    if isinstance(mgr, BDD):
        return "bdd"
    raise TypeError(f"not a backend manager or function: {obj!r}")


def support_size(isf) -> int:
    """Number of variables an ISF's on/dc pair actually depends on."""
    return len(set(isf.on.support()) | set(isf.dc.support()))


def choose_backend(
    isf,
    spec: str = "auto",
    support_threshold: int = DEFAULT_BITSET_SUPPORT,
    max_vars: int = DEFAULT_BITSET_MAX_VARS,
) -> str:
    """Resolve a backend spec against one request's function.

    ``spec`` is ``"bdd"``, ``"bitset"``, or ``"auto"``; auto picks the
    bitset backend exactly when the declared space is densely feasible
    (``n_vars <= max_vars``) and the function's support is at most
    ``support_threshold``.  An explicit ``"bitset"`` request is honored
    whenever a dense table is representable at all
    (``n_vars <= MAX_BITSET_VARS``), and rejected otherwise.
    """
    if spec not in BACKENDS:
        raise ValueError(f"unknown backend {spec!r}; choose from {BACKENDS}")
    if spec == "bdd":
        return "bdd"
    n_vars = isf.mgr.n_vars
    if spec == "bitset":
        if n_vars > MAX_BITSET_VARS:
            raise ValueError(
                f"backend='bitset' needs <= {MAX_BITSET_VARS} declared"
                f" variables, got {n_vars}"
            )
        return "bitset"
    if n_vars <= max_vars and support_size(isf) <= support_threshold:
        return "bitset"
    return "bdd"


__all__ = [
    "BACKENDS",
    "DEFAULT_BITSET_MAX_VARS",
    "DEFAULT_BITSET_SUPPORT",
    "BooleanFunction",
    "BooleanManager",
    "backend_of",
    "choose_backend",
    "support_size",
]
