"""repro — reproduction of *Computing the full quotient in
bi-decomposition by approximation* (Bernasconi, Ciriani, Cortadella,
Villa — DATE 2020).

The library bi-decomposes a Boolean function ``f`` as ``f = g op h``
where the divisor ``g`` is an *approximation* of ``f`` and the quotient
``h`` is computed with its **full flexibility** (smallest on-set,
largest dc-set — paper Table II).  Everything the flow needs is
implemented here from scratch: a BDD engine, cube/cover algebra and PLA
I/O, exact and heuristic two-level minimization, 2-SPP (XOR-AND-OR)
synthesis, expansion-based approximation, a genlib technology mapper,
and the paper's benchmark suite and experiment harness.

The primary entry point is the strategy-driven engine::

    from repro import BDD, ISF, Decomposer, parse_expression

    mgr = BDD(["x1", "x2", "x3", "x4"])
    f = ISF.completely_specified(
        parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    )
    engine = Decomposer(approximator="expand-full", minimizer="spp")
    result = engine.decompose(f, op="auto")   # searches all 10 operators
    assert result.verified
    print(result.op_name, result.literal_cost, result.timings["total"])

    # Batches share one BDD manager and memoize sub-results; jobs=N runs
    # them on a worker pool and cache=<dir> persists results on disk:
    results = engine.decompose_many([("f", f)], op="AND", jobs=2,
                                    cache=".decompose-cache")

The classic one-shot driver remains available::

    from repro import bidecompose, approximate_expand_full

    approx = approximate_expand_full(f)
    dec = bidecompose(f, "AND", approx.g)
    assert dec.verify()
"""

from repro.approx import (
    approximate_expand_bounded,
    approximate_expand_full,
    approximation_for_operator,
    error_rate,
)
from repro.backend import (
    BitsetBDD,
    BitsetFunction,
    BooleanFunction,
    BooleanManager,
    choose_backend,
)
from repro.bdd import BDD, Function, isop, parse_expression, transfer
from repro.bdd.ops import isop_cubes
from repro.boolfunc import ISF, TruthTable
from repro.core import (
    OPERATORS,
    BiDecomposition,
    apply_operator,
    bidecompose,
    full_quotient,
    is_full_quotient,
    is_valid_quotient,
    operator_by_name,
    semantic_full_quotient,
    validate_divisor,
)
from repro.cover import PLA, Cover, Cube, parse_pla, write_pla
from repro.engine import (
    APPROXIMATORS,
    MINIMIZERS,
    Decomposer,
    DecomposeRequest,
    DecomposeResult,
    Divisor,
    ResultCache,
    register_approximator,
    register_minimizer,
)
from repro.netsyn import (
    DivisorPool,
    NetsynConfig,
    NetworkSynthesisResult,
    NetworkSynthesizer,
)
from repro.spp import Pseudocube, SppCover, minimize_spp
from repro.twolevel import espresso_minimize, minimize_exact

__version__ = "1.1.0"

__all__ = [
    "APPROXIMATORS",
    "BDD",
    "BiDecomposition",
    "BitsetBDD",
    "BitsetFunction",
    "BooleanFunction",
    "BooleanManager",
    "Cover",
    "Cube",
    "Decomposer",
    "DecomposeRequest",
    "DecomposeResult",
    "Divisor",
    "DivisorPool",
    "Function",
    "ISF",
    "MINIMIZERS",
    "NetsynConfig",
    "NetworkSynthesisResult",
    "NetworkSynthesizer",
    "OPERATORS",
    "PLA",
    "Pseudocube",
    "ResultCache",
    "SppCover",
    "TruthTable",
    "__version__",
    "apply_operator",
    "approximate_expand_bounded",
    "approximate_expand_full",
    "approximation_for_operator",
    "bidecompose",
    "choose_backend",
    "error_rate",
    "espresso_minimize",
    "full_quotient",
    "is_full_quotient",
    "is_valid_quotient",
    "isop",
    "isop_cubes",
    "minimize_exact",
    "minimize_spp",
    "operator_by_name",
    "parse_expression",
    "parse_pla",
    "register_approximator",
    "register_minimizer",
    "semantic_full_quotient",
    "transfer",
    "validate_divisor",
    "write_pla",
]
