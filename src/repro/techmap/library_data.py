"""Embedded gate library in genlib format.

The gate set mirrors the classic ``mcnc.genlib`` shipped with SIS
(inverter, NAND/NOR ladders, AND/OR, XOR/XNOR, AOI/OAI cells).  Areas
are on a normalized scale — roughly "grid units" with an inverter at 1 —
chosen so that mapped areas of the benchmark suite land in the same
numeric range as the paper's tables.  Since the experiment harness only
compares areas of different realizations of the *same* function under
the *same* library, only relative areas matter for the reproduced gains.
"""

from repro.techmap.genlib import GateLibrary, parse_genlib

MCNC_LIKE_GENLIB = """
# mcnc-style library, normalized areas (inv = 1)
GATE inv1    1.0  O=!a;            PIN a INV 1 999 0.9 0.3 0.9 0.3
GATE nand2   2.0  O=!(a*b);        PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE nand3   3.0  O=!(a*b*c);      PIN * INV 1 999 1.1 0.3 1.1 0.3
GATE nand4   4.0  O=!(a*b*c*d);    PIN * INV 1 999 1.2 0.3 1.2 0.3
GATE nor2    2.0  O=!(a+b);        PIN * INV 1 999 1.4 0.5 1.4 0.5
GATE nor3    3.0  O=!(a+b+c);      PIN * INV 1 999 2.4 0.7 2.4 0.7
GATE nor4    4.0  O=!(a+b+c+d);    PIN * INV 1 999 3.8 1.0 3.8 1.0
GATE and2    3.0  O=a*b;           PIN * NONINV 1 999 1.9 0.3 1.9 0.3
GATE and3    4.0  O=a*b*c;         PIN * NONINV 1 999 2.0 0.3 2.0 0.3
GATE and4    5.0  O=a*b*c*d;       PIN * NONINV 1 999 2.2 0.3 2.2 0.3
GATE or2     3.0  O=a+b;           PIN * NONINV 1 999 2.4 0.3 2.4 0.3
GATE or3     4.0  O=a+b+c;         PIN * NONINV 1 999 2.7 0.3 2.7 0.3
GATE or4     5.0  O=a+b+c+d;       PIN * NONINV 1 999 3.0 0.3 3.0 0.3
GATE xor2    5.0  O=a^b;           PIN * UNKNOWN 2 999 1.9 0.5 1.9 0.5
GATE xnor2   5.0  O=!(a^b);        PIN * UNKNOWN 2 999 2.1 0.5 2.1 0.5
GATE aoi21   3.0  O=!(a*b+c);      PIN * INV 1 999 1.6 0.4 1.6 0.4
GATE aoi22   4.0  O=!(a*b+c*d);    PIN * INV 1 999 2.0 0.4 2.0 0.4
GATE oai21   3.0  O=!((a+b)*c);    PIN * INV 1 999 1.6 0.4 1.6 0.4
GATE oai22   4.0  O=!((a+b)*(c+d)); PIN * INV 1 999 2.0 0.4 2.0 0.4
GATE buf     2.0  O=a;             PIN a NONINV 1 999 1.0 0.3 1.0 0.3
GATE zero    0.0  O=CONST0;
GATE one     0.0  O=CONST1;
"""

_DEFAULT: GateLibrary | None = None


def default_library() -> GateLibrary:
    """The embedded mcnc-style library (parsed once and cached)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = parse_genlib(MCNC_LIKE_GENLIB)
    return _DEFAULT
