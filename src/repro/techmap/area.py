"""Area estimation entry points used by the experiment harness."""

from __future__ import annotations

from repro.core.operators import BinaryOperator, operator_by_name
from repro.cover.cover import Cover
from repro.spp.spp_cover import SppCover
from repro.techmap.genlib import GateLibrary
from repro.techmap.library_data import default_library
from repro.techmap.mapper import MappingResult, map_network_for_area
from repro.techmap.network import LogicNetwork


def map_network(
    network: LogicNetwork, library: GateLibrary | None = None
) -> MappingResult:
    """Map a network with the default (mcnc-style) library."""
    return map_network_for_area(network, library or default_library())


def area_of_spp_covers(
    covers: list[SppCover],
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of the multi-output XOR-AND-OR network of 2-SPP forms."""
    network = LogicNetwork(input_names)
    for index, cover in enumerate(covers):
        network.add_spp_cover(cover, f"f{index}")
    return map_network(network, library).area


def area_of_covers(
    covers: list[Cover],
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of the multi-output AND-OR network of SOP covers."""
    network = LogicNetwork(input_names)
    for index, cover in enumerate(covers):
        network.add_cover(cover, f"f{index}")
    return map_network(network, library).area


def area_of_bidecomposition(
    pairs: list[tuple[SppCover, SppCover]],
    op: BinaryOperator | str,
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of a multi-output bi-decomposed network.

    ``pairs`` holds per-output ``(g_cover, h_cover)``; each output is the
    operator applied to the two 2-SPP sub-networks (Section IV-B step 4:
    "the bi-decomposition of f is computed as AND (resp. 6⇒) of the two
    2-SPP forms for g and h").
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    network = LogicNetwork(input_names)
    for index, (g_cover, h_cover) in enumerate(pairs):
        g_root = network.add_spp_cover(g_cover, f"_g{index}")
        h_root = network.add_spp_cover(h_cover, f"_h{index}")
        out00, out01, out10, out11 = op.truth_row()
        row = (out00, out01, out10, out11)
        if row == (False, False, False, True):  # AND
            root = network.binary("and", g_root, h_root)
        elif row == (False, False, True, True):  # projection to g (degenerate)
            root = g_root
        elif row == (False, False, True, False):  # g AND NOT h  (6⇒)
            root = network.binary("and", g_root, network.negate(h_root))
        elif row == (False, True, False, False):  # NOT g AND h  (6⇐)
            root = network.binary("and", network.negate(g_root), h_root)
        elif row == (True, False, False, False):  # NOR
            root = network.negate(network.binary("or", g_root, h_root))
        elif row == (False, True, True, True):  # OR
            root = network.binary("or", g_root, h_root)
        elif row == (True, True, False, True):  # IMPLIES: ~g + h
            root = network.binary("or", network.negate(g_root), h_root)
        elif row == (True, False, True, True):  # IMPLIED_BY: g + ~h
            root = network.binary("or", g_root, network.negate(h_root))
        elif row == (True, True, True, False):  # NAND
            root = network.negate(network.binary("and", g_root, h_root))
        elif row == (False, True, True, False):  # XOR
            root = network.binary("xor", g_root, h_root)
        elif row == (True, False, False, True):  # XNOR
            root = network.negate(network.binary("xor", g_root, h_root))
        else:
            raise ValueError(f"unsupported operator row {row}")
        # Replace the helper outputs with the combined one.
        del network.outputs[f"_g{index}"]
        del network.outputs[f"_h{index}"]
        network.set_output(f"f{index}", root)
    return map_network(network, library).area
