"""Area estimation entry points used by the experiment harness."""

from __future__ import annotations

from repro.core.operators import BinaryOperator, operator_by_name
from repro.cover.cover import Cover
from repro.spp.spp_cover import SppCover
from repro.techmap.genlib import GateLibrary
from repro.techmap.library_data import default_library
from repro.techmap.mapper import MappingResult, map_network_for_area
from repro.techmap.network import LogicNetwork


def map_network(
    network: LogicNetwork, library: GateLibrary | None = None
) -> MappingResult:
    """Map a network with the default (mcnc-style) library."""
    return map_network_for_area(network, library or default_library())


def area_of_spp_covers(
    covers: list[SppCover],
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of the multi-output XOR-AND-OR network of 2-SPP forms."""
    network = LogicNetwork(input_names)
    for index, cover in enumerate(covers):
        network.add_spp_cover(cover, f"f{index}")
    return map_network(network, library).area


def area_of_covers(
    covers: list[Cover],
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of the multi-output AND-OR network of SOP covers."""
    network = LogicNetwork(input_names)
    for index, cover in enumerate(covers):
        network.add_cover(cover, f"f{index}")
    return map_network(network, library).area


def area_of_bidecomposition(
    pairs: list[tuple[SppCover, SppCover]],
    op: BinaryOperator | str,
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Mapped area of a multi-output bi-decomposed network.

    ``pairs`` holds per-output ``(g_cover, h_cover)``; each output is the
    operator applied to the two 2-SPP sub-networks (Section IV-B step 4:
    "the bi-decomposition of f is computed as AND (resp. 6⇒) of the two
    2-SPP forms for g and h").
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    network = LogicNetwork(input_names)
    for index, (g_cover, h_cover) in enumerate(pairs):
        g_root = network.spp_cover_root(g_cover)
        h_root = network.spp_cover_root(h_cover)
        root = network.operator_root(op.truth_row(), g_root, h_root)
        network.set_output(f"f{index}", root)
    return map_network(network, library).area


def isolated_area_of_spp_covers(
    covers: list[SppCover],
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Per-output area sum: each 2-SPP cover mapped as its own network.

    The isolated counterpart of :func:`area_of_spp_covers` — gates (and
    input inverters) shared between outputs are counted once *per
    output* here, so ``isolated - shared`` measures the cross-output
    structural sharing the single-network accounting captures.
    """
    return sum(
        area_of_spp_covers([cover], input_names, library) for cover in covers
    )


def isolated_area_of_bidecomposition(
    pairs: list[tuple[SppCover, SppCover]],
    op: BinaryOperator | str,
    input_names: list[str] | tuple[str, ...],
    library: GateLibrary | None = None,
) -> float:
    """Per-output area sum of a bi-decomposed realization (no sharing)."""
    return sum(
        area_of_bidecomposition([pair], op, input_names, library)
        for pair in pairs
    )
