"""Genlib gate-library format parser.

Supports the subset of the SIS genlib format used by area-oriented
mapping: ``GATE <name> <area> <output>=<expression>;`` followed by
optional ``PIN`` lines (parsed and ignored — this reproduction maps for
area, not delay).  Expressions use ``!`` (NOT), ``*`` (AND, also
juxtaposition), ``+`` (OR), ``^`` (XOR), parentheses, and the constants
``CONST0`` / ``CONST1``.

Each gate's function is normalized into a *pattern tree* over binary
AND/OR/XOR and unary NOT with variable leaves; AND/OR chains are
binarized left-deep, matching the shape produced by the network builder
so that tree matching in :mod:`repro.techmap.mapper` lines up.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


# -- pattern trees ---------------------------------------------------------
#
# A pattern is a nested tuple: ("var", name) | ("const", 0 | 1)
# | ("not", child) | ("and" | "or" | "xor", left, right).


def pattern_inputs(pattern: tuple) -> list[str]:
    """Variable names appearing in a pattern, in first-seen order."""
    seen: list[str] = []

    def walk(node: tuple) -> None:
        kind = node[0]
        if kind == "var":
            if node[1] not in seen:
                seen.append(node[1])
        elif kind == "not":
            walk(node[1])
        elif kind in ("and", "or", "xor"):
            walk(node[1])
            walk(node[2])

    walk(pattern)
    return seen


def evaluate_pattern(pattern: tuple, assignment: dict[str, bool]) -> bool:
    """Evaluate a pattern tree on a variable assignment."""
    kind = pattern[0]
    if kind == "var":
        return assignment[pattern[1]]
    if kind == "const":
        return bool(pattern[1])
    if kind == "not":
        return not evaluate_pattern(pattern[1], assignment)
    left = evaluate_pattern(pattern[1], assignment)
    right = evaluate_pattern(pattern[2], assignment)
    if kind == "and":
        return left and right
    if kind == "or":
        return left or right
    if kind == "xor":
        return left != right
    raise ValueError(f"bad pattern node {kind!r}")


@dataclass(frozen=True)
class Gate:
    """A library cell: name, area, and its function as a pattern tree."""

    name: str
    area: float
    output: str
    pattern: tuple

    @property
    def n_inputs(self) -> int:
        """Number of distinct input pins."""
        return len(pattern_inputs(self.pattern))


class GateLibrary:
    """A collection of gates indexed by name."""

    def __init__(self, gates: list[Gate]) -> None:
        self.gates = list(gates)
        self.by_name = {gate.name: gate for gate in gates}
        if len(self.by_name) != len(gates):
            raise ValueError("duplicate gate names in library")

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self):
        return iter(self.gates)

    def __getitem__(self, name: str) -> Gate:
        return self.by_name[name]

    def cheapest(self) -> dict[str, float]:
        """Cheapest area per pattern root kind (diagnostics)."""
        result: dict[str, float] = {}
        for gate in self.gates:
            kind = gate.pattern[0]
            if kind not in result or gate.area < result[kind]:
                result[kind] = gate.area
        return result


class GenlibError(ValueError):
    """Raised for malformed genlib text."""


_GATE_RE = re.compile(
    r"GATE\s+(?P<name>\S+)\s+(?P<area>[\d.]+)\s+(?P<out>\w+)\s*=\s*(?P<expr>[^;]+);"
)

_EXPR_TOKEN_RE = re.compile(r"\s*(CONST0|CONST1|[A-Za-z_][A-Za-z0-9_]*|[!*+^()])")


def _tokenize_expr(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _EXPR_TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip():
                raise GenlibError(f"bad expression character at {text[position:]!r}")
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _ExprParser:
    """Recursive-descent parser for genlib expressions (OR < XOR < AND < NOT)."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise GenlibError("unexpected end of expression")
        self.position += 1
        return token

    def parse_or(self) -> tuple:
        left = self.parse_xor()
        while self.peek() == "+":
            self.take()
            left = ("or", left, self.parse_xor())
        return left

    def parse_xor(self) -> tuple:
        left = self.parse_and()
        while self.peek() == "^":
            self.take()
            left = ("xor", left, self.parse_and())
        return left

    def parse_and(self) -> tuple:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token == "*":
                self.take()
                left = ("and", left, self.parse_unary())
            elif token is not None and (token[0].isalpha() or token in ("(", "!")):
                left = ("and", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> tuple:
        token = self.peek()
        if token == "!":
            self.take()
            return ("not", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> tuple:
        token = self.take()
        if token == "(":
            inner = self.parse_or()
            if self.take() != ")":
                raise GenlibError("missing closing parenthesis")
            return inner
        if token == "CONST0":
            return ("const", 0)
        if token == "CONST1":
            return ("const", 1)
        if token[0].isalpha() or token[0] == "_":
            return ("var", token)
        raise GenlibError(f"unexpected token {token!r}")


def parse_expression_tree(text: str) -> tuple:
    """Parse a genlib expression into a pattern tree."""
    parser = _ExprParser(_tokenize_expr(text))
    result = parser.parse_or()
    if parser.peek() is not None:
        raise GenlibError(f"trailing tokens at {parser.peek()!r}")
    return result


def parse_genlib(text: str) -> GateLibrary:
    """Parse genlib text into a :class:`GateLibrary`."""
    gates = []
    for match in _GATE_RE.finditer(text):
        pattern = parse_expression_tree(match.group("expr"))
        gates.append(
            Gate(
                name=match.group("name"),
                area=float(match.group("area")),
                output=match.group("out"),
                pattern=pattern,
            )
        )
    if not gates:
        raise GenlibError("no GATE definitions found")
    return GateLibrary(gates)
