"""Dynamic-programming tree-covering technology mapper (area-oriented).

The network DAG is partitioned into maximal fanout-free cones (every
multi-fanout node and every primary output is a cone root).  Within each
cone, the classic tree-covering recurrence applies: the best cost at a
node is the minimum over library gates whose pattern tree matches the
local structure, of the gate area plus the best costs of the subtrees at
the pattern leaves.  Matching handles commutativity of AND/OR/XOR by
trying both operand orders.

The mapper is area-only (the paper's comparison metric) and returns both
the total area and the chosen cover for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.techmap.genlib import Gate, GateLibrary
from repro.techmap.network import LogicNetwork


@dataclass
class MappedGate:
    """One chosen library cell: gate, root node id, leaf node ids."""

    gate: Gate
    root: int
    leaves: tuple[int, ...]


@dataclass
class MappingResult:
    """Outcome of mapping a network onto a library."""

    area: float
    gates: list[MappedGate]

    def gate_histogram(self) -> dict[str, int]:
        """Count of instances per cell name."""
        histogram: dict[str, int] = {}
        for mapped in self.gates:
            histogram[mapped.gate.name] = histogram.get(mapped.gate.name, 0) + 1
        return histogram


class MappingError(RuntimeError):
    """No library pattern matches a network node (incomplete library)."""


def _match(
    network: LogicNetwork,
    pattern: tuple,
    node_id: int,
    is_root: bool,
    roots: set[int],
    bindings: list[int],
) -> list[list[int]]:
    """All ways to match ``pattern`` at ``node_id``.

    Returns a list of leaf-binding lists (node ids where pattern
    variables attach).  Internal pattern nodes must not cross cone
    boundaries (non-root multi-fanout nodes).
    """
    kind = pattern[0]
    if kind == "var":
        return [bindings + [node_id]]
    node = network.nodes[node_id]
    if not is_root and node_id in roots:
        return []  # crossing into another cone
    if kind == "const":
        expected = "const1" if pattern[1] else "const0"
        return [bindings] if node.kind == expected else []
    if kind == "not":
        if node.kind != "not":
            return []
        return _match(network, pattern[1], node.fanins[0], False, roots, bindings)
    if kind in ("and", "or", "xor"):
        if node.kind != kind:
            return []
        left_id, right_id = node.fanins
        results = []
        for first, second in ((left_id, right_id), (right_id, left_id)):
            for partial in _match(network, pattern[1], first, False, roots, bindings):
                results.extend(
                    _match(network, pattern[2], second, False, roots, partial)
                )
            if left_id == right_id:
                break  # symmetric operands: avoid duplicate matches
        return results
    raise ValueError(f"bad pattern node {kind!r}")


def map_network_for_area(
    network: LogicNetwork, library: GateLibrary
) -> MappingResult:
    """Map a network onto the library, minimizing total area."""
    fanouts = network.fanout_counts()
    roots = {
        node_id
        for node_id, node in enumerate(network.nodes)
        if node.kind not in ("input",) and fanouts[node_id] > 1
    }
    roots |= set(network.outputs.values())

    best_cost: dict[int, float] = {}
    best_choice: dict[int, MappedGate | None] = {}

    def cost_of_leaf(node_id: int) -> float:
        node = network.nodes[node_id]
        if node.kind == "input":
            return 0.0
        return solve(node_id)

    def solve(node_id: int) -> float:
        cached = best_cost.get(node_id)
        if cached is not None:
            return cached
        node = network.nodes[node_id]
        if node.kind == "input":
            best_cost[node_id] = 0.0
            best_choice[node_id] = None
            return 0.0
        best = float("inf")
        chosen: MappedGate | None = None
        for gate in library:
            if gate.pattern[0] == "var":
                continue  # buffers match anything and add no logic
            for leaves in _match(network, gate.pattern, node_id, True, roots, []):
                cost = gate.area + sum(cost_of_leaf(leaf) for leaf in leaves)
                if cost < best:
                    best = cost
                    chosen = MappedGate(gate, node_id, tuple(leaves))
        if chosen is None:
            raise MappingError(
                f"no library gate matches node {node_id} ({node.kind})"
            )
        best_cost[node_id] = best
        best_choice[node_id] = chosen
        return best

    # Total area: each cone root is mapped once; leaf costs below other
    # roots are counted at those roots, so sum roots' *local* gate areas.
    total = 0.0
    gates: list[MappedGate] = []
    visited: set[int] = set()

    def collect(node_id: int) -> None:
        nonlocal total
        if node_id in visited:
            return
        visited.add(node_id)
        node = network.nodes[node_id]
        if node.kind == "input":
            return
        solve(node_id)
        choice = best_choice[node_id]
        stack = [choice]
        while stack:
            mapped = stack.pop()
            if mapped is None:
                continue
            total += mapped.gate.area
            gates.append(mapped)
            for leaf in mapped.leaves:
                leaf_node = network.nodes[leaf]
                if leaf_node.kind == "input":
                    continue
                if leaf in roots:
                    collect(leaf)
                else:
                    stack.append(best_choice.get(leaf) or _solve_into(leaf))

    def _solve_into(node_id: int) -> MappedGate | None:
        solve(node_id)
        return best_choice[node_id]

    for output_root in set(network.outputs.values()):
        collect(output_root)
    return MappingResult(area=total, gates=gates)
