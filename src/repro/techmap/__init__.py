"""Technology mapping for area estimation.

Replaces the paper's ``SIS`` + ``mcnc.genlib`` area flow: a genlib parser
(:mod:`~repro.techmap.genlib`), an embedded mcnc-style gate library
(:mod:`~repro.techmap.library_data`), a multi-level logic network built
from SOP/2-SPP forms (:mod:`~repro.techmap.network`), and a dynamic
programming tree-covering mapper (:mod:`~repro.techmap.mapper`).

Absolute areas are on our library's scale; the harness reports *gains*
(area ratios), which is what the paper's conclusions rest on.
"""

from repro.techmap.area import (
    area_of_bidecomposition,
    area_of_covers,
    area_of_spp_covers,
    map_network,
)
from repro.techmap.genlib import Gate, GateLibrary, parse_genlib
from repro.techmap.library_data import MCNC_LIKE_GENLIB, default_library
from repro.techmap.network import LogicNetwork

__all__ = [
    "Gate",
    "GateLibrary",
    "LogicNetwork",
    "MCNC_LIKE_GENLIB",
    "area_of_bidecomposition",
    "area_of_covers",
    "area_of_spp_covers",
    "default_library",
    "map_network",
    "parse_genlib",
]
