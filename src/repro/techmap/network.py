"""Multi-level logic networks built from two-level and 2-SPP forms.

A :class:`LogicNetwork` is a DAG of primitive nodes (``input``,
``const0``, ``const1``, ``not``, and binary ``and``/``or``/``xor``).
Builders construct the natural circuit of an SOP (AND-OR with input
inverters) or of a 2-SPP form (XOR-AND-OR), with wide gates binarized
into *left-deep* chains — the same shape the genlib pattern trees use,
so the tree mapper can recognize multi-input cells (nand3, aoi21, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cover.cover import Cover
from repro.spp.spp_cover import SppCover
from repro.utils.bitops import bit_indices


@dataclass(frozen=True)
class Node:
    """A primitive network node; ``fanins`` are node ids."""

    kind: str
    fanins: tuple[int, ...] = ()
    name: str = ""


class LogicNetwork:
    """A DAG of primitive logic nodes with named primary outputs.

    Structural hashing keeps the DAG non-redundant: building the same
    (kind, fanins) node twice returns the same id, so shared input
    inverters and repeated factors are represented once.
    """

    def __init__(self, input_names: list[str] | tuple[str, ...]) -> None:
        self.nodes: list[Node] = []
        self.outputs: dict[str, int] = {}
        self._hash: dict[tuple, int] = {}
        self._inputs: dict[str, int] = {}
        for name in input_names:
            node_id = self._add(Node("input", (), name))
            self._inputs[name] = node_id

    # -- construction ------------------------------------------------------
    def _add(self, node: Node) -> int:
        key = (node.kind, node.fanins, node.name)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(node)
        self._hash[key] = node_id
        return node_id

    def input_id(self, name: str) -> int:
        """Node id of a primary input."""
        return self._inputs[name]

    def const(self, value: int | bool) -> int:
        """Constant node."""
        return self._add(Node("const1" if value else "const0"))

    def negate(self, node_id: int) -> int:
        """NOT node, collapsing double negation."""
        node = self.nodes[node_id]
        if node.kind == "not":
            return node.fanins[0]
        if node.kind == "const0":
            return self.const(1)
        if node.kind == "const1":
            return self.const(0)
        return self._add(Node("not", (node_id,)))

    def binary(self, kind: str, left: int, right: int) -> int:
        """Binary ``and``/``or``/``xor`` node with trivial simplifications."""
        if kind not in ("and", "or", "xor"):
            raise ValueError(f"bad binary kind {kind!r}")
        left_kind = self.nodes[left].kind
        right_kind = self.nodes[right].kind
        if kind == "and":
            if left_kind == "const0" or right_kind == "const0":
                return self.const(0)
            if left_kind == "const1":
                return right
            if right_kind == "const1":
                return left
        elif kind == "or":
            if left_kind == "const1" or right_kind == "const1":
                return self.const(1)
            if left_kind == "const0":
                return right
            if right_kind == "const0":
                return left
        else:
            if left_kind == "const0":
                return right
            if right_kind == "const0":
                return left
            if left_kind == "const1":
                return self.negate(right)
            if right_kind == "const1":
                return self.negate(left)
        return self._add(Node(kind, (left, right)))

    def chain(self, kind: str, operands: list[int]) -> int:
        """Left-deep chain of a wide AND/OR/XOR."""
        if not operands:
            return self.const(1 if kind == "and" else 0)
        result = operands[0]
        for operand in operands[1:]:
            result = self.binary(kind, result, operand)
        return result

    def set_output(self, name: str, node_id: int) -> None:
        """Declare a primary output."""
        self.outputs[name] = node_id

    # -- builders -----------------------------------------------------------
    def add_cover(self, cover: Cover, output_name: str) -> int:
        """Add the AND-OR circuit of an SOP cover; returns the root id."""
        names = list(self._inputs)
        products = []
        for cube in cover.cubes:
            literals = []
            for var in bit_indices(cube.pos):
                literals.append(self.input_id(names[var]))
            for var in bit_indices(cube.neg):
                literals.append(self.negate(self.input_id(names[var])))
            products.append(self.chain("and", literals))
        root = self.chain("or", products)
        self.set_output(output_name, root)
        return root

    def add_spp_cover(self, cover: SppCover, output_name: str) -> int:
        """Add the XOR-AND-OR circuit of a 2-SPP cover; returns the root id."""
        names = list(self._inputs)
        products = []
        for pc in cover.pseudocubes:
            factors = []
            for var in bit_indices(pc.pos):
                factors.append(self.input_id(names[var]))
            for var in bit_indices(pc.neg):
                factors.append(self.negate(self.input_id(names[var])))
            for xor in sorted(pc.xors):
                gate = self.binary(
                    "xor", self.input_id(names[xor.i]), self.input_id(names[xor.j])
                )
                factors.append(gate if xor.phase else self.negate(gate))
            products.append(self.chain("and", factors))
        root = self.chain("or", products)
        self.set_output(output_name, root)
        return root

    # -- analysis -------------------------------------------------------------
    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Evaluate all outputs on an input assignment."""
        values: list[bool | None] = [None] * len(self.nodes)
        for node_id, node in enumerate(self.nodes):
            if node.kind == "input":
                values[node_id] = bool(assignment[node.name])
            elif node.kind == "const0":
                values[node_id] = False
            elif node.kind == "const1":
                values[node_id] = True
            elif node.kind == "not":
                values[node_id] = not values[node.fanins[0]]
            elif node.kind == "and":
                values[node_id] = values[node.fanins[0]] and values[node.fanins[1]]
            elif node.kind == "or":
                values[node_id] = values[node.fanins[0]] or values[node.fanins[1]]
            elif node.kind == "xor":
                values[node_id] = values[node.fanins[0]] != values[node.fanins[1]]
            else:
                raise ValueError(f"bad node kind {node.kind!r}")
        return {name: bool(values[node_id]) for name, node_id in self.outputs.items()}

    def fanout_counts(self) -> list[int]:
        """Fanout count per node (outputs add one reference each)."""
        counts = [0] * len(self.nodes)
        for node in self.nodes:
            for fanin in node.fanins:
                counts[fanin] += 1
        for node_id in self.outputs.values():
            counts[node_id] += 1
        return counts

    def gate_count(self) -> int:
        """Number of non-input, non-constant nodes."""
        return sum(
            1
            for node in self.nodes
            if node.kind not in ("input", "const0", "const1")
        )
