"""Multi-level logic networks built from two-level and 2-SPP forms.

A :class:`LogicNetwork` is a DAG of primitive nodes (``input``,
``const0``, ``const1``, ``not``, and binary ``and``/``or``/``xor``).
Builders construct the natural circuit of an SOP (AND-OR with input
inverters) or of a 2-SPP form (XOR-AND-OR), with wide gates binarized
into *left-deep* chains — the same shape the genlib pattern trees use,
so the tree mapper can recognize multi-input cells (nand3, aoi21, ...).

Construction is *strashed*: structural hashing with commutative operand
normalization plus local constant/complement folding keeps the DAG
non-redundant, so a gate built twice — by different outputs of a
multi-output network, or in either operand order — materializes exactly
once and :meth:`LogicNetwork.gate_count` / the area mapper count shared
logic once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cover.cover import Cover
from repro.spp.spp_cover import SppCover
from repro.utils.bitops import bit_indices


@dataclass(frozen=True)
class Node:
    """A primitive network node; ``fanins`` are node ids."""

    kind: str
    fanins: tuple[int, ...] = ()
    name: str = ""


class LogicNetwork:
    """A DAG of primitive logic nodes with named primary outputs.

    Structural hashing keeps the DAG non-redundant: building the same
    (kind, fanins) node twice returns the same id, so shared input
    inverters and repeated factors are represented once.
    """

    def __init__(self, input_names: list[str] | tuple[str, ...]) -> None:
        self.nodes: list[Node] = []
        self.outputs: dict[str, int] = {}
        self._hash: dict[tuple, int] = {}
        self._inputs: dict[str, int] = {}
        for name in input_names:
            node_id = self._add(Node("input", (), name))
            self._inputs[name] = node_id

    # -- construction ------------------------------------------------------
    def _add(self, node: Node) -> int:
        key = (node.kind, node.fanins, node.name)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(node)
        self._hash[key] = node_id
        return node_id

    def input_id(self, name: str) -> int:
        """Node id of a primary input."""
        return self._inputs[name]

    def const(self, value: int | bool) -> int:
        """Constant node."""
        return self._add(Node("const1" if value else "const0"))

    def negate(self, node_id: int) -> int:
        """NOT node, collapsing double negation."""
        node = self.nodes[node_id]
        if node.kind == "not":
            return node.fanins[0]
        if node.kind == "const0":
            return self.const(1)
        if node.kind == "const1":
            return self.const(0)
        return self._add(Node("not", (node_id,)))

    def _complementary(self, left: int, right: int) -> bool:
        """True iff one operand is the NOT of the other."""
        left_node = self.nodes[left]
        right_node = self.nodes[right]
        return (left_node.kind == "not" and left_node.fanins[0] == right) or (
            right_node.kind == "not" and right_node.fanins[0] == left
        )

    def binary(self, kind: str, left: int, right: int) -> int:
        """Binary ``and``/``or``/``xor`` node with local folding.

        Constants, repeated operands (``x op x``), and complementary
        operands (``x op ~x``) fold away; the surviving node is hashed
        with its operands in sorted order, so both operand orders of
        these commutative gates share one node.
        """
        if kind not in ("and", "or", "xor"):
            raise ValueError(f"bad binary kind {kind!r}")
        left_kind = self.nodes[left].kind
        right_kind = self.nodes[right].kind
        if kind == "and":
            if left_kind == "const0" or right_kind == "const0":
                return self.const(0)
            if left_kind == "const1":
                return right
            if right_kind == "const1":
                return left
            if left == right:
                return left
            if self._complementary(left, right):
                return self.const(0)
        elif kind == "or":
            if left_kind == "const1" or right_kind == "const1":
                return self.const(1)
            if left_kind == "const0":
                return right
            if right_kind == "const0":
                return left
            if left == right:
                return left
            if self._complementary(left, right):
                return self.const(1)
        else:
            if left_kind == "const0":
                return right
            if right_kind == "const0":
                return left
            if left_kind == "const1":
                return self.negate(right)
            if right_kind == "const1":
                return self.negate(left)
            if left == right:
                return self.const(0)
            if self._complementary(left, right):
                return self.const(1)
        if left > right:
            left, right = right, left
        return self._add(Node(kind, (left, right)))

    def chain(self, kind: str, operands: list[int]) -> int:
        """Left-deep chain of a wide AND/OR/XOR."""
        if not operands:
            return self.const(1 if kind == "and" else 0)
        result = operands[0]
        for operand in operands[1:]:
            result = self.binary(kind, result, operand)
        return result

    def set_output(self, name: str, node_id: int) -> None:
        """Declare a primary output."""
        self.outputs[name] = node_id

    # -- builders -----------------------------------------------------------
    def cover_root(self, cover: Cover) -> int:
        """Root id of the AND-OR circuit of an SOP cover (no output set)."""
        names = list(self._inputs)
        products = []
        for cube in cover.cubes:
            literals = []
            for var in bit_indices(cube.pos):
                literals.append(self.input_id(names[var]))
            for var in bit_indices(cube.neg):
                literals.append(self.negate(self.input_id(names[var])))
            products.append(self.chain("and", literals))
        return self.chain("or", products)

    def add_cover(self, cover: Cover, output_name: str) -> int:
        """Add the AND-OR circuit of an SOP cover; returns the root id."""
        root = self.cover_root(cover)
        self.set_output(output_name, root)
        return root

    def spp_cover_root(self, cover: SppCover) -> int:
        """Root id of the XOR-AND-OR circuit of a 2-SPP cover (no output)."""
        names = list(self._inputs)
        products = []
        for pc in cover.pseudocubes:
            factors = []
            for var in bit_indices(pc.pos):
                factors.append(self.input_id(names[var]))
            for var in bit_indices(pc.neg):
                factors.append(self.negate(self.input_id(names[var])))
            for xor in sorted(pc.xors):
                gate = self.binary(
                    "xor", self.input_id(names[xor.i]), self.input_id(names[xor.j])
                )
                factors.append(gate if xor.phase else self.negate(gate))
            products.append(self.chain("and", factors))
        return self.chain("or", products)

    def add_spp_cover(self, cover: SppCover, output_name: str) -> int:
        """Add the XOR-AND-OR circuit of a 2-SPP cover; returns the root id."""
        root = self.spp_cover_root(cover)
        self.set_output(output_name, root)
        return root

    def any_cover_root(self, cover) -> int:
        """Root of either cover flavour (``SppCover`` or plain ``Cover``)."""
        if isinstance(cover, SppCover):
            return self.spp_cover_root(cover)
        if isinstance(cover, Cover):
            return self.cover_root(cover)
        raise TypeError(
            f"cannot instantiate cover of type {type(cover).__name__};"
            " expected SppCover or Cover"
        )

    def operator_root(self, truth_row: tuple, g_root: int, h_root: int) -> int:
        """Combine two roots with a binary operator given by its truth row.

        ``truth_row`` lists the outputs on ``(g, h)`` = (0,0), (0,1),
        (1,0), (1,1) — the :meth:`repro.core.operators.BinaryOperator.truth_row`
        form — and is realized with the cheapest primitive-gate shape.
        """
        row = tuple(bool(bit) for bit in truth_row)
        if row == (False, False, False, True):  # AND
            return self.binary("and", g_root, h_root)
        if row == (False, False, True, True):  # projection to g (degenerate)
            return g_root
        if row == (False, False, True, False):  # g AND NOT h  (6⇒)
            return self.binary("and", g_root, self.negate(h_root))
        if row == (False, True, False, False):  # NOT g AND h  (6⇐)
            return self.binary("and", self.negate(g_root), h_root)
        if row == (True, False, False, False):  # NOR
            return self.negate(self.binary("or", g_root, h_root))
        if row == (False, True, True, True):  # OR
            return self.binary("or", g_root, h_root)
        if row == (True, True, False, True):  # IMPLIES: ~g + h
            return self.binary("or", self.negate(g_root), h_root)
        if row == (True, False, True, True):  # IMPLIED_BY: g + ~h
            return self.binary("or", g_root, self.negate(h_root))
        if row == (True, True, True, False):  # NAND
            return self.negate(self.binary("and", g_root, h_root))
        if row == (False, True, True, False):  # XOR
            return self.binary("xor", g_root, h_root)
        if row == (True, False, False, True):  # XNOR
            return self.negate(self.binary("xor", g_root, h_root))
        raise ValueError(f"unsupported operator row {row}")

    # -- analysis -------------------------------------------------------------
    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Evaluate all outputs on an input assignment."""
        values: list[bool | None] = [None] * len(self.nodes)
        for node_id, node in enumerate(self.nodes):
            if node.kind == "input":
                values[node_id] = bool(assignment[node.name])
            elif node.kind == "const0":
                values[node_id] = False
            elif node.kind == "const1":
                values[node_id] = True
            elif node.kind == "not":
                values[node_id] = not values[node.fanins[0]]
            elif node.kind == "and":
                values[node_id] = values[node.fanins[0]] and values[node.fanins[1]]
            elif node.kind == "or":
                values[node_id] = values[node.fanins[0]] or values[node.fanins[1]]
            elif node.kind == "xor":
                values[node_id] = values[node.fanins[0]] != values[node.fanins[1]]
            else:
                raise ValueError(f"bad node kind {node.kind!r}")
        return {name: bool(values[node_id]) for name, node_id in self.outputs.items()}

    def fanout_counts(self) -> list[int]:
        """Fanout count per node (outputs add one reference each)."""
        counts = [0] * len(self.nodes)
        for node in self.nodes:
            for fanin in node.fanins:
                counts[fanin] += 1
        for node_id in self.outputs.values():
            counts[node_id] += 1
        return counts

    def gate_count(self) -> int:
        """Number of non-input, non-constant nodes."""
        return sum(
            1
            for node in self.nodes
            if node.kind not in ("input", "const0", "const1")
        )

    def extract_cone(self, output_name: str) -> "LogicNetwork":
        """Copy one output's cone into a fresh single-output network.

        The copy declares the same primary inputs (so areas stay
        comparable) but contains only the logic reachable from the named
        output — the *isolated* realization of that output, duplicating
        anything the source network shared with its siblings.  The walk
        is iterative: left-deep chains make cones as deep as a cover is
        wide.
        """
        root = self.outputs[output_name]
        isolated = LogicNetwork(list(self._inputs))
        mapping: dict[int, int] = {}
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node_id, emit = stack.pop()
            if node_id in mapping:
                continue
            node = self.nodes[node_id]
            if node.kind == "input":
                mapping[node_id] = isolated.input_id(node.name)
                continue
            if node.kind in ("const0", "const1"):
                mapping[node_id] = isolated.const(node.kind == "const1")
                continue
            if not emit:
                stack.append((node_id, True))
                for fanin in node.fanins:
                    stack.append((fanin, False))
                continue
            fanins = tuple(mapping[fanin] for fanin in node.fanins)
            if node.kind == "not":
                mapping[node_id] = isolated.negate(fanins[0])
            else:
                mapping[node_id] = isolated.binary(node.kind, *fanins)
        isolated.set_output(output_name, mapping[root])
        return isolated
