"""Wire format for decomposition requests and results.

The parallel executor ships work to ``multiprocessing`` workers as plain
dicts (no BDD managers cross the process boundary), and the persistent
result cache stores the same payloads on disk — one serialization layer,
two consumers.  Everything here round-trips through JSON.

Functions travel in the canonical :mod:`repro.bdd.serialize` form; covers
travel as their literal masks (``SppCover`` pseudocubes or plain ``Cover``
cubes), so a reassembled result carries the *same* covers and metrics the
in-process path would have produced.
"""

from __future__ import annotations

from repro.bdd import serialize
from repro.bdd.manager import BDD
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import BiDecomposition
from repro.core.operators import operator_by_name
from repro.cover.cover import Cover
from repro.cover.cube import Cube
from repro.engine.request import CandidateOutcome, DecomposeRequest, DecomposeResult
from repro.spp.pseudocube import Pseudocube, make_xor_factor
from repro.spp.spp_cover import SppCover

#: Result payload identifier; bump on any incompatible layout change.
RESULT_FORMAT = "repro-result/1"

#: Logic-network payload identifier.
NETWORK_FORMAT = "repro-network/1"

#: Network-synthesis result payload identifier.
NETSYN_RESULT_FORMAT = "repro-netsyn/1"

#: Service request/response envelope identifier (:mod:`repro.service`).
SVC_FORMAT = "repro-svc/1"

#: Request kinds the service protocol understands.
SVC_KINDS = (
    "decompose",
    "decompose_many",
    "netsyn",
    "status",
    "metrics",
    "trace",
    "resize",
    "shutdown",
)


# ---------------------------------------------------------------------------
# ISFs
# ---------------------------------------------------------------------------


def isf_to_payload(isf: ISF) -> dict:
    """Serialize an ISF as a two-root (on/dc) shared dump."""
    return serialize.dump_many([("on", isf.on), ("dc", isf.dc)])


def isf_from_payload(payload: dict, mgr: BDD | None = None) -> ISF:
    """Rebuild an ISF, optionally into an existing manager."""
    roots = serialize.load_many(payload, mgr)
    return ISF(roots["on"], roots["dc"])


def isf_fingerprint(isf: ISF) -> str:
    """Canonical hash of an ISF (both sets, declared variables included)."""
    return serialize.canonical_hash(isf_to_payload(isf))


# ---------------------------------------------------------------------------
# Covers
# ---------------------------------------------------------------------------


def cover_to_payload(cover) -> dict | None:
    """Serialize a minimizer's cover (``SppCover``, ``Cover``, or ``None``)."""
    if cover is None:
        return None
    if isinstance(cover, SppCover):
        return {
            "kind": "spp",
            "n_vars": cover.n_vars,
            "pseudocubes": [
                [pc.pos, pc.neg, [[x.i, x.j, x.phase] for x in sorted(pc.xors)]]
                for pc in cover
            ],
        }
    if isinstance(cover, Cover):
        return {
            "kind": "sop",
            "n_vars": cover.n_vars,
            "cubes": [[cube.pos, cube.neg] for cube in cover],
        }
    raise TypeError(
        f"cannot serialize cover of type {type(cover).__name__}; parallel"
        f" and cached runs support SppCover, Cover, or None"
    )


def cover_from_payload(payload: dict | None):
    """Inverse of :func:`cover_to_payload`."""
    if payload is None:
        return None
    if payload["kind"] == "spp":
        return SppCover(
            payload["n_vars"],
            [
                Pseudocube(
                    payload["n_vars"],
                    pos,
                    neg,
                    frozenset(make_xor_factor(i, j, phase) for i, j, phase in xors),
                )
                for pos, neg, xors in payload["pseudocubes"]
            ],
        )
    if payload["kind"] == "sop":
        return Cover(
            payload["n_vars"],
            [Cube(payload["n_vars"], pos, neg) for pos, neg in payload["cubes"]],
        )
    raise serialize.SerializationError(
        f"unknown cover kind {payload.get('kind')!r}"
    )


# ---------------------------------------------------------------------------
# Logic networks (netsyn results)
# ---------------------------------------------------------------------------


def network_to_payload(network) -> dict:
    """Serialize a :class:`~repro.techmap.network.LogicNetwork`.

    Networks are already backend-free (primitive gates over named
    inputs), so the payload is a direct flattening: the input names,
    every node as ``[kind, [fanins...]]``, and the output map.
    """
    return {
        "format": NETWORK_FORMAT,
        "inputs": [
            node.name for node in network.nodes if node.kind == "input"
        ],
        "nodes": [
            [node.kind, list(node.fanins)] for node in network.nodes
        ],
        "outputs": dict(network.outputs),
    }


def network_from_payload(payload: dict):
    """Rebuild a :class:`~repro.techmap.network.LogicNetwork`.

    The node list is replayed through the network's own constructors,
    so the rebuilt DAG is strashed (and folded) exactly like one built
    natively; old node ids are mapped onto the new ones.
    """
    from repro.techmap.network import LogicNetwork

    if not isinstance(payload, dict) or payload.get("format") != NETWORK_FORMAT:
        raise serialize.SerializationError(
            f"not a {NETWORK_FORMAT} payload:"
            f" format={payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    try:
        inputs = list(payload["inputs"])
        nodes = payload["nodes"]
        outputs = dict(payload["outputs"])
    except (KeyError, TypeError) as exc:
        raise serialize.SerializationError(
            f"malformed {NETWORK_FORMAT} payload: {exc}"
        ) from None
    network = LogicNetwork(inputs)
    mapping: dict[int, int] = {}
    input_iter = iter(inputs)
    try:
        for old_id, (kind, fanins) in enumerate(nodes):
            if kind == "input":
                mapping[old_id] = network.input_id(next(input_iter))
            elif kind in ("const0", "const1"):
                mapping[old_id] = network.const(kind == "const1")
            elif kind == "not":
                mapping[old_id] = network.negate(mapping[fanins[0]])
            elif kind in ("and", "or", "xor"):
                mapping[old_id] = network.binary(
                    kind, mapping[fanins[0]], mapping[fanins[1]]
                )
            else:
                raise serialize.SerializationError(
                    f"unknown network node kind {kind!r}"
                )
        for name, root in outputs.items():
            network.set_output(str(name), mapping[root])
    except (KeyError, IndexError, TypeError, StopIteration) as exc:
        if isinstance(exc, serialize.SerializationError):
            raise
        raise serialize.SerializationError(
            f"malformed {NETWORK_FORMAT} node list: {exc}"
        ) from None
    return network


def netsyn_result_to_payload(result) -> dict:
    """Flatten a netsyn :class:`~repro.netsyn.synthesis.NetworkSynthesisResult`.

    Everything the result carries is representation-free (the network,
    per-output provenance, areas, pool counters), so — unlike
    :func:`result_to_payload` — the payload is self-contained: no live
    manager is needed to reassemble it.
    """
    return {
        "format": NETSYN_RESULT_FORMAT,
        "name": result.name,
        "network": network_to_payload(result.network),
        "output_names": list(result.output_names),
        "per_output": [dict(record) for record in result.per_output],
        "pool_stats": dict(result.pool_stats),
        "shared_area": result.shared_area,
        "isolated_area": result.isolated_area,
        "shared_gate_count": result.shared_gate_count,
        "isolated_gate_count": result.isolated_gate_count,
        "time_s": result.time_s,
        "engine_stats": result.engine_stats,
    }


def netsyn_result_from_payload(payload: dict):
    """Inverse of :func:`netsyn_result_to_payload`."""
    from repro.netsyn.synthesis import NetworkSynthesisResult

    if not isinstance(payload, dict) or payload.get("format") != NETSYN_RESULT_FORMAT:
        raise serialize.SerializationError(
            f"not a {NETSYN_RESULT_FORMAT} payload:"
            f" format={payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    try:
        return NetworkSynthesisResult(
            name=payload["name"],
            network=network_from_payload(payload["network"]),
            output_names=list(payload["output_names"]),
            per_output=[dict(record) for record in payload["per_output"]],
            pool_stats=dict(payload["pool_stats"]),
            shared_area=payload["shared_area"],
            isolated_area=payload["isolated_area"],
            shared_gate_count=payload["shared_gate_count"],
            isolated_gate_count=payload["isolated_gate_count"],
            time_s=payload["time_s"],
            engine_stats=payload.get("engine_stats"),
        )
    except (KeyError, TypeError) as exc:
        raise serialize.SerializationError(
            f"malformed {NETSYN_RESULT_FORMAT} payload: {exc}"
        ) from None


# ---------------------------------------------------------------------------
# Service envelopes (repro-svc/1)
# ---------------------------------------------------------------------------
#
# The decomposition service (:mod:`repro.service`) speaks newline-
# delimited JSON: every line is one envelope.  Requests name a kind and
# carry kind-specific params; responses echo the request id and carry
# either a result payload (in the existing wire formats above) plus
# per-request stats, or a structured error.  Everything below is pure
# dict shaping — no sockets, no managers — so both ends of the wire and
# the tests share one definition of "well-formed".


def svc_request(kind: str, params: dict | None = None, request_id: str | None = None) -> dict:
    """Build one service request envelope."""
    if kind not in SVC_KINDS:
        raise ValueError(f"unknown service request kind {kind!r}; known: {SVC_KINDS}")
    return {
        "format": SVC_FORMAT,
        "id": request_id,
        "kind": kind,
        "params": params if params is not None else {},
    }


def svc_response(request_id: str | None, result, stats: dict | None = None) -> dict:
    """Build a success response envelope.

    ``stats`` carries per-request service accounting (how the request
    was served, wall time, worker/cache/coalescer counters) — always
    informational, never part of the result's identity.
    """
    return {
        "format": SVC_FORMAT,
        "id": request_id,
        "ok": True,
        "result": result,
        "stats": stats if stats is not None else {},
    }


def svc_error(
    request_id: str | None, error_type: str, message: str, **extra
) -> dict:
    """Build an error response envelope.

    ``error_type`` is the server-side exception class name (or a
    protocol-level tag like ``"bad-request"``) so clients can
    distinguish e.g. a :class:`~repro.engine.decomposer.VerificationError`
    from a malformed request without parsing messages.  ``extra`` keys
    ride inside the error dict — e.g. ``retry_after_s`` on a
    ``rate-limited`` envelope tells the client exactly how long to back
    off before its bucket has a token again.
    """
    error = {"type": error_type, "message": message}
    error.update(extra)
    return {
        "format": SVC_FORMAT,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def parse_svc_request(message) -> tuple[str, dict, str | None]:
    """Validate a request envelope; returns ``(kind, params, id)``."""
    if not isinstance(message, dict) or message.get("format") != SVC_FORMAT:
        raise serialize.SerializationError(
            f"not a {SVC_FORMAT} request:"
            f" format={message.get('format') if isinstance(message, dict) else message!r}"
        )
    kind = message.get("kind")
    if kind not in SVC_KINDS:
        raise serialize.SerializationError(
            f"unknown {SVC_FORMAT} request kind {kind!r}; known: {SVC_KINDS}"
        )
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise serialize.SerializationError(
            f"{SVC_FORMAT} params must be a dict, got {type(params).__name__}"
        )
    return kind, params, message.get("id")


def parse_svc_response(message) -> dict:
    """Validate a response envelope (either outcome); returns it."""
    if not isinstance(message, dict) or message.get("format") != SVC_FORMAT:
        raise serialize.SerializationError(
            f"not a {SVC_FORMAT} response:"
            f" format={message.get('format') if isinstance(message, dict) else message!r}"
        )
    if "ok" not in message:
        raise serialize.SerializationError(f"{SVC_FORMAT} response missing 'ok'")
    if message["ok"]:
        if "result" not in message:
            raise serialize.SerializationError(
                f"{SVC_FORMAT} success response missing 'result'"
            )
    else:
        error = message.get("error")
        if not isinstance(error, dict) or "type" not in error or "message" not in error:
            raise serialize.SerializationError(
                f"{SVC_FORMAT} error response needs error.type and error.message"
            )
    return message


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def result_to_payload(result: DecomposeResult) -> dict:
    """Flatten a :class:`DecomposeResult` to a JSON-ready dict.

    The request itself is *not* serialized — the reassembling side (the
    batch parent, or a cache consumer) supplies its own request carrying
    the live ``f``; everything derived (``g``, ``h``, covers, metrics,
    candidate outcomes) travels in the payload.
    """
    decomposition = result.decomposition
    return {
        "format": RESULT_FORMAT,
        "op": result.op_name,
        "approximator": result.approximator_name,
        "minimizer": result.minimizer_name,
        "g": serialize.dump(decomposition.g),
        "h": isf_to_payload(decomposition.h),
        "g_cover": cover_to_payload(decomposition.g_cover),
        "h_cover": cover_to_payload(decomposition.h_cover),
        "metadata": dict(decomposition.metadata),
        "literal_cost": result.literal_cost,
        "error_rate": result.error_rate,
        "verified": result.verified,
        "timings": dict(result.timings),
        "candidates": [c.to_dict() for c in result.candidates],
        # Manager health counters of the computing side (informational;
        # never part of the result's identity or cache key).
        "bdd_stats": result.bdd_stats,
    }


def result_from_payload(payload: dict, request: DecomposeRequest) -> DecomposeResult:
    """Reassemble a :class:`DecomposeResult` against ``request.f``'s manager."""
    if not isinstance(payload, dict) or payload.get("format") != RESULT_FORMAT:
        raise serialize.SerializationError(
            f"not a {RESULT_FORMAT} payload:"
            f" format={payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    mgr = request.f.mgr
    try:
        op = operator_by_name(payload["op"])
        decomposition = BiDecomposition(
            f=request.f,
            op=op,
            g=serialize.load(payload["g"], mgr),
            h=isf_from_payload(payload["h"], mgr),
            g_cover=cover_from_payload(payload["g_cover"]),
            h_cover=cover_from_payload(payload["h_cover"]),
            metadata=dict(payload["metadata"]),
        )
        candidates = [
            CandidateOutcome(
                op_name=c["op"],
                verified=c["verified"],
                literal_cost=c["literal_cost"],
                error_rate=c["error_rate"],
                reason=c["reason"],
            )
            for c in payload["candidates"]
        ]
        return DecomposeResult(
            decomposition=decomposition,
            request=request,
            op_name=payload["op"],
            approximator_name=payload["approximator"],
            minimizer_name=payload["minimizer"],
            timings=dict(payload["timings"]),
            literal_cost=payload["literal_cost"],
            error_rate=payload["error_rate"],
            verified=payload["verified"],
            candidates=candidates,
            # Absent in payloads stored before the stats channel existed.
            bdd_stats=payload.get("bdd_stats"),
        )
    except (KeyError, TypeError) as exc:
        raise serialize.SerializationError(
            f"malformed {RESULT_FORMAT} payload: {exc}"
        ) from None


__all__ = [
    "NETSYN_RESULT_FORMAT",
    "NETWORK_FORMAT",
    "RESULT_FORMAT",
    "SVC_FORMAT",
    "SVC_KINDS",
    "cover_from_payload",
    "cover_to_payload",
    "isf_fingerprint",
    "isf_from_payload",
    "isf_to_payload",
    "netsyn_result_from_payload",
    "netsyn_result_to_payload",
    "network_from_payload",
    "network_to_payload",
    "parse_svc_request",
    "parse_svc_response",
    "result_from_payload",
    "result_to_payload",
    "svc_error",
    "svc_request",
    "svc_response",
]
