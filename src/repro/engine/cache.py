"""Persistent on-disk result cache for batch decomposition.

A :class:`ResultCache` maps a canonical key — the SHA-256 of the
serialized function, operator, strategy specs, and verification flag —
to a JSON payload on disk.  :meth:`~repro.engine.decomposer.Decomposer.decompose_many`
consults it before any worker dispatch, so a warm re-run of a benchmark
suite completes without recomputing (or even forking) anything.

Robustness contract: a corrupted, truncated, or foreign file under the
cache directory is treated as a *miss* (and counted in
``stats["corrupt"]``), never as an error — a shared cache directory must
not be able to break a run.  Writes are atomic (temp file + ``os.replace``)
so concurrent writers at worst waste work.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from pathlib import Path

from repro.bdd.serialize import canonical_hash

#: On-disk entry wrapper identifier; bump on any incompatible change.
ENTRY_FORMAT = "repro-cache-entry/1"

#: Temp files older than this (seconds) are orphans from dead writers.
STALE_TEMP_AGE_S = 3600.0


class ResultCache:
    """Content-addressed JSON store under one directory.

    Entries live at ``<cache_dir>/<key[:2]>/<key>.json`` wrapped as
    ``{"format": ENTRY_FORMAT, "payload": ...}``.  ``stats`` counts
    ``hits``, ``misses``, ``stores``, and ``corrupt`` entries seen.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
        # Distinguishes concurrent writers within one process (threads
        # sharing this instance) and across instances in one pid.
        self._tmp_counter = itertools.count()
        self._tmp_token = uuid.uuid4().hex[:8]
        self.swept_temps = self._sweep_stale_temps()

    def _sweep_stale_temps(self, max_age_s: float = STALE_TEMP_AGE_S) -> int:
        """Remove orphaned ``*.tmp*`` files left by writers that died
        before their atomic ``os.replace``.

        Only temps older than ``max_age_s`` are touched: a younger temp
        may belong to a concurrent writer about to rename it.
        """
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.cache_dir.glob("*/*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Renamed or removed by a concurrent process: not ours.
                continue
        return swept

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(
        f_payload: dict,
        op: str,
        approximator: str,
        minimizer: str,
        verify: bool,
        operators: tuple[str, ...] = (),
    ) -> str:
        """Canonical cache key of one decomposition request.

        ``f_payload`` is the :func:`repro.engine.wire.isf_to_payload` dump
        of the (already transferred) function, so the key covers the
        declared variable slice along with the function semantics; ``op``
        is a canonical operator name or ``"auto"``.  ``operators`` — the
        engine's search space — participates only under ``"auto"``, where
        it determines which candidates were ranked; for a named operator
        it cannot affect the result.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "f": f_payload,
                "op": op,
                "approximator": approximator,
                "minimizer": minimizer,
                "verify": bool(verify),
                "operators": list(operators) if op == "auto" else None,
            }
        )

    @staticmethod
    def bench_key_for(benchmark: str, operators: tuple[str, ...]) -> str:
        """Canonical key of a full harness benchmark run."""
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "benchmark": benchmark,
                "operators": list(operators),
            }
        )

    @staticmethod
    def netsyn_key_for(
        output_fingerprints: list[str], config_payload: dict
    ) -> str:
        """Canonical key of a shared-network synthesis run.

        ``output_fingerprints`` are the canonical per-output ISF hashes
        (:func:`repro.engine.wire.isf_fingerprint`) in output order —
        they cover the functions *and* the declared variable slice —
        and ``config_payload`` is the synthesis policy
        (:meth:`repro.netsyn.synthesis.NetsynConfig.key_payload`).
        Backends never enter the key: a cache warmed under the BDD
        backend serves bitset runs and vice versa.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "netsyn": {
                    "outputs": list(output_fingerprints),
                    "config": config_payload,
                },
            }
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    # -- access -----------------------------------------------------------

    def get(self, key: str):
        """Return the stored payload, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
                raise ValueError(f"unexpected entry format in {path}")
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, KeyError):
            # Unreadable or malformed: ignore, count, treat as a miss.
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    def put(self, key: str, payload) -> None:
        """Store a JSON-ready payload under ``key`` (atomic replace).

        The temp name is unique per (pid, instance, write): two threads
        sharing one cache — or two processes sharing one directory —
        never collide on the same temp file, so a concurrent writer can
        at worst waste work, never truncate another's entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {"format": ENTRY_FORMAT, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        tmp = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{self._tmp_token}-{next(self._tmp_counter)}"
        )
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        self.stats["stores"] += 1

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def __repr__(self) -> str:
        return f"ResultCache({str(self.cache_dir)!r}, stats={self.stats})"


def as_result_cache(cache: "ResultCache | str | os.PathLike | None") -> ResultCache | None:
    """Normalize a cache argument (instance, directory path, or ``None``)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


__all__ = ["ENTRY_FORMAT", "ResultCache", "as_result_cache"]
