"""Persistent on-disk result cache for batch decomposition.

A :class:`ResultCache` maps a canonical key — the SHA-256 of the
serialized function, operator, strategy specs, and verification flag —
to a JSON payload on disk.  :meth:`~repro.engine.decomposer.Decomposer.decompose_many`
consults it before any worker dispatch, so a warm re-run of a benchmark
suite completes without recomputing (or even forking) anything.

Robustness contract: a corrupted, truncated, or foreign file under the
cache directory is treated as a *miss* (and counted in
``stats["corrupt"]``), never as an error — a shared cache directory must
not be able to break a run.  Writes are atomic (temp file + ``os.replace``)
so concurrent writers at worst waste work.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from pathlib import Path

from repro.bdd.serialize import canonical_hash

#: On-disk entry wrapper identifier; bump on any incompatible change.
ENTRY_FORMAT = "repro-cache-entry/1"

#: Temp files older than this (seconds) are orphans from dead writers.
STALE_TEMP_AGE_S = 3600.0


class ResultCache:
    """Content-addressed JSON store under one directory.

    Entries live at ``<cache_dir>/<key[:2]>/<key>.json`` wrapped as
    ``{"format": ENTRY_FORMAT, "payload": ...}``.  ``stats`` counts
    ``hits``, ``misses``, ``stores``, ``corrupt`` entries seen, and
    ``evictions``.

    ``max_bytes`` / ``max_entries`` bound the store: when either budget
    is exceeded after a write, the least-recently-used entries
    (mtime-ordered — ``get`` touches an entry's mtime while a budget is
    active) are removed until the store fits again.  Budgets are
    enforced per instance over everything found under the directory at
    open time plus this instance's writes; entries another process adds
    later are reclaimed by whichever budgeted instance opens the
    directory next.  ``None`` (the default) keeps the store unbounded.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "corrupt": 0,
            "evictions": 0,
        }
        # Distinguishes concurrent writers within one process (threads
        # sharing this instance) and across instances in one pid.
        self._tmp_counter = itertools.count()
        self._tmp_token = uuid.uuid4().hex[:8]
        self.swept_temps = self._sweep_stale_temps()
        #: key -> (mtime, size) of every governed entry; only maintained
        #: when a budget is set (the unbounded store never scans).
        self._index: dict[str, tuple[float, int]] = {}
        self._index_bytes = 0
        if self._bounded:
            for path in self.cache_dir.glob("*/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                self._index_entry(path.stem, stat.st_mtime, stat.st_size)
            self._evict()

    @property
    def _bounded(self) -> bool:
        return self.max_bytes is not None or self.max_entries is not None

    def _index_entry(self, key: str, mtime: float, size: int) -> None:
        old = self._index.get(key)
        if old is not None:
            self._index_bytes -= old[1]
        self._index[key] = (mtime, size)
        self._index_bytes += size

    def _drop_entry(self, key: str) -> None:
        old = self._index.pop(key, None)
        if old is not None:
            self._index_bytes -= old[1]

    def _over_budget(self) -> bool:
        return (
            self.max_entries is not None and len(self._index) > self.max_entries
        ) or (self.max_bytes is not None and self._index_bytes > self.max_bytes)

    def _evict(self, keep: str | None = None) -> None:
        """Remove LRU entries until both budgets hold.

        ``keep`` — the key just written — is never evicted: a single
        entry larger than ``max_bytes`` stays (reclaimed by a later
        write), so a put can never silently discard its own result.
        """
        while self._index and self._over_budget():
            victim = min(
                (key for key in self._index if key != keep),
                key=lambda key: self._index[key][0],
                default=None,
            )
            if victim is None:
                return
            self._drop_entry(victim)
            try:
                self.path_for(victim).unlink()
            except OSError:
                continue  # already gone (concurrent instance): no count
            self.stats["evictions"] += 1

    def _sweep_stale_temps(self, max_age_s: float = STALE_TEMP_AGE_S) -> int:
        """Remove orphaned ``*.tmp*`` files left by writers that died
        before their atomic ``os.replace``.

        Only temps older than ``max_age_s`` are touched: a younger temp
        may belong to a concurrent writer about to rename it.
        """
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.cache_dir.glob("*/*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Renamed or removed by a concurrent process: not ours.
                continue
        return swept

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(
        f_payload: dict,
        op: str,
        approximator: str,
        minimizer: str,
        verify: bool,
        operators: tuple[str, ...] = (),
    ) -> str:
        """Canonical cache key of one decomposition request.

        ``f_payload`` is the :func:`repro.engine.wire.isf_to_payload` dump
        of the (already transferred) function, so the key covers the
        declared variable slice along with the function semantics; ``op``
        is a canonical operator name or ``"auto"``.  ``operators`` — the
        engine's search space — participates only under ``"auto"``, where
        it determines which candidates were ranked; for a named operator
        it cannot affect the result.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "f": f_payload,
                "op": op,
                "approximator": approximator,
                "minimizer": minimizer,
                "verify": bool(verify),
                "operators": list(operators) if op == "auto" else None,
            }
        )

    @staticmethod
    def bench_key_for(benchmark: str, operators: tuple[str, ...]) -> str:
        """Canonical key of a full harness benchmark run."""
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "benchmark": benchmark,
                "operators": list(operators),
            }
        )

    @staticmethod
    def netsyn_key_for(
        output_fingerprints: list[str], config_payload: dict
    ) -> str:
        """Canonical key of a shared-network synthesis run.

        ``output_fingerprints`` are the canonical per-output ISF hashes
        (:func:`repro.engine.wire.isf_fingerprint`) in output order —
        they cover the functions *and* the declared variable slice —
        and ``config_payload`` is the synthesis policy
        (:meth:`repro.netsyn.synthesis.NetsynConfig.key_payload`).
        Backends never enter the key: a cache warmed under the BDD
        backend serves bitset runs and vice versa.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "netsyn": {
                    "outputs": list(output_fingerprints),
                    "config": config_payload,
                },
            }
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    # -- access -----------------------------------------------------------

    def get(self, key: str):
        """Return the stored payload, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
                raise ValueError(f"unexpected entry format in {path}")
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, KeyError):
            # Unreadable or malformed: ignore, count, treat as a miss.
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        if self._bounded:
            # Refresh recency so the LRU eviction order tracks *use*,
            # not just write time.
            now = time.time()
            try:
                os.utime(path, (now, now))
                self._index_entry(key, now, path.stat().st_size)
            except OSError:
                pass
        return payload

    def put(self, key: str, payload) -> None:
        """Store a JSON-ready payload under ``key`` (atomic replace).

        The temp name is unique per (pid, instance, write): two threads
        sharing one cache — or two processes sharing one directory —
        never collide on the same temp file, so a concurrent writer can
        at worst waste work, never truncate another's entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {"format": ENTRY_FORMAT, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        tmp = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{self._tmp_token}-{next(self._tmp_counter)}"
        )
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        self.stats["stores"] += 1
        if self._bounded:
            self._index_entry(key, time.time(), len(text.encode("utf-8")))
            self._evict(keep=key)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def __repr__(self) -> str:
        return f"ResultCache({str(self.cache_dir)!r}, stats={self.stats})"


def as_result_cache(cache: "ResultCache | str | os.PathLike | None") -> ResultCache | None:
    """Normalize a cache argument (instance, directory path, or ``None``)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


__all__ = ["ENTRY_FORMAT", "ResultCache", "as_result_cache"]
