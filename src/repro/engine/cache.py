"""Persistent on-disk result cache for batch decomposition.

A :class:`ResultCache` maps a canonical key — the SHA-256 of the
serialized function, operator, strategy specs, and verification flag —
to a JSON payload on disk.  :meth:`~repro.engine.decomposer.Decomposer.decompose_many`
consults it before any worker dispatch, so a warm re-run of a benchmark
suite completes without recomputing (or even forking) anything.

Robustness contract: a corrupted, truncated, or foreign file under the
cache directory is treated as a *miss* (and counted in
``stats["corrupt"]``), never as an error — a shared cache directory must
not be able to break a run.  Corrupt entries are additionally
*quarantined* (moved aside, counted in ``stats["quarantined"]``) so a
bad sector cannot re-trip the corruption path on every lookup.

Crash-safety contract: a writer may die — ``kill -9``, OOM, power —
at *any* instruction inside :meth:`put` and the store stays openable,
losing at most the entry that was in flight.  The write path is a
checksummed journal:

1. serialize the entry with a CRC-32 of its payload;
2. commit a journal record (``journal/<key>.j``) carrying the full
   entry text and its own CRC — temp file, ``fsync``, atomic rename;
3. write the entry itself the same way (temp, ``fsync``, rename);
4. clear the journal record.

A crash before step 2 completes leaves nothing durable (the in-flight
entry is lost — the guaranteed worst case).  A crash after step 2
leaves a committed journal record; the next :class:`ResultCache` on the
directory *replays* it (``stats["replayed"]``), recovering the entry
the dying writer never renamed into place.  A crash between steps 3
and 4 replays idempotently onto the identical bytes.  Torn or foreign
journal records fail their CRC and are quarantined, never replayed.

The named ``cache.put.*`` fault-injection sites between those steps let
the chaos suite SIGKILL a sacrificial writer at every crash point and
assert the contract holds (see :mod:`repro.service.faults`).
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time
import uuid
import zlib
from pathlib import Path

from repro.bdd.serialize import canonical_hash
from repro.obs.trace import span as _obs_span

#: On-disk entry wrapper identifier; bump on any incompatible change.
#: (Also folded into every cache *key*, so bumping it invalidates the
#: store — entries gaining an optional ``crc`` field did not need that.)
ENTRY_FORMAT = "repro-cache-entry/1"

#: Journal record wrapper identifier; bump on any incompatible change.
JOURNAL_FORMAT = "repro-cache-journal/1"

#: Temp files older than this (seconds) are orphans from dead writers.
STALE_TEMP_AGE_S = 3600.0


def _fire(site: str, **context) -> None:
    """Fault-injection hook, zero-cost unless the chaos layer is loaded.

    The engine must not import :mod:`repro.service` (the dependency
    points the other way), so the hook looks the module up instead: if
    ``repro.service.faults`` was never imported, no plan can be
    installed and there is nothing to fire.
    """
    faults = sys.modules.get("repro.service.faults")
    if faults is not None:
        faults.fire(site, **context)


def _crc_text(text: str) -> str:
    return format(zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF, "08x")


def _payload_crc(payload) -> str:
    """CRC-32 over the canonical JSON of a payload (order-independent)."""
    return _crc_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )


def _write_durable(path: Path, text: str) -> None:
    """Write + flush + ``fsync``: the bytes survive a crash after return."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())


class ResultCache:
    """Content-addressed JSON store under one directory.

    Entries live at ``<cache_dir>/<key[:2]>/<key>.json`` wrapped as
    ``{"format": ENTRY_FORMAT, "payload": ...}``.  ``stats`` counts
    ``hits``, ``misses``, ``stores``, ``corrupt`` entries seen, and
    ``evictions``.

    ``max_bytes`` / ``max_entries`` bound the store: when either budget
    is exceeded after a write, the least-recently-used entries
    (mtime-ordered — ``get`` touches an entry's mtime while a budget is
    active) are removed until the store fits again.  Budgets are
    enforced per instance over everything found under the directory at
    open time plus this instance's writes; entries another process adds
    later are reclaimed by whichever budgeted instance opens the
    directory next.  ``None`` (the default) keeps the store unbounded.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "corrupt": 0,
            "evictions": 0,
            "quarantined": 0,
            "replayed": 0,
        }
        # Distinguishes concurrent writers within one process (threads
        # sharing this instance) and across instances in one pid.
        self._tmp_counter = itertools.count()
        self._tmp_token = uuid.uuid4().hex[:8]
        self.swept_temps = self._sweep_stale_temps()
        self._replay_journal()
        #: key -> (mtime, size) of every governed entry; only maintained
        #: when a budget is set (the unbounded store never scans).
        self._index: dict[str, tuple[float, int]] = {}
        self._index_bytes = 0
        if self._bounded:
            for path in self.cache_dir.glob("*/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                self._index_entry(path.stem, stat.st_mtime, stat.st_size)
            self._evict()

    @property
    def _bounded(self) -> bool:
        return self.max_bytes is not None or self.max_entries is not None

    def _index_entry(self, key: str, mtime: float, size: int) -> None:
        old = self._index.get(key)
        if old is not None:
            self._index_bytes -= old[1]
        self._index[key] = (mtime, size)
        self._index_bytes += size

    def _drop_entry(self, key: str) -> None:
        old = self._index.pop(key, None)
        if old is not None:
            self._index_bytes -= old[1]

    def _over_budget(self) -> bool:
        return (
            self.max_entries is not None and len(self._index) > self.max_entries
        ) or (self.max_bytes is not None and self._index_bytes > self.max_bytes)

    def _evict(self, keep: str | None = None) -> None:
        """Remove LRU entries until both budgets hold.

        ``keep`` — the key just written — is never evicted: a single
        entry larger than ``max_bytes`` stays (reclaimed by a later
        write), so a put can never silently discard its own result.
        """
        while self._index and self._over_budget():
            victim = min(
                (key for key in self._index if key != keep),
                key=lambda key: self._index[key][0],
                default=None,
            )
            if victim is None:
                return
            self._drop_entry(victim)
            try:
                self.path_for(victim).unlink()
            except OSError:
                continue  # already gone (concurrent instance): no count
            self.stats["evictions"] += 1

    def _tmp_name(self, path: Path) -> Path:
        """A temp sibling unique per (pid, instance, write)."""
        return path.with_name(
            f"{path.name}.tmp{os.getpid()}-{self._tmp_token}"
            f"-{next(self._tmp_counter)}"
        )

    # -- journal (crash-safe writes) ---------------------------------------

    def journal_path(self, key: str) -> Path:
        """On-disk location of ``key``'s journal record (if committed)."""
        return self.cache_dir / "journal" / f"{key}.j"

    def _entry_valid(self, path: Path) -> bool:
        """Does ``path`` hold a well-formed, checksum-clean entry?"""
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
                return False
            crc = entry.get("crc")
            return crc is None or crc == _payload_crc(entry["payload"])
        except (OSError, ValueError, KeyError):
            return False

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file aside so it cannot re-trip every lookup.

        Quarantined files keep their name under ``quarantine/`` with a
        ``.bad`` suffix — outside every glob the cache scans — for
        post-mortem inspection; moving (not deleting) also preserves the
        evidence a corruption report needs.
        """
        target = self.cache_dir / "quarantine" / f"{path.name}.bad"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return  # already gone (concurrent reader quarantined it)
        self.stats["quarantined"] += 1

    def _replay_journal(self) -> int:
        """Complete writes a dead process journaled but never finished.

        Every committed ``journal/<key>.j`` record is CRC-verified and
        — when the final entry is missing or fails *its* checksum —
        replayed into place, then cleared.  Records that fail their CRC
        (a torn write from a dying kernel, a foreign file) are
        quarantined, never replayed.  Returns the number of entries
        recovered (also in ``stats["replayed"]``).
        """
        journal_dir = self.cache_dir / "journal"
        if not journal_dir.is_dir():
            return 0
        replayed = 0
        for record_path in sorted(journal_dir.glob("*.j")):
            try:
                record = json.loads(record_path.read_text(encoding="utf-8"))
                if (
                    not isinstance(record, dict)
                    or record.get("format") != JOURNAL_FORMAT
                ):
                    raise ValueError(f"not a {JOURNAL_FORMAT} record")
                key = record["key"]
                text = record["entry"]
                if not isinstance(key, str) or not isinstance(text, str):
                    raise ValueError("malformed journal record fields")
                if _crc_text(text) != record["crc"]:
                    raise ValueError("journal record failed its CRC")
                entry = json.loads(text)
                if entry.get("format") != ENTRY_FORMAT:
                    raise ValueError("journaled entry has a foreign format")
            except (OSError, ValueError, KeyError, TypeError):
                self._quarantine(record_path)
                continue
            path = self.path_for(key)
            if not self._entry_valid(path):
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = self._tmp_name(path)
                _write_durable(tmp, text)
                os.replace(tmp, path)
                replayed += 1
            # else: the crash fell between the entry rename and the
            # journal clear — the entry is already durable and byte-
            # identical to the record's copy; just clear the orphan.
            try:
                record_path.unlink()
            except OSError:
                pass
        self.stats["replayed"] += replayed
        return replayed

    def _sweep_stale_temps(self, max_age_s: float = STALE_TEMP_AGE_S) -> int:
        """Remove orphaned ``*.tmp*`` files left by writers that died
        before their atomic ``os.replace``.

        Only temps older than ``max_age_s`` are touched: a younger temp
        may belong to a concurrent writer about to rename it.
        """
        cutoff = time.time() - max_age_s
        swept = 0
        for tmp in self.cache_dir.glob("*/*.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                # Renamed or removed by a concurrent process: not ours.
                continue
        return swept

    # -- keys -------------------------------------------------------------

    @staticmethod
    def key_for(
        f_payload: dict,
        op: str,
        approximator: str,
        minimizer: str,
        verify: bool,
        operators: tuple[str, ...] = (),
    ) -> str:
        """Canonical cache key of one decomposition request.

        ``f_payload`` is the :func:`repro.engine.wire.isf_to_payload` dump
        of the (already transferred) function, so the key covers the
        declared variable slice along with the function semantics; ``op``
        is a canonical operator name or ``"auto"``.  ``operators`` — the
        engine's search space — participates only under ``"auto"``, where
        it determines which candidates were ranked; for a named operator
        it cannot affect the result.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "f": f_payload,
                "op": op,
                "approximator": approximator,
                "minimizer": minimizer,
                "verify": bool(verify),
                "operators": list(operators) if op == "auto" else None,
            }
        )

    @staticmethod
    def bench_key_for(benchmark: str, operators: tuple[str, ...]) -> str:
        """Canonical key of a full harness benchmark run."""
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "benchmark": benchmark,
                "operators": list(operators),
            }
        )

    @staticmethod
    def netsyn_key_for(
        output_fingerprints: list[str], config_payload: dict
    ) -> str:
        """Canonical key of a shared-network synthesis run.

        ``output_fingerprints`` are the canonical per-output ISF hashes
        (:func:`repro.engine.wire.isf_fingerprint`) in output order —
        they cover the functions *and* the declared variable slice —
        and ``config_payload`` is the synthesis policy
        (:meth:`repro.netsyn.synthesis.NetsynConfig.key_payload`).
        Backends never enter the key: a cache warmed under the BDD
        backend serves bitset runs and vice versa.
        """
        return canonical_hash(
            {
                "format": ENTRY_FORMAT,
                "netsyn": {
                    "outputs": list(output_fingerprints),
                    "config": config_payload,
                },
            }
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of a key (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    # -- access -----------------------------------------------------------

    def get(self, key: str):
        """Return the stored payload, or ``None`` on miss/corruption.

        Entries carrying a ``crc`` (everything this version writes) are
        verified against it; a mismatch — bit rot, a torn foreign write
        — counts as corrupt and the file is quarantined so the next
        lookup is a clean miss a fresh ``put`` can fill.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
                raise ValueError(f"unexpected entry format in {path}")
            payload = entry["payload"]
            crc = entry.get("crc")
            if crc is not None and crc != _payload_crc(payload):
                raise ValueError(f"entry failed its CRC in {path}")
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, KeyError):
            # Unreadable or malformed: quarantine, count, treat as a miss.
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            self._quarantine(path)
            self._drop_entry(key)
            return None
        self.stats["hits"] += 1
        if self._bounded:
            # Refresh recency so the LRU eviction order tracks *use*,
            # not just write time.
            now = time.time()
            try:
                os.utime(path, (now, now))
                self._index_entry(key, now, path.stat().st_size)
            except OSError:
                pass
        return payload

    def put(self, key: str, payload) -> None:
        """Store a JSON-ready payload under ``key``, crash-safely.

        Journal-first (see the module docstring): the entry text — with
        its payload CRC — is committed to ``journal/<key>.j`` (temp,
        ``fsync``, rename) *before* the entry itself is written the same
        way, and the record is cleared only after the entry rename.  A
        writer dying at any point loses at most this entry, and loses it
        only if death lands before the journal commit; afterwards the
        next open replays the record.

        The temp names are unique per (pid, instance, write): two
        threads sharing one cache — or two processes sharing one
        directory — never collide on the same temp file, so a concurrent
        writer can at worst waste work, never truncate another's entry.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(
            {
                "format": ENTRY_FORMAT,
                "crc": _payload_crc(payload),
                "payload": payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        _fire("cache.put.serialized", key=key)
        journal = self.journal_path(key)
        journal.parent.mkdir(parents=True, exist_ok=True)
        record = json.dumps(
            {
                "format": JOURNAL_FORMAT,
                "key": key,
                "crc": _crc_text(text),
                "entry": text,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with _obs_span("cache.journal", key=key[:16]):
            journal_tmp = self._tmp_name(journal)
            _write_durable(journal_tmp, record)
            os.replace(journal_tmp, journal)
        _fire("cache.put.journaled", key=key)
        tmp = self._tmp_name(path)
        _write_durable(tmp, text)
        _fire("cache.put.entry_written", key=key)
        os.replace(tmp, path)
        _fire("cache.put.renamed", key=key)
        try:
            journal.unlink()
        except OSError:
            pass
        self.stats["stores"] += 1
        if self._bounded:
            self._index_entry(key, time.time(), len(text.encode("utf-8")))
            self._evict(keep=key)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none yet)."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def __repr__(self) -> str:
        return f"ResultCache({str(self.cache_dir)!r}, stats={self.stats})"


def as_result_cache(cache: "ResultCache | str | os.PathLike | None") -> ResultCache | None:
    """Normalize a cache argument (instance, directory path, or ``None``)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


__all__ = ["ENTRY_FORMAT", "JOURNAL_FORMAT", "ResultCache", "as_result_cache"]
