"""Named strategy registries for the decomposition engine.

Two registries drive :class:`repro.engine.Decomposer`:

* :data:`APPROXIMATORS` — strategies ``(f, op) -> divisor`` producing a
  completely specified divisor ``g`` of the approximation kind ``op``
  requires (a bare :class:`~repro.bdd.manager.Function`, a
  :class:`~repro.engine.request.Divisor`, or anything with a ``.g``
  attribute such as :class:`~repro.approx.expansion.ExpansionResult`);
* :data:`MINIMIZERS` — strategies ``(isf) -> cover`` turning an
  incompletely specified function into a two- or three-level cover
  (anything with ``to_function`` and ``literal_count``), or ``None`` to
  skip minimization.

Strategies are addressed by name; a name may carry a parameter after a
colon (``"expand-bounded:0.05"``, ``"random:0.3"``).  User code extends
the registries with the :func:`register_approximator` and
:func:`register_minimizer` decorators::

    @register_approximator("tautology")
    def tautology_divisor(f, op):
        return f.mgr.true

Built-in approximators
    ``expand-full[:policy]``
        Pseudoproduct expansion (paper Section IV-A), adapted to every
        operator family: the expansion of ``f`` (or of ``~f``, or its
        complement) yields a divisor of the kind the operator requires.
        The optional parameter selects the expansion policy
        (``aggressive``, the default, or ``conservative``).
    ``expand-bounded:<budget>``
        The bounded-error expansion of [2] with the given error budget
        (a fraction of the Boolean space), likewise adapted per kind.
    ``random:<rate>[:<seed>]``
        Random approximation of the required kind flipping ``rate`` of
        the eligible minterms (mainly for testing and ablations).  The
        RNG is seeded explicitly from the spec (or the given seed), the
        operator's approximation kind, and a canonical fingerprint of
        the function, so results are bit-identical across call orders,
        parallel workers, and cache re-runs.

Built-in minimizers
    ``spp`` (2-SPP synthesis), ``espresso`` (heuristic SOP),
    ``exact`` (Quine–McCluskey minimum SOP), and ``none``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bdd.manager import Function
from repro.boolfunc.isf import ISF
from repro.core.operators import ApproximationKind, BinaryOperator


class UnknownStrategyError(KeyError):
    """No strategy is registered under the requested name."""


def _parse_fraction(text: str, strategy: str, what: str) -> float:
    """Parse a numeric strategy parameter with a curated error message."""
    try:
        return float(text)
    except ValueError:
        raise UnknownStrategyError(
            f"{strategy} {what} must be a number, got {text!r}"
            f" (e.g. '{strategy}:0.05')"
        ) from None


@dataclass(frozen=True)
class ResolvedStrategy:
    """A strategy resolved from a registry (or wrapped from a callable)."""

    #: Full spec the strategy was resolved from (``"expand-bounded:0.05"``).
    name: str
    func: Callable
    #: True when the strategy's output depends on the operator only through
    #: its approximation kind — lets the engine share one divisor across
    #: all operators of a family during ``op="auto"`` search.
    kind_pure: bool = False


class StrategyRegistry:
    """Name → strategy-factory mapping with ``name:arg`` parameterization."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, tuple[Callable, bool, bool]] = {}
        self._resolved: dict[str, ResolvedStrategy] = {}

    def register(
        self,
        name: str,
        func: Callable | None = None,
        *,
        parameterized: bool = False,
        kind_pure: bool = False,
    ):
        """Register a strategy (decorator-friendly).

        With ``parameterized=True``, ``func`` is a factory
        ``(arg: str | None) -> strategy`` and the registered name accepts
        a ``:arg`` suffix; otherwise ``func`` is the strategy itself.
        Re-registering a name replaces the previous entry.
        """
        if ":" in name:
            raise ValueError(f"strategy name {name!r} may not contain ':'")

        def install(func: Callable) -> Callable:
            self._entries[name] = (func, parameterized, kind_pure)
            self._resolved = {
                spec: entry
                for spec, entry in self._resolved.items()
                if spec.partition(":")[0] != name
            }
            return func

        return install if func is None else install(func)

    def names(self) -> list[str]:
        """Registered base names (without parameters), sorted."""
        return sorted(self._entries)

    def resolve(self, spec) -> ResolvedStrategy:
        """Resolve a name, ``name:arg`` spec, or bare callable."""
        if callable(spec) and not isinstance(spec, str):
            return ResolvedStrategy(
                getattr(spec, "__name__", spec.__class__.__name__), spec
            )
        if not isinstance(spec, str):
            raise TypeError(
                f"{self.kind} spec must be a name or callable, got {spec!r}"
            )
        cached = self._resolved.get(spec)
        if cached is not None:
            return cached
        base, _, arg = spec.partition(":")
        entry = self._entries.get(base)
        if entry is None:
            raise UnknownStrategyError(
                f"unknown {self.kind} {spec!r}; registered: {self.names()}"
            )
        func, parameterized, kind_pure = entry
        if parameterized:
            strategy = func(arg or None)
        elif arg:
            raise UnknownStrategyError(
                f"{self.kind} {base!r} takes no parameter (got {spec!r})"
            )
        else:
            strategy = func
        resolved = ResolvedStrategy(spec, strategy, kind_pure)
        self._resolved[spec] = resolved
        return resolved


#: Registry of divisor-producing strategies.
APPROXIMATORS = StrategyRegistry("approximator")
#: Registry of cover minimization strategies.
MINIMIZERS = StrategyRegistry("minimizer")


def register_approximator(
    name: str, func=None, *, parameterized: bool = False, kind_pure: bool = False
):
    """Register an approximator strategy ``(f, op) -> divisor`` by name."""
    return APPROXIMATORS.register(
        name, func, parameterized=parameterized, kind_pure=kind_pure
    )


def register_minimizer(name: str, func=None, *, parameterized: bool = False):
    """Register a minimizer strategy ``(isf) -> cover | None`` by name."""
    return MINIMIZERS.register(name, func, parameterized=parameterized)


# ---------------------------------------------------------------------------
# Built-in approximators
# ---------------------------------------------------------------------------


def _expansion_divisor(f: ISF, op: BinaryOperator, expand) -> Function:
    """Adapt a 0→1 expansion to the approximation kind ``op`` requires.

    ``expand`` maps an ISF to an :class:`ExpansionResult` whose ``g``
    over-approximates its argument.  Expanding ``f`` gives an OVER_F
    divisor, expanding ``~f`` an OVER_COMPLEMENT one, and complementing
    those yields the two UNDER kinds (``g ⊇ x.on  ⇒  ~g ∩ x.on = ∅``).

    Only the bare divisor function is returned — not the expansion's own
    2-SPP cover — so the engine minimizes ``g`` with the *requested*
    minimizer and the ``op="auto"`` ranking compares literal counts from
    one cover framework across all candidates.  Callers who want to keep
    a pre-built cover pass an explicit
    :class:`~repro.engine.request.Divisor` instead.
    """
    kind = op.approximation
    if kind in (ApproximationKind.OVER_F, ApproximationKind.ANY):
        return expand(f).g
    if kind is ApproximationKind.OVER_COMPLEMENT:
        return expand(~f).g
    if kind is ApproximationKind.UNDER_F:
        return ~expand(~f).g
    # UNDER_COMPLEMENT
    return ~expand(f).g


@register_approximator("expand-full", parameterized=True, kind_pure=True)
def _expand_full_factory(arg: str | None):
    policy = arg or "aggressive"
    if policy not in ("aggressive", "conservative"):
        raise UnknownStrategyError(
            f"expand-full policy must be 'aggressive' or 'conservative',"
            f" got {policy!r}"
        )

    def expand_full(f: ISF, op: BinaryOperator):
        from repro.approx.expansion import approximate_expand_full

        return _expansion_divisor(
            f, op, lambda isf: approximate_expand_full(isf, policy=policy)
        )

    return expand_full


@register_approximator("expand-bounded", parameterized=True, kind_pure=True)
def _expand_bounded_factory(arg: str | None):
    if arg is None:
        raise UnknownStrategyError(
            "expand-bounded needs an error budget, e.g. 'expand-bounded:0.05'"
        )
    budget = _parse_fraction(arg, "expand-bounded", "error budget")

    def expand_bounded(f: ISF, op: BinaryOperator):
        from repro.approx.expansion import approximate_expand_bounded

        return _expansion_divisor(
            f, op, lambda isf: approximate_expand_bounded(isf, budget)
        )

    return expand_bounded


@register_approximator("random", parameterized=True, kind_pure=True)
def _random_factory(arg: str | None):
    rate_text, _, seed = (arg or "0.25").partition(":")
    rate = _parse_fraction(rate_text, "random", "flip rate")

    def random_divisor(f: ISF, op: BinaryOperator) -> Function:
        from repro.approx.generic import approximation_for_operator
        from repro.engine.wire import isf_fingerprint
        from repro.utils.rng import make_rng

        # Explicit per-call seed: the spec (or user seed) mixed with the
        # approximation kind and a canonical fingerprint of f.  The rng
        # stream then depends only on *what* is approximated — never on
        # call order, process identity, or manager history — so parallel
        # workers, cache re-runs, and memoized divisors all agree.
        rng = make_rng(
            (seed or f"random:{rate}", op.approximation.name, isf_fingerprint(f))
        )
        return approximation_for_operator(f, op, rate=rate, rng=rng)

    return random_divisor


@register_approximator("exact", kind_pure=True)
def _exact_divisor(f: ISF, op: BinaryOperator) -> Function:
    """The error-free divisor: g = f (or ~f) with dc resolved.

    Yields the trivial decomposition whose quotient has maximum
    flexibility everywhere the error set is empty — useful as a
    baseline and as the endpoint of approximation sweeps.
    """
    kind = op.approximation
    if kind in (
        ApproximationKind.OVER_COMPLEMENT,
        ApproximationKind.UNDER_COMPLEMENT,
    ):
        return f.off
    return f.on


# ---------------------------------------------------------------------------
# Built-in minimizers
# ---------------------------------------------------------------------------


@register_minimizer("spp")
def _spp_minimizer(isf: ISF):
    from repro.spp.synthesis import minimize_spp

    return minimize_spp(isf)


@register_minimizer("espresso")
def _espresso_minimizer(isf: ISF):
    from repro.twolevel.espresso import espresso_minimize

    return espresso_minimize(isf)


@register_minimizer("exact")
def _exact_minimizer(isf: ISF):
    from repro.twolevel.quine_mccluskey import minimize_exact

    return minimize_exact(isf.n_vars, isf.on_minterms(), isf.dc_minterms())


@register_minimizer("none")
def _no_minimizer(isf: ISF):
    return None
