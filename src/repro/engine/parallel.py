"""Multiprocessing worker pool for batch decomposition.

Work items cross the process boundary as plain dicts: the function in
canonical :mod:`repro.bdd.serialize` form plus registry-name strategy
specs.  Each worker rebuilds the function in a fresh BDD manager that
declares exactly the variables of the parent's shared manager, runs a
fresh :class:`~repro.engine.decomposer.Decomposer`, and returns the
result as a :mod:`repro.engine.wire` payload.  Because every strategy is
deterministic (seeded RNGs, deterministic heuristics) and the managers
agree on the variable slice, a worker's payload is identical to what the
in-process path would produce — ``jobs=1`` and ``jobs=N`` runs yield the
same covers and metrics, in the same input order.

The bootstrap is split so long-lived workers (the service fleet of
:mod:`repro.service`) can reuse it with *warm* state:
:func:`build_engine` constructs the engine an item asks for, and
:func:`decompose_item` accepts an existing manager/engine pair — a
pre-warmed worker skips manager construction and keeps the engine's
divisor/cover memos across requests.  :class:`WorkerPool` keeps one
``multiprocessing`` pool alive across :func:`run_parallel` calls, so
repeated batches stop paying fork + import warmup every time.

Worker exceptions (e.g. :class:`~repro.engine.decomposer.VerificationError`)
propagate to the parent and fail the batch, matching the serial path.
"""

from __future__ import annotations

import multiprocessing


def make_work_item(
    name: str,
    f_payload: dict,
    op: str,
    approximator: str,
    minimizer: str,
    verify: bool,
    operators: tuple[str, ...],
    backend: str = "auto",
    reorder_threshold: int | None = None,
) -> dict:
    """Bundle one request as a picklable work item.

    ``operators`` is the parent engine's search space (canonical names),
    forwarded so a worker's ``op="auto"`` ranks the same candidate set.
    ``backend`` is the parent's backend spec; a worker re-resolves
    ``"auto"`` against the rebuilt function — same function, same
    support, same decision — so per-item dispatch survives the process
    boundary (and cannot change the result either way).
    ``reorder_threshold`` forwards the parent's reorder policy so warm
    workers (the service fleet) bound their managers the same way; it
    never affects results, only worker memory.
    """
    return {
        "name": name,
        "f": f_payload,
        "op": op,
        "approximator": approximator,
        "minimizer": minimizer,
        "verify": verify,
        "operators": list(operators),
        "backend": backend,
        "reorder_threshold": reorder_threshold,
    }


def engine_spec_key(item: dict) -> tuple:
    """Hashable identity of the engine a work item needs.

    Two items with the same key can share one warm
    :class:`~repro.engine.decomposer.Decomposer` (and its memos) without
    changing either result.
    """
    return (
        item["approximator"],
        item["minimizer"],
        tuple(item["operators"]),
        bool(item["verify"]),
        item.get("backend", "auto"),
        item.get("reorder_threshold"),
    )


def build_engine(item: dict):
    """Construct the engine one work item asks for (the bootstrap)."""
    from repro.engine.decomposer import Decomposer

    return Decomposer(
        approximator=item["approximator"],
        minimizer=item["minimizer"],
        operators=item["operators"],
        verify=item["verify"],
        backend=item.get("backend", "auto"),
        reorder_threshold=item.get("reorder_threshold"),
    )


def decompose_item(item: dict, mgr=None, engine=None) -> dict:
    """Run one work item and return its wire payload.

    ``mgr`` rebuilds the function into an existing (warm) manager
    instead of a fresh one — it must declare the item's variables in
    the same relative order; ``engine`` reuses an existing engine whose
    configuration matches :func:`engine_spec_key` of the item.  Both
    default to fresh construction (the one-shot pool path).  Warm or
    cold, the payload is identical: strategies are deterministic and
    memo hits return exactly what recomputation would.
    """
    from repro.engine import wire

    f = wire.isf_from_payload(item["f"], mgr)
    if engine is None:
        engine = build_engine(item)
    result = engine.decompose(f, item["op"], name=item["name"])
    return wire.result_to_payload(result)


def decompose_work_item(item: dict) -> dict:
    """Worker entry point: one item, fresh manager and engine."""
    return decompose_item(item)


def pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, POSIX) and fall back to the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class WorkerPool:
    """A persistent ``multiprocessing`` pool for repeated batches.

    ``run_parallel`` (and therefore
    :meth:`~repro.engine.decomposer.Decomposer.decompose_many`) creates
    and tears down a pool per call; callers that dispatch many batches —
    benchmark sweeps, the service layer — pass one of these instead and
    pay fork + import warmup once.  The underlying pool is created
    lazily on first use and survives until :meth:`close` (or context
    exit).  Results are unchanged either way: the pool only affects
    where work runs, never what it computes.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool = None
        #: Batches dispatched through this pool (reuse observability).
        self.batches = 0

    def map(self, func, items: list) -> list:
        """Ordered map over the persistent pool (created on first use)."""
        if self._pool is None:
            self._pool = pool_context().Pool(processes=self.jobs)
        self.batches += 1
        return self._pool.map(func, items, chunksize=1)

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"WorkerPool(jobs={self.jobs}, {state}, batches={self.batches})"


def run_parallel(
    items: list[dict], jobs: int, pool: WorkerPool | None = None
) -> list[dict]:
    """Execute work items on a pool of ``jobs`` workers.

    ``Pool.map`` returns results in submission order regardless of
    worker scheduling, so reassembly is deterministic by construction.
    With ``pool`` given, the batch runs on that persistent pool (its
    ``jobs`` count applies) instead of a fresh fork-per-call pool.
    """
    if not items:
        return []
    if pool is not None:
        return pool.map(decompose_work_item, items)
    jobs = min(jobs, len(items))
    with pool_context().Pool(processes=jobs) as mp_pool:
        return mp_pool.map(decompose_work_item, items, chunksize=1)


__all__ = [
    "WorkerPool",
    "build_engine",
    "decompose_item",
    "decompose_work_item",
    "engine_spec_key",
    "make_work_item",
    "pool_context",
    "run_parallel",
]
