"""Multiprocessing worker pool for batch decomposition.

Work items cross the process boundary as plain dicts: the function in
canonical :mod:`repro.bdd.serialize` form plus registry-name strategy
specs.  Each worker rebuilds the function in a fresh BDD manager that
declares exactly the variables of the parent's shared manager, runs a
fresh :class:`~repro.engine.decomposer.Decomposer`, and returns the
result as a :mod:`repro.engine.wire` payload.  Because every strategy is
deterministic (seeded RNGs, deterministic heuristics) and the managers
agree on the variable slice, a worker's payload is identical to what the
in-process path would produce — ``jobs=1`` and ``jobs=N`` runs yield the
same covers and metrics, in the same input order.

Worker exceptions (e.g. :class:`~repro.engine.decomposer.VerificationError`)
propagate to the parent and fail the batch, matching the serial path.
"""

from __future__ import annotations

import multiprocessing


def make_work_item(
    name: str,
    f_payload: dict,
    op: str,
    approximator: str,
    minimizer: str,
    verify: bool,
    operators: tuple[str, ...],
    backend: str = "auto",
) -> dict:
    """Bundle one request as a picklable work item.

    ``operators`` is the parent engine's search space (canonical names),
    forwarded so a worker's ``op="auto"`` ranks the same candidate set.
    ``backend`` is the parent's backend spec; a worker re-resolves
    ``"auto"`` against the rebuilt function — same function, same
    support, same decision — so per-item dispatch survives the process
    boundary (and cannot change the result either way).
    """
    return {
        "name": name,
        "f": f_payload,
        "op": op,
        "approximator": approximator,
        "minimizer": minimizer,
        "verify": verify,
        "operators": list(operators),
        "backend": backend,
    }


def decompose_work_item(item: dict) -> dict:
    """Worker entry point: run one decomposition, return its payload."""
    from repro.engine import wire
    from repro.engine.decomposer import Decomposer

    f = wire.isf_from_payload(item["f"])
    engine = Decomposer(
        approximator=item["approximator"],
        minimizer=item["minimizer"],
        operators=item["operators"],
        verify=item["verify"],
        backend=item.get("backend", "auto"),
    )
    result = engine.decompose(f, item["op"], name=item["name"])
    return wire.result_to_payload(result)


def pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, POSIX) and fall back to the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_parallel(items: list[dict], jobs: int) -> list[dict]:
    """Execute work items on a pool of ``jobs`` workers.

    ``Pool.map`` returns results in submission order regardless of
    worker scheduling, so reassembly is deterministic by construction.
    """
    if not items:
        return []
    jobs = min(jobs, len(items))
    with pool_context().Pool(processes=jobs) as pool:
        return pool.map(decompose_work_item, items, chunksize=1)


__all__ = ["decompose_work_item", "make_work_item", "pool_context", "run_parallel"]
