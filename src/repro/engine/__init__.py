"""Strategy-driven decomposition engine (the primary public API).

* :class:`~repro.engine.decomposer.Decomposer` — configurable front end
  over the paper's approximate → full-quotient → minimize → verify flow,
  with ``op="auto"`` operator search and batch execution over a shared
  BDD manager;
* :mod:`~repro.engine.registry` — named approximator and minimizer
  registries, extensible with :func:`register_approximator` and
  :func:`register_minimizer`;
* :mod:`~repro.engine.request` — :class:`DecomposeRequest` /
  :class:`DecomposeResult` artifacts carrying strategy provenance,
  per-stage timings, and literal/error metrics;
* :mod:`~repro.engine.cache` — :class:`ResultCache`, the persistent
  on-disk result store consulted before any batch work is dispatched;
* :mod:`~repro.engine.parallel` / :mod:`~repro.engine.wire` — the
  ``multiprocessing`` executor and the serialized request/result forms
  it shares with the cache.
"""

from repro.engine.cache import ResultCache
from repro.engine.decomposer import AutoSearchError, Decomposer, VerificationError
from repro.engine.registry import (
    APPROXIMATORS,
    MINIMIZERS,
    StrategyRegistry,
    UnknownStrategyError,
    register_approximator,
    register_minimizer,
)
from repro.engine.request import (
    CandidateOutcome,
    DecomposeRequest,
    DecomposeResult,
    Divisor,
)

__all__ = [
    "APPROXIMATORS",
    "AutoSearchError",
    "CandidateOutcome",
    "Decomposer",
    "DecomposeRequest",
    "DecomposeResult",
    "Divisor",
    "MINIMIZERS",
    "ResultCache",
    "StrategyRegistry",
    "UnknownStrategyError",
    "VerificationError",
    "register_approximator",
    "register_minimizer",
]
