"""Strategy-driven decomposition engine (the primary public API).

* :class:`~repro.engine.decomposer.Decomposer` — configurable front end
  over the paper's approximate → full-quotient → minimize → verify flow,
  with ``op="auto"`` operator search and batch execution over a shared
  BDD manager;
* :mod:`~repro.engine.registry` — named approximator and minimizer
  registries, extensible with :func:`register_approximator` and
  :func:`register_minimizer`;
* :mod:`~repro.engine.request` — :class:`DecomposeRequest` /
  :class:`DecomposeResult` artifacts carrying strategy provenance,
  per-stage timings, and literal/error metrics.
"""

from repro.engine.decomposer import AutoSearchError, Decomposer, VerificationError
from repro.engine.registry import (
    APPROXIMATORS,
    MINIMIZERS,
    StrategyRegistry,
    UnknownStrategyError,
    register_approximator,
    register_minimizer,
)
from repro.engine.request import (
    CandidateOutcome,
    DecomposeRequest,
    DecomposeResult,
    Divisor,
)

__all__ = [
    "APPROXIMATORS",
    "AutoSearchError",
    "CandidateOutcome",
    "Decomposer",
    "DecomposeRequest",
    "DecomposeResult",
    "Divisor",
    "MINIMIZERS",
    "StrategyRegistry",
    "UnknownStrategyError",
    "VerificationError",
    "register_approximator",
    "register_minimizer",
]
