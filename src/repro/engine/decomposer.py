"""The strategy-driven decomposition engine.

:class:`Decomposer` packages the paper's flow — approximate, compute the
full quotient with the Table II formulas, minimize, verify — behind a
configurable front end:

* strategies are looked up in the named registries of
  :mod:`repro.engine.registry` (or passed as callables / ready divisors);
* ``op="auto"`` searches all ten operators of Table I, validating the
  divisor kind per operator and ranking verified candidates by literal
  cost, then error rate;
* :meth:`Decomposer.decompose_many` runs a batch over one shared BDD
  manager, memoizing approximation and minimization sub-results across
  requests; ``jobs=N`` fans the batch out to a ``multiprocessing``
  worker pool (requests cross the boundary in canonical serialized
  form), and ``cache=<dir>`` layers a persistent on-disk result cache
  consulted before any dispatch.

Example::

    from repro import Decomposer

    engine = Decomposer(approximator="expand-full", minimizer="spp")
    result = engine.decompose(f, op="auto")
    result.decomposition.verify()   # already checked by the engine
    result.op_name, result.literal_cost, result.timings["total"]
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Iterable

from repro.backend.bitset import BitsetBDD
from repro.backend.protocol import (
    DEFAULT_BITSET_MAX_VARS,
    DEFAULT_BITSET_SUPPORT,
    BooleanFunction,
    backend_of,
    choose_backend,
)
from repro.bdd.manager import BDD, Function
from repro.bdd.ops import transfer
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import BiDecomposition
from repro.core.operators import TABLE_I_ORDER, BinaryOperator, operator_by_name
from repro.core.quotient import InvalidDivisorError, full_quotient
from repro.engine.cache import ResultCache, as_result_cache
from repro.engine.registry import APPROXIMATORS, MINIMIZERS, ResolvedStrategy
from repro.obs.trace import span as _obs_span
from repro.engine.request import (
    CandidateOutcome,
    DecomposeRequest,
    DecomposeResult,
    Divisor,
)


class VerificationError(AssertionError):
    """The decomposition failed the ``f = g op h`` care-set check."""


class AutoSearchError(RuntimeError):
    """No operator produced an acceptable decomposition under ``op="auto"``."""


def _as_divisor(raw) -> Divisor:
    """Normalize an approximator's return value to a :class:`Divisor`."""
    if isinstance(raw, Divisor):
        return raw
    if isinstance(raw, BooleanFunction):
        return Divisor(g=raw)
    g = getattr(raw, "g", None)
    if isinstance(g, BooleanFunction):
        return Divisor(g=g, g_cover=getattr(raw, "g_cover", None))
    raise TypeError(
        f"approximator must return a Function, Divisor, or object with a"
        f" .g attribute, got {raw!r}"
    )


class Decomposer:
    """Strategy-driven bi-decomposition engine (the primary public API).

    ``approximator`` and ``minimizer`` set the defaults for every
    request; both accept registry names (``"expand-full"``,
    ``"expand-bounded:0.05"``, ``"spp"``, ...) or bare callables.
    ``operators`` bounds the ``op="auto"`` search space (default: all ten
    operators of Table I, in table order).  ``verify=False`` skips the
    final care-set check (and, under auto, ranks unverified candidates).

    The engine memoizes divisors per ``(f, approximation kind)`` and
    covers per ``(isf, minimizer)``, so auto search shares one expansion
    across every operator of a family and batches share sub-results
    across requests.  Caches live on the instance; :meth:`clear_caches`
    drops them, and :attr:`stats` counts hits and misses.
    """

    def __init__(
        self,
        approximator="expand-full",
        minimizer="spp",
        operators: Iterable[str | BinaryOperator] | None = None,
        verify: bool = True,
        backend: str = "auto",
        bitset_support: int = DEFAULT_BITSET_SUPPORT,
        bitset_max_vars: int = DEFAULT_BITSET_MAX_VARS,
        reorder_threshold: int | None = None,
    ) -> None:
        self.default_approximator = approximator
        self.default_minimizer = minimizer
        self.operators: tuple[BinaryOperator, ...] = tuple(
            op if isinstance(op, BinaryOperator) else operator_by_name(op)
            for op in (operators if operators is not None else TABLE_I_ORDER)
        )
        self.verify = verify
        #: Default backend for requests that don't name one: ``"bdd"``,
        #: ``"bitset"``, or ``"auto"`` (dense fast path when a request's
        #: support is at most ``bitset_support`` and the declared space
        #: at most ``bitset_max_vars`` variables).
        self.backend = backend
        self.bitset_support = bitset_support
        self.bitset_max_vars = bitset_max_vars
        #: When set, :meth:`decompose_many` follows any auto-gc sweep
        #: that leaves more than this many live nodes with a sifting
        #: reorder of the shared manager (results are unaffected — only
        #: peak memory; see :meth:`repro.bdd.manager.BDD.reorder`).
        self.reorder_threshold = reorder_threshold
        self._divisor_cache: dict[tuple, Divisor] = {}
        self._cover_cache: dict[tuple, object] = {}
        #: One shadow manager per (backend, variable slice): converted
        #: requests of a batch share it, so equal functions hit the same
        #: divisor/cover memo entries regardless of their source manager.
        self._shadow_managers: dict[tuple, object] = {}
        self.stats = {
            "divisor_hits": 0,
            "divisor_misses": 0,
            "cover_hits": 0,
            "cover_misses": 0,
            "result_cache_hits": 0,
            "result_cache_misses": 0,
            "dispatched": 0,
            "backend_bdd": 0,
            "backend_bitset": 0,
        }

    # -- public API -------------------------------------------------------

    def decompose(
        self,
        f: ISF | Function,
        op: str | BinaryOperator = "auto",
        *,
        approximator=None,
        minimizer=None,
        verify: bool | None = None,
        backend: str | None = None,
        name: str = "",
        metadata: dict | None = None,
    ) -> DecomposeResult:
        """Decompose one function; convenience wrapper over :meth:`run`."""
        if isinstance(f, BooleanFunction):
            f = ISF.completely_specified(f)
        request = DecomposeRequest(
            f=f,
            op=op,
            approximator=approximator,
            minimizer=minimizer,
            verify=self.verify if verify is None else verify,
            backend=backend,
            name=name,
            metadata=metadata if metadata is not None else {},
        )
        return self.run(request)

    def run(self, request: DecomposeRequest) -> DecomposeResult:
        """Execute one :class:`DecomposeRequest`.

        Backend dispatch happens here, per request: the request's (or
        engine's) backend spec is resolved against the function, and a
        request whose function lives in the other representation is
        converted through the canonical serializer into a shadow
        manager, computed there, and reassembled — via the same wire
        payloads the parallel and cached paths use — against the
        original manager.  Results are therefore identical whichever
        backend computes them.
        """
        with _obs_span("engine.dispatch") as sp:
            target = self._backend_for(request)
            sp.annotate(backend=target, native=backend_of(request.f.mgr))
        self.stats[f"backend_{target}"] += 1
        if target != backend_of(request.f.mgr):
            return self._run_converted(request, target)
        return self._run_native(request)

    def _backend_for(self, request: DecomposeRequest) -> str:
        spec = request.backend if request.backend is not None else self.backend
        target = choose_backend(
            request.f,
            spec,
            support_threshold=self.bitset_support,
            max_vars=self.bitset_max_vars,
        )
        native = backend_of(request.f.mgr)
        if target == native:
            return target
        approx_spec = (
            request.approximator
            if request.approximator is not None
            else self.default_approximator
        )
        min_spec = (
            request.minimizer
            if request.minimizer is not None
            else self.default_minimizer
        )
        if spec == "auto":
            # Auto never converts user-supplied artifacts: callables may
            # capture the source manager, and ready divisors/covers are
            # passed through by object identity on the native path.
            if isinstance(approx_spec, str) and isinstance(min_spec, str):
                return target
            return native
        if isinstance(approx_spec, (str, Divisor, BooleanFunction)) and isinstance(
            min_spec, str
        ):
            return target
        raise ValueError(
            f"backend={spec!r} needs registry-name strategies (or a ready"
            " divisor) — callables cannot follow the function into another"
            " representation"
        )

    def _run_converted(
        self, request: DecomposeRequest, target: str
    ) -> DecomposeResult:
        """Compute in a shadow manager of ``target``'s backend.

        The function (and a ready divisor, if any) is transferred into
        the shadow, the pipeline runs natively there, and the derived
        functions are transferred back — the structural equivalent of a
        wire round trip (covers and metrics are representation-free and
        pass through), so callers always receive results in the manager
        they asked in, identical to what the native path would produce.
        """
        from repro.core.bidecomposition import BiDecomposition

        shadow = self._shadow_manager(target, request.f.mgr.var_names)
        converted = ISF(
            transfer(request.f.on, shadow), transfer(request.f.dc, shadow)
        )
        approx = request.approximator
        if isinstance(approx, BooleanFunction):
            approx = transfer(approx, shadow)
        elif isinstance(approx, Divisor):
            approx = Divisor(
                g=transfer(approx.g, shadow),
                g_cover=approx.g_cover,
                name=approx.name,
            )
        inner = replace(request, f=converted, approximator=approx, backend=target)
        computed = self._run_native(inner)
        inner_dec = computed.decomposition
        mgr = request.f.mgr
        decomposition = BiDecomposition(
            f=request.f,
            op=inner_dec.op,
            g=transfer(inner_dec.g, mgr),
            h=ISF(transfer(inner_dec.h.on, mgr), transfer(inner_dec.h.dc, mgr)),
            g_cover=inner_dec.g_cover,
            h_cover=inner_dec.h_cover,
            metadata=dict(inner_dec.metadata),
        )
        return DecomposeResult(
            decomposition=decomposition,
            request=request,
            op_name=computed.op_name,
            approximator_name=computed.approximator_name,
            minimizer_name=computed.minimizer_name,
            timings=computed.timings,
            literal_cost=computed.literal_cost,
            error_rate=computed.error_rate,
            verified=computed.verified,
            candidates=computed.candidates,
            bdd_stats=computed.bdd_stats,
        )

    def _shadow_manager(self, target: str, var_names: tuple[str, ...]):
        key = (target, tuple(var_names))
        shadow = self._shadow_managers.get(key)
        if shadow is None:
            shadow = BitsetBDD(var_names) if target == "bitset" else BDD(var_names)
            self._shadow_managers[key] = shadow
        return shadow

    def _run_native(self, request: DecomposeRequest) -> DecomposeResult:
        """Run the pipeline in the function's own manager."""
        approx_spec = (
            request.approximator
            if request.approximator is not None
            else self.default_approximator
        )
        min_spec = (
            request.minimizer
            if request.minimizer is not None
            else self.default_minimizer
        )
        minimizer = MINIMIZERS.resolve(min_spec)
        timings = {"approximate": 0.0, "quotient": 0.0, "minimize": 0.0, "verify": 0.0}
        start = perf_counter()
        if isinstance(request.op, str) and request.op.lower() == "auto":
            result = self._run_auto(request, approx_spec, minimizer, timings)
        else:
            result = self._run_single(request, approx_spec, minimizer, timings)
        result.timings = timings
        result.bdd_stats = request.f.mgr.stats()
        timings["total"] = perf_counter() - start
        return result

    def decompose_many(
        self,
        functions: Iterable,
        op: str | BinaryOperator = "auto",
        *,
        approximator=None,
        minimizer=None,
        verify: bool | None = None,
        backend: str | None = None,
        mgr: BDD | None = None,
        jobs: int = 1,
        cache: "ResultCache | str | None" = None,
        gc_threshold: int | None = 500_000,
        reorder_threshold: int | None = None,
        executor: "object | None" = None,
    ) -> list[DecomposeResult]:
        """Decompose a batch of functions over one shared BDD manager.

        ``functions`` yields ``ISF`` / ``Function`` items or
        ``(name, item)`` pairs.  When the items live in different
        managers they are transferred (by variable name) into a single
        shared manager — ``mgr`` if given, else a fresh manager declaring
        the union of the variables in first-seen order — so the whole
        batch shares one unique table, one operation cache, and this
        engine's divisor/cover memos.

        ``jobs > 1`` ships the requests (in canonical serialized form) to
        a ``multiprocessing`` worker pool and reassembles the results in
        input order; the covers and metrics are identical to a ``jobs=1``
        run.  ``cache`` — a :class:`~repro.engine.cache.ResultCache` or a
        directory path — is consulted *before* any work is dispatched and
        updated with every computed result, so a warm re-run completes
        from disk alone.  Both features require registry-name strategies
        and a named (or ``"auto"``) operator; with callables the cache is
        bypassed and ``jobs > 1`` raises :class:`ValueError`.

        ``gc_threshold`` bounds the shared manager's growth on long
        serial batches: whenever its node count exceeds the threshold
        between requests, :meth:`repro.bdd.manager.BDD.gc` reclaims
        nodes unreachable from live handles (results computed so far,
        pending inputs, and engine memos all hold handles, so reclaim
        never changes results — only memory).  ``None`` disables it.
        ``reorder_threshold`` (default: the engine's
        ``reorder_threshold``) escalates a sweep that still leaves more
        live nodes than the threshold to a sifting reorder of the shared
        manager — a stronger memory lever with the same no-observable-
        effect guarantee (covers, networks, serialized payloads, and
        cache keys are all declaration-order-normalized).

        ``backend`` overrides the engine default per batch; dispatch is
        still **per item** (``"auto"`` sends each function to the
        cheapest representation for *its* support — a mixed batch uses
        the bitset fast path for the small-support items and BDDs for
        the rest).  The backend never enters cache keys or payloads:
        results are identical either way, so warm caches are shared
        across backends.

        ``executor`` — a :class:`~repro.engine.parallel.WorkerPool` —
        keeps one worker pool alive across ``decompose_many`` calls:
        repeated batches skip the per-call fork + import warmup.  It
        implies parallel dispatch (the executor's ``jobs`` count
        applies) and has the same wire-safety requirements as
        ``jobs > 1``.  Results are identical with or without it.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        parallel_dispatch = jobs > 1 or executor is not None
        labeled: list[tuple[str, ISF]] = []
        for index, item in enumerate(functions):
            if isinstance(item, tuple):
                label, value = item
            else:
                label, value = f"f{index}", item
            if isinstance(value, Function):
                value = ISF.completely_specified(value)
            labeled.append((str(label), value))

        shared = self._shared_manager([isf for _, isf in labeled], mgr)
        # The input counts of the original functions, before the transfer
        # into the (possibly wider) shared manager.
        batch = [
            (label, self._transfer_isf(isf, shared), isf.n_vars)
            for label, isf in labeled
        ]

        approx_spec = (
            approximator if approximator is not None else self.default_approximator
        )
        min_spec = minimizer if minimizer is not None else self.default_minimizer
        verify_flag = self.verify if verify is None else verify
        op_spec = self._wire_op(op)
        wire_safe = (
            op_spec is not None
            and isinstance(approx_spec, str)
            and isinstance(min_spec, str)
        )
        if parallel_dispatch and not wire_safe:
            raise ValueError(
                "decompose_many(jobs>1 or executor=) needs registry-name"
                " strategies and a named (or 'auto') operator — callables"
                " and ready divisors cannot cross process boundaries"
            )
        result_cache = as_result_cache(cache) if wire_safe else None
        # The auto-search space is part of a result's identity: forward it
        # to workers and (for op="auto") into the cache key, so engines
        # configured with different operator sets never share results.
        operator_names = tuple(o.name for o in self.operators)

        from repro.bdd.serialize import SerializationError
        from repro.engine import wire

        results: list[DecomposeResult | None] = [None] * len(batch)
        keys: list[str | None] = [None] * len(batch)
        payloads: list[dict | None] = [None] * len(batch)
        pending: list[int] = []
        for index, (label, isf, _) in enumerate(batch):
            if result_cache is None and not parallel_dispatch:
                pending.append(index)
                continue
            payloads[index] = wire.isf_to_payload(isf)
            if result_cache is None:
                pending.append(index)
                continue
            keys[index] = result_cache.key_for(
                payloads[index], op_spec, approx_spec, min_spec, verify_flag,
                operators=operator_names,
            )
            hit = result_cache.get(keys[index])
            if hit is not None:
                try:
                    results[index] = wire.result_from_payload(
                        hit, self._batch_request(batch[index], op_spec,
                                                 approx_spec, min_spec,
                                                 verify_flag)
                    )
                    self.stats["result_cache_hits"] += 1
                    continue
                except SerializationError:
                    # Stale or corrupt inner payload: a miss, not an error.
                    result_cache.stats["hits"] -= 1
                    result_cache.stats["misses"] += 1
                    result_cache.stats["corrupt"] += 1
            self.stats["result_cache_misses"] += 1
            pending.append(index)

        backend_spec = backend if backend is not None else self.backend
        reorder_spec = (
            reorder_threshold
            if reorder_threshold is not None
            else self.reorder_threshold
        )
        if pending and parallel_dispatch:
            from repro.engine.parallel import make_work_item, run_parallel

            items = [
                make_work_item(
                    batch[index][0],
                    payloads[index],
                    op_spec,
                    approx_spec,
                    min_spec,
                    verify_flag,
                    operator_names,
                    backend=backend_spec,
                    reorder_threshold=reorder_spec,
                )
                for index in pending
            ]
            self.stats["dispatched"] += len(items)
            for index, payload in zip(
                pending, run_parallel(items, jobs, pool=executor)
            ):
                results[index] = wire.result_from_payload(
                    payload, self._batch_request(batch[index], op_spec,
                                                 approx_spec, min_spec,
                                                 verify_flag)
                )
                if result_cache is not None:
                    result_cache.put(keys[index], payload)
        else:
            # Hysteresis for the auto-gc trigger: a batch pins nodes
            # monotonically (inputs, results, engine memos), so once the
            # live set alone exceeds the threshold a fixed trigger would
            # sweep after every request while reclaiming nothing.  After
            # each collection, back off to twice the surviving size.
            effective_threshold = gc_threshold
            effective_reorder = reorder_spec
            for index in pending:
                label, isf, original_n_vars = batch[index]
                result = self.decompose(
                    isf,
                    op,
                    approximator=approximator,
                    minimizer=minimizer,
                    verify=verify,
                    backend=backend_spec,
                    name=label,
                    metadata={"n_vars": original_n_vars},
                )
                results[index] = result
                if result_cache is not None:
                    result_cache.put(keys[index], wire.result_to_payload(result))
                if effective_threshold is not None and shared is not None:
                    # Converted requests accumulate nodes in shadow
                    # managers, not the shared one — bound the *total*.
                    live = shared.node_count() + sum(
                        shadow.node_count()
                        for shadow in self._shadow_managers.values()
                    )
                    if live > effective_threshold:
                        # Safe point: no apply in flight between requests.
                        shared.gc()
                        for shadow in self._shadow_managers.values():
                            shadow.gc()
                        live = shared.node_count() + sum(
                            shadow.node_count()
                            for shadow in self._shadow_managers.values()
                        )
                        if (
                            effective_reorder is not None
                            and live > effective_reorder
                        ):
                            # Collection alone did not get under the
                            # reorder bound — sift the live managers.
                            # Reorder is observable only through peak
                            # node counts: every result, dump, and
                            # cache key is declaration-order-normalized.
                            shared.reorder()
                            for shadow in self._shadow_managers.values():
                                sift = getattr(shadow, "reorder", None)
                                if sift is not None:
                                    sift()
                            live = shared.node_count() + sum(
                                shadow.node_count()
                                for shadow in self._shadow_managers.values()
                            )
                        effective_threshold = max(effective_threshold, 2 * live)
        return results

    @staticmethod
    def _wire_op(op: str | BinaryOperator) -> str | None:
        """Canonical operator name for cache keys and work items."""
        if isinstance(op, BinaryOperator):
            return op.name
        if not isinstance(op, str):
            return None
        if op.lower() == "auto":
            return "auto"
        return operator_by_name(op).name

    @staticmethod
    def _batch_request(
        entry: tuple[str, ISF, int],
        op_spec: str,
        approx_spec: str,
        min_spec: str,
        verify_flag: bool,
    ) -> DecomposeRequest:
        """Parent-side request for a result computed off-process or cached."""
        label, isf, original_n_vars = entry
        return DecomposeRequest(
            f=isf,
            op=op_spec,
            approximator=approx_spec,
            minimizer=min_spec,
            verify=verify_flag,
            name=label,
            metadata={"n_vars": original_n_vars},
        )

    def clear_caches(self) -> None:
        """Drop the divisor/cover memos and shadow managers (stats kept).

        The memos hold function handles inside the shadow managers, so
        both are dropped together — a dangling shadow would otherwise
        keep every memoized sub-result's nodes alive.
        """
        self._divisor_cache.clear()
        self._cover_cache.clear()
        self._shadow_managers.clear()

    # -- batch manager sharing -------------------------------------------

    @staticmethod
    def _shared_manager(isfs: list[ISF], mgr: BDD | None) -> BDD | None:
        if mgr is not None:
            return mgr
        managers = []
        for isf in isfs:
            if isf.mgr not in managers:
                managers.append(isf.mgr)
        if len(managers) <= 1:
            return managers[0] if managers else None
        # Topologically merge the per-manager variable orders so every
        # source order embeds in the shared one (a naive first-seen union
        # would reject compatible interleavings like [x1,x3] + [x1,x2,x3]).
        successors: dict[str, set[str]] = {}
        indegree: dict[str, int] = {}
        first_seen: dict[str, int] = {}
        for manager in managers:
            order = manager.var_names
            for name in order:
                indegree.setdefault(name, 0)
                successors.setdefault(name, set())
                first_seen.setdefault(name, len(first_seen))
            for above, below in zip(order, order[1:]):
                if below not in successors[above]:
                    successors[above].add(below)
                    indegree[below] += 1
        names: list[str] = []
        ready = [name for name in indegree if indegree[name] == 0]
        while ready:
            ready.sort(key=first_seen.__getitem__)
            name = ready.pop(0)
            names.append(name)
            for below in successors[name]:
                indegree[below] -= 1
                if indegree[below] == 0:
                    ready.append(below)
        if len(names) != len(indegree):
            raise ValueError(
                "variable orders of the batch managers are incompatible"
            )
        return BDD(names)

    @staticmethod
    def _transfer_isf(isf: ISF, shared: BDD | None) -> ISF:
        if shared is None or isf.mgr is shared:
            return isf
        return ISF(transfer(isf.on, shared), transfer(isf.dc, shared))

    # -- single-operator path --------------------------------------------

    def _run_single(
        self,
        request: DecomposeRequest,
        approx_spec,
        minimizer: ResolvedStrategy,
        timings: dict[str, float],
    ) -> DecomposeResult:
        op = (
            operator_by_name(request.op)
            if isinstance(request.op, str)
            else request.op
        )
        approx_name, decomposition = self._candidate(
            request.f, op, approx_spec, minimizer, timings
        )
        verified = False
        if request.verify:
            verified = self._verify(decomposition, timings)
            if not verified:
                raise VerificationError(
                    f"bi-decomposition verification failed for operator"
                    f" {op.name}"
                )
        literal_cost = decomposition.literal_cost()
        error_rate = decomposition.error_rate()
        return DecomposeResult(
            decomposition=decomposition,
            request=request,
            op_name=op.name,
            approximator_name=approx_name,
            minimizer_name=minimizer.name,
            literal_cost=literal_cost,
            error_rate=error_rate,
            verified=verified,
            candidates=[
                CandidateOutcome(op.name, verified, literal_cost, error_rate)
            ],
        )

    # -- operator auto-search --------------------------------------------

    def _run_auto(
        self,
        request: DecomposeRequest,
        approx_spec,
        minimizer: ResolvedStrategy,
        timings: dict[str, float],
    ) -> DecomposeResult:
        outcomes: list[CandidateOutcome] = []
        best = None  # ((literal_cost, error_rate), outcome, decomposition, name)
        for op in self.operators:
            try:
                approx_name, decomposition = self._candidate(
                    request.f, op, approx_spec, minimizer, timings
                )
            except InvalidDivisorError as exc:
                outcomes.append(
                    CandidateOutcome(op.name, False, reason=str(exc))
                )
                continue
            # Mirror the single-operator path: verify=False skips the
            # care-set check entirely and ranks unverified candidates.
            verified = (
                self._verify(decomposition, timings) if request.verify else False
            )
            literal_cost = decomposition.literal_cost()
            error_rate = decomposition.error_rate()
            outcome = CandidateOutcome(
                op.name,
                verified,
                literal_cost,
                error_rate,
                "" if verified or not request.verify else "verification failed",
            )
            outcomes.append(outcome)
            if request.verify and not verified:
                continue
            rank = (literal_cost, error_rate)
            if best is None or rank < best[0]:
                best = (rank, outcome, decomposition, approx_name)
        if best is None:
            raise AutoSearchError(
                f"op='auto': none of {[op.name for op in self.operators]}"
                f" produced a"
                f"{' verified' if request.verify else 'n acceptable'}"
                f" decomposition with approximator {approx_spec!r}"
            )
        _rank, outcome, decomposition, approx_name = best
        return DecomposeResult(
            decomposition=decomposition,
            request=request,
            op_name=outcome.op_name,
            approximator_name=approx_name,
            minimizer_name=minimizer.name,
            literal_cost=outcome.literal_cost,
            error_rate=outcome.error_rate,
            verified=outcome.verified,
            candidates=outcomes,
        )

    # -- stages -----------------------------------------------------------

    def _candidate(
        self,
        f: ISF,
        op: BinaryOperator,
        approx_spec,
        minimizer: ResolvedStrategy,
        timings: dict[str, float],
    ) -> tuple[str, BiDecomposition]:
        approx_name, divisor = self._divisor(f, op, approx_spec, timings)

        t0 = perf_counter()
        with _obs_span("engine.quotient", op=op.name):
            h = full_quotient(f, divisor.g, op)
        timings["quotient"] += perf_counter() - t0

        t0 = perf_counter()
        with _obs_span("engine.minimize", op=op.name, minimizer=minimizer.name):
            g_cover = divisor.g_cover
            if g_cover is None:
                g_cover = self._minimize(
                    ISF.completely_specified(divisor.g), minimizer
                )
            h_cover = self._minimize(h, minimizer)
        timings["minimize"] += perf_counter() - t0

        decomposition = BiDecomposition(
            f=f,
            op=op,
            g=divisor.g,
            h=h,
            g_cover=g_cover,
            h_cover=h_cover,
            metadata={
                "approximator": approx_name,
                "minimizer": minimizer.name,
            },
        )
        return approx_name, decomposition

    def _divisor(
        self,
        f: ISF,
        op: BinaryOperator,
        approx_spec,
        timings: dict[str, float],
    ) -> tuple[str, Divisor]:
        if isinstance(approx_spec, BooleanFunction):
            approx_spec = Divisor(g=approx_spec)
        if isinstance(approx_spec, Divisor):
            # A ready divisor: validated per-operator by full_quotient.
            return approx_spec.name or "<given>", approx_spec
        resolved = APPROXIMATORS.resolve(approx_spec)
        # Key on the resolved callable (stable per registry spec), not the
        # display name: distinct ad-hoc callables may share a __name__.
        key = (
            f,
            op.approximation if resolved.kind_pure else op.name,
            resolved.func,
        )
        cached = self._divisor_cache.get(key)
        if cached is not None:
            self.stats["divisor_hits"] += 1
            return resolved.name, cached
        self.stats["divisor_misses"] += 1
        t0 = perf_counter()
        with _obs_span("engine.approximate", op=op.name, approximator=resolved.name):
            divisor = _as_divisor(resolved.func(f, op))
        timings["approximate"] += perf_counter() - t0
        self._divisor_cache[key] = divisor
        return resolved.name, divisor

    def _minimize(self, isf: ISF, minimizer: ResolvedStrategy):
        key = (isf, minimizer.func)
        if key in self._cover_cache:
            self.stats["cover_hits"] += 1
            return self._cover_cache[key]
        self.stats["cover_misses"] += 1
        cover = minimizer.func(isf)
        self._cover_cache[key] = cover
        return cover

    @staticmethod
    def _verify(decomposition: BiDecomposition, timings: dict[str, float]) -> bool:
        t0 = perf_counter()
        with _obs_span("engine.verify", op=decomposition.op.name):
            verified = decomposition.verify()
        timings["verify"] += perf_counter() - t0
        return verified
