"""Request/result artifacts of the decomposition engine.

A :class:`DecomposeRequest` names *what* to decompose and with which
strategies; a :class:`DecomposeResult` carries the verified
:class:`~repro.core.bidecomposition.BiDecomposition` together with the
strategy names that produced it, per-stage wall-clock timings, and the
literal/error metrics the engine ranked candidates by.  Keeping both as
first-class values (rather than positional arguments and bare return
tuples) is what lets multi-operator and batch workloads stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bdd.manager import Function
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import BiDecomposition
from repro.core.operators import BinaryOperator


@dataclass
class Divisor:
    """A ready divisor ``g``, optionally with a pre-minimized cover.

    Approximators may return one of these (or anything with the same
    ``g``/``g_cover`` attributes, e.g.
    :class:`~repro.approx.expansion.ExpansionResult`) to spare the engine
    a re-minimization of ``g``.
    """

    g: Function
    g_cover: object | None = None
    name: str = ""


@dataclass
class DecomposeRequest:
    """One unit of work for :class:`~repro.engine.Decomposer`.

    ``op`` is an operator name, a :class:`BinaryOperator`, or ``"auto"``
    to search all registered operators.  ``approximator`` / ``minimizer``
    override the engine defaults; each may be a registry name (with an
    optional ``:arg`` parameter), a bare callable, or — for the
    approximator — a ready divisor (:class:`~repro.bdd.manager.Function`
    or :class:`Divisor`).  ``None`` means "use the engine default".
    """

    f: ISF
    op: str | BinaryOperator = "auto"
    approximator: object | None = None
    minimizer: str | Callable | None = None
    #: Verify ``f = g op h`` and fail (or, under auto, skip the candidate)
    #: when the check does not hold.
    verify: bool = True
    #: Function-representation backend: ``"bdd"``, ``"bitset"``, or
    #: ``"auto"`` (pick the bitset fast path when the function's support
    #: fits a dense truth table, fall back to BDDs otherwise).  ``None``
    #: means "use the engine default".  The backend never changes the
    #: result — covers, metrics, serialized payloads, and cache keys are
    #: identical either way — only how fast it is computed.
    backend: str | None = None
    #: Optional label carried through to the result (benchmarks, batches).
    name: str = ""
    metadata: dict = field(default_factory=dict)


@dataclass
class CandidateOutcome:
    """Outcome of one operator tried during ``op="auto"`` search."""

    op_name: str
    verified: bool
    literal_cost: int | None = None
    error_rate: float | None = None
    #: Why the candidate was rejected ("" for the eligible ones).
    reason: str = ""

    def to_dict(self) -> dict:
        """Plain-dict form for JSON output."""
        return {
            "op": self.op_name,
            "verified": self.verified,
            "literal_cost": self.literal_cost,
            "error_rate": self.error_rate,
            "reason": self.reason,
        }


@dataclass
class DecomposeResult:
    """A decomposition plus the provenance and metrics that produced it."""

    decomposition: BiDecomposition
    request: DecomposeRequest
    #: Canonical name of the operator actually used.
    op_name: str
    #: Resolved strategy names ("expand-full", "spp", ...).
    approximator_name: str
    minimizer_name: str
    #: Wall-clock seconds per stage: ``approximate``, ``quotient``,
    #: ``minimize``, ``verify``, and ``total``.  Memoized sub-results
    #: contribute no time, so batch timings reflect real work only.
    timings: dict[str, float] = field(default_factory=dict)
    #: Total 2-SPP/SOP literals of the realized g and h covers.
    literal_cost: int = 0
    #: Fraction of the Boolean space flipped by the approximation.
    error_rate: float = 0.0
    verified: bool = False
    #: Under ``op="auto"``: every operator tried, in search order.
    candidates: list[CandidateOutcome] = field(default_factory=list)
    #: :meth:`repro.bdd.manager.BDD.stats` snapshot of the manager that
    #: computed this result (worker-side for parallel runs), or ``None``
    #: when the result was reassembled from a payload without one.  Not
    #: part of the result's identity: excluded from :meth:`to_dict` so
    #: cached, serial, and parallel runs stay comparable.
    bdd_stats: dict | None = None

    @property
    def name(self) -> str:
        """The request label (for batch reporting)."""
        return self.request.name

    def to_dict(self) -> dict:
        """Machine-readable summary (the CLI ``--json`` payload)."""
        return {
            "name": self.request.name,
            "op": self.op_name,
            "approximator": self.approximator_name,
            "minimizer": self.minimizer_name,
            # Batched requests record the pre-transfer input count; the
            # shared manager may declare more variables than f uses.
            "n_vars": self.request.metadata.get("n_vars", self.request.f.n_vars),
            "verified": self.verified,
            "literal_cost": self.literal_cost,
            "error_rate": self.error_rate,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "candidates": [c.to_dict() for c in self.candidates],
        }
