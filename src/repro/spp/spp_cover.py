"""Sums of pseudoproducts (2-SPP covers)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.bdd.manager import BDD, Function
from repro.cover.cover import Cover
from repro.spp.pseudocube import Pseudocube


class SppCover:
    """An OR of 2-pseudoproducts — a three-level XOR-AND-OR form."""

    __slots__ = ("n_vars", "pseudocubes")

    def __init__(self, n_vars: int, pseudocubes: Iterable[Pseudocube] = ()) -> None:
        self.n_vars = n_vars
        self.pseudocubes: list[Pseudocube] = []
        for pc in pseudocubes:
            if pc.n_vars != n_vars:
                raise ValueError("pseudocube arity mismatch")
            self.pseudocubes.append(pc)

    @classmethod
    def from_cover(cls, cover: Cover) -> "SppCover":
        """Lift a plain SOP cover (no XOR factors yet)."""
        return cls(cover.n_vars, [Pseudocube.from_cube(c) for c in cover.cubes])

    # -- container behaviour ------------------------------------------------
    def __len__(self) -> int:
        return len(self.pseudocubes)

    def __iter__(self) -> Iterator[Pseudocube]:
        return iter(self.pseudocubes)

    def __getitem__(self, index: int) -> Pseudocube:
        return self.pseudocubes[index]

    def __repr__(self) -> str:
        return (
            f"SppCover({len(self.pseudocubes)} pseudoproducts,"
            f" {self.literal_count()} literals)"
        )

    def copy(self) -> "SppCover":
        """Shallow copy (pseudocubes are immutable)."""
        return SppCover(self.n_vars, list(self.pseudocubes))

    # -- measures ----------------------------------------------------------------
    def literal_count(self) -> int:
        """2-SPP literal cost (2 per XOR factor, 1 per plain literal)."""
        return sum(pc.literal_count for pc in self.pseudocubes)

    def pseudoproduct_count(self) -> int:
        """Number of pseudoproducts (OR-gate fan-in)."""
        return len(self.pseudocubes)

    def xor_factor_count(self) -> int:
        """Total number of XOR factors across the cover."""
        return sum(len(pc.xors) for pc in self.pseudocubes)

    def cost(self) -> tuple[int, int]:
        """Lexicographic cost ``(pseudoproducts, literals)``."""
        return self.pseudoproduct_count(), self.literal_count()

    # -- semantics ------------------------------------------------------------------
    def contains_minterm(self, minterm: int) -> bool:
        """Evaluate the form on a minterm index."""
        return any(pc.contains_minterm(minterm) for pc in self.pseudocubes)

    def to_function(self, mgr: BDD) -> Function:
        """Build the BDD of the form."""
        result = mgr.false
        for pc in self.pseudocubes:
            result = result | pc.to_function(mgr)
        return result

    def to_expression(self, names) -> str:
        """Human-readable XOR-AND-OR expression."""
        if not self.pseudocubes:
            return "0"
        return " | ".join(pc.to_expression(names) for pc in self.pseudocubes)

    def is_plain_sop(self) -> bool:
        """True iff no pseudoproduct uses an XOR factor."""
        return all(pc.is_plain_cube for pc in self.pseudocubes)

    def to_cover(self) -> Cover:
        """Convert to a plain cover (requires :meth:`is_plain_sop`)."""
        return Cover(self.n_vars, [pc.to_cube() for pc in self.pseudocubes])
