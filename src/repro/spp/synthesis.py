"""2-SPP synthesis algorithms.

Two engines, dispatched by :func:`minimize_spp`:

* **exact** (small arity): enumerate all *maximal* pseudocubes of the
  interval ``[on, on ∪ dc]`` (no factor can be dropped and no literal
  pair can be weakened to an XOR factor without leaving the interval) and
  solve a minimum-cost covering problem over the on-set.  Expansion moves
  never increase the 2-SPP literal count, so an optimal cover made of
  maximal pseudocubes is globally optimal for the lexicographic
  ``(pseudoproducts, literals)`` cost.
* **heuristic** (benchmark arity): start from an espresso-minimized SOP
  cover, repeatedly (a) merge pseudocube pairs whose union is again a
  pseudocube — the move that creates XOR factors, e.g.
  ``x1 x3' x4 + x1 x3 x4' = x1 (x3 ^ x4)`` — (b) expand factors against
  the off-set, and (c) remove redundant pseudoproducts, until the cost
  stops improving.

The heuristic inner loops run mask-natively on ``(pos, neg, xors)``
triples (see :mod:`repro.cover.algebra` for the SOP-side counterpart):
merge scans, expansion candidates and irredundancy items are plain
tuples, and :class:`~repro.spp.pseudocube.Pseudocube` /
:class:`~repro.spp.spp_cover.SppCover` objects materialize only at the
API boundaries.  The original pseudocube-object passes are retained
(``algebra=False``) as the reference implementation for the
differential tests and the on/off ablation benchmark; both paths issue
the identical oracle-call sequence and produce byte-identical covers.
"""

from __future__ import annotations

from repro.bdd.manager import BDD, Function
from repro.boolfunc.isf import ISF
from repro.cover.cover import Cover
from repro.spp.pseudocube import Pseudocube, XorFactor, make_xor_factor
from repro.spp.spp_cover import SppCover
from repro.twolevel.chains import ChainMemo, irredundant_sweep
from repro.twolevel.covering import CoveringProblem, solve_covering
from repro.twolevel.espresso import espresso_minimize
from repro.cover.cube import Cube
from repro.utils.bitops import bit_indices

#: A pseudoproduct in the mask-native loops: ``(pos, neg, xors)`` with
#: the same conventions as :class:`Pseudocube` attributes.
_NO_XORS: frozenset[XorFactor] = frozenset()


def _triple_of(pc: Pseudocube) -> tuple[int, int, frozenset[XorFactor]]:
    return (pc.pos, pc.neg, pc.xors)


def _triple_literal_count(triple: tuple) -> int:
    pos, neg, xors = triple
    return (pos | neg).bit_count() + 2 * len(xors)


# ---------------------------------------------------------------------------
# Mask-native passes (primary path)
# ---------------------------------------------------------------------------


def _try_merge_masks(a: tuple, b: tuple) -> tuple | None:
    """Merge two pseudocube triples if their union is again a pseudocube.

    Mask-native counterpart of :func:`_try_merge`; no ``Pseudocube`` is
    built for rejected pairs (the overwhelming majority of the O(n²)
    scan in :func:`_merge_fixpoint_masks`).
    """
    a_pos, a_neg, a_xors = a
    b_pos, b_neg, b_xors = b
    if a_xors == b_xors:
        if (a_pos | a_neg) != (b_pos | b_neg):
            return None
        conflict = (a_pos & b_neg) | (a_neg & b_pos)
        agree = (a_pos ^ b_pos) | (a_neg ^ b_neg)
        if agree != conflict:
            return None  # same bound set but inconsistent literal patterns
        count = conflict.bit_count()
        if count == 1:
            # Classic distance-1 merge: drop the conflicting literal.
            return (a_pos & ~conflict, a_neg & ~conflict, a_xors)
        if count == 2:
            # Opposite polarities on two variables: forms an XOR factor.
            low = conflict & -conflict
            high = conflict ^ low
            var_a = low.bit_length() - 1
            var_b = high.bit_length() - 1
            value_a = 1 if a_pos & low else 0
            value_b = 1 if a_pos & high else 0
            factor = make_xor_factor(var_a, var_b, value_a ^ value_b)
            return (
                a_pos & ~conflict,
                a_neg & ~conflict,
                a_xors | {factor},
            )
        return None
    if a_pos == b_pos and a_neg == b_neg:
        difference = a_xors ^ b_xors
        if len(difference) == 2:
            first, second = sorted(difference)
            if (
                first.i == second.i
                and first.j == second.j
                and first.phase != second.phase
            ):
                # Both phases of the same XOR pair: the factor cancels.
                own = first if first in a_xors else second
                return (a_pos, a_neg, a_xors - {own})
    return None


def _merge_fixpoint_masks(triples: list[tuple]) -> list[tuple]:
    """Apply pairwise merges until none applies (mask-native)."""
    pseudocubes = list(dict.fromkeys(triples))
    merged = True
    while merged:
        merged = False
        count = len(pseudocubes)
        for index_a in range(count):
            if merged:
                break
            for index_b in range(index_a + 1, count):
                union = _try_merge_masks(
                    pseudocubes[index_a], pseudocubes[index_b]
                )
                if union is not None:
                    rest = [
                        triple
                        for position, triple in enumerate(pseudocubes)
                        if position not in (index_a, index_b)
                    ]
                    rest.append(union)
                    pseudocubes = list(dict.fromkeys(rest))
                    merged = True
                    break
    return pseudocubes


def _spp_expand_masks(
    triples: list[tuple],
    off: Function,
    mgr: BDD,
    memo: "ExpandMemo | None" = None,
) -> list[tuple]:
    """Expand each pseudoproduct triple against the off-set.

    Same move order and memo discipline as the reference
    :func:`_spp_expand` — factor drops first, then literal-pair
    weakenings — but candidates live and die as plain masks; nothing is
    allocated on rejection and no ``Pseudocube`` is built at all.
    """
    if memo is None:
        def region_ok(pos: int, neg: int, xors: frozenset) -> bool:
            return mgr.spp_product(pos, neg, xors).disjoint(off)

        dead_ends = None
    else:
        accept_memo = memo.accept
        dead_ends = memo.dead_ends

        def region_ok(pos: int, neg: int, xors: frozenset) -> bool:
            key = (pos, neg, xors)
            verdict = accept_memo.get(key)
            if verdict is None:
                verdict = mgr.spp_product(pos, neg, xors).disjoint(off)
                accept_memo[key] = verdict
            return verdict

    expanded: list[tuple] = []
    order = sorted(triples, key=lambda t: -_triple_literal_count(t))
    for triple in order:
        if dead_ends is not None and triple in dead_ends:
            expanded.append(triple)
            continue
        current = triple
        changed = True
        while changed:
            changed = False
            pos, neg, xors = current
            for var in bit_indices(pos):
                bit = 1 << var
                if region_ok(pos & ~bit, neg | bit, xors):
                    current = (pos & ~bit, neg & ~bit, xors)
                    changed = True
                    break
            if changed:
                continue
            for var in bit_indices(neg):
                bit = 1 << var
                if region_ok(pos | bit, neg & ~bit, xors):
                    current = (pos & ~bit, neg & ~bit, xors)
                    changed = True
                    break
            if changed:
                continue
            for factor in sorted(xors):
                flipped = (xors - {factor}) | {
                    XorFactor(factor.i, factor.j, factor.phase ^ 1)
                }
                if region_ok(pos, neg, frozenset(flipped)):
                    current = (pos, neg, xors - {factor})
                    changed = True
                    break
            if changed:
                continue
            # Same order as the factors() literal walk: positive
            # literals by ascending variable, then negative ones.
            literal_vars = list(bit_indices(pos)) + list(bit_indices(neg))
            for position, var_a in enumerate(literal_vars):
                for var_b in literal_vars[position + 1 :]:
                    bit_a, bit_b = 1 << var_a, 1 << var_b
                    pair = bit_a | bit_b
                    flipped_pos = (pos & ~pair) | (neg & pair)
                    flipped_neg = (neg & ~pair) | (pos & pair)
                    if region_ok(flipped_pos, flipped_neg, xors):
                        value_a = 1 if pos & bit_a else 0
                        value_b = 1 if pos & bit_b else 0
                        factor = make_xor_factor(
                            var_a, var_b, value_a ^ value_b
                        )
                        current = (
                            pos & ~pair,
                            neg & ~pair,
                            xors | {factor},
                        )
                        changed = True
                        break
                if changed:
                    break
        if dead_ends is not None:
            # The loop exits only after a full scan of ``current`` found
            # nothing acceptable: ``current`` is a dead end for this off.
            dead_ends.add(current)
        expanded.append(current)
    return list(dict.fromkeys(expanded))


def _spp_irredundant_masks(
    triples: list[tuple],
    dc: Function,
    mgr: BDD,
    memo: ChainMemo | None = None,
) -> list[tuple]:
    """Irredundancy sweep over triples (items stay plain tuples)."""
    if not triples:
        return triples
    return irredundant_sweep(
        triples,
        lambda triple: mgr.spp_product(triple[0], triple[1], triple[2]),
        dc,
        memo,
    )


# ---------------------------------------------------------------------------
# Pseudocube-object passes (reference implementation; ablation baseline)
# ---------------------------------------------------------------------------


def _try_merge(first: Pseudocube, second: Pseudocube) -> Pseudocube | None:
    """Merge two pseudocubes if their union is exactly a pseudocube."""
    if first.n_vars != second.n_vars:
        return None
    if first.xors == second.xors:
        bound_first = first.pos | first.neg
        bound_second = second.pos | second.neg
        if bound_first != bound_second:
            return None
        conflict = (first.pos & second.neg) | (first.neg & second.pos)
        agree = (first.pos ^ second.pos) | (first.neg ^ second.neg)
        if agree != conflict:
            return None  # same bound set but inconsistent literal patterns
        count = conflict.bit_count()
        if count == 1:
            # Classic distance-1 merge: drop the conflicting literal.
            var = conflict.bit_length() - 1
            return first.drop_literal(var)
        if count == 2:
            # Opposite polarities on two variables: forms an XOR factor.
            low = conflict & -conflict
            var_a = low.bit_length() - 1
            var_b = (conflict ^ low).bit_length() - 1
            return first.pair_literals(var_a, var_b)
        return None
    if first.pos == second.pos and first.neg == second.neg:
        difference = first.xors ^ second.xors
        if len(difference) == 2:
            factors = sorted(difference)
            a, b = factors
            if a.i == b.i and a.j == b.j and a.phase != b.phase:
                # Both phases of the same XOR pair: the factor cancels.
                own = a if a in first.xors else b
                return first.drop_xor(own)
    return None


def _merge_fixpoint(cover: SppCover) -> SppCover:
    """Apply pairwise merges until none applies (reference path)."""
    pseudocubes = list(dict.fromkeys(cover.pseudocubes))
    merged = True
    while merged:
        merged = False
        count = len(pseudocubes)
        for index_a in range(count):
            if merged:
                break
            for index_b in range(index_a + 1, count):
                union = _try_merge(pseudocubes[index_a], pseudocubes[index_b])
                if union is not None:
                    rest = [
                        pc
                        for position, pc in enumerate(pseudocubes)
                        if position not in (index_a, index_b)
                    ]
                    rest.append(union)
                    pseudocubes = list(dict.fromkeys(rest))
                    merged = True
                    break
    return SppCover(cover.n_vars, pseudocubes)


def _spp_expand(
    cover: SppCover,
    off: Function,
    mgr: BDD,
    memo: "ExpandMemo | None" = None,
) -> SppCover:
    """Expand each pseudoproduct against the off-set (reference path).

    Tries factor drops first (literal win of 1 or 2), then literal-pair
    weakenings (no literal change, doubles coverage — enabling later
    containment removals).

    ``memo`` caches verdicts across *restarts* of the expansion loop.
    The caller's iterations re-derive largely the same covers, so
    without it the O(n³) pair-weakening scan regenerates and re-tests
    every rejected ``(pseudocube, var-pair)`` candidate on every round.
    Two layers are kept: a per-candidate off-set verdict, and — the one
    that kills the cubic term — a *dead-end* set of pseudocubes whose
    full scan found no acceptable weakening, which skips the entire
    candidate generation for them on later rounds.  Both are pure per
    ``(pseudocube, off)`` and ``off`` is fixed for the whole
    minimization, so memoization cannot change the result.
    """
    if memo is None:
        def region_ok(pos: int, neg: int, xors: frozenset) -> bool:
            return mgr.spp_product(pos, neg, xors).disjoint(off)

        dead_ends = None
    else:
        accept_memo = memo.accept
        dead_ends = memo.dead_ends

        def region_ok(pos: int, neg: int, xors: frozenset) -> bool:
            key = (pos, neg, xors)
            verdict = accept_memo.get(key)
            if verdict is None:
                verdict = mgr.spp_product(pos, neg, xors).disjoint(off)
                accept_memo[key] = verdict
            return verdict

    expanded: list[Pseudocube] = []
    order = sorted(cover.pseudocubes, key=lambda pc: -pc.literal_count)
    for pc in order:
        if dead_ends is not None and (pc.pos, pc.neg, pc.xors) in dead_ends:
            expanded.append(pc)
            continue
        current = pc
        changed = True
        while changed:
            changed = False
            pos, neg, xors = current.pos, current.neg, current.xors
            for kind, payload in current.factors():
                if kind == "lit":
                    var, polarity = payload
                    bit = 1 << var
                    if polarity:
                        ok = region_ok(pos & ~bit, neg | bit, xors)
                    else:
                        ok = region_ok(pos | bit, neg & ~bit, xors)
                else:
                    flipped = (xors - {payload}) | {
                        XorFactor(payload.i, payload.j, payload.phase ^ 1)
                    }
                    ok = region_ok(pos, neg, frozenset(flipped))
                if ok:
                    current = current.drop_factor(kind, payload)
                    changed = True
                    break
            if changed:
                continue
            # Same order as the factors() literal walk: positive
            # literals by ascending variable, then negative ones.
            literal_vars = list(bit_indices(pos)) + list(bit_indices(neg))
            for position, var_a in enumerate(literal_vars):
                for var_b in literal_vars[position + 1 :]:
                    pair = (1 << var_a) | (1 << var_b)
                    flipped_pos = (pos & ~pair) | (neg & pair)
                    flipped_neg = (neg & ~pair) | (pos & pair)
                    if region_ok(flipped_pos, flipped_neg, xors):
                        current = current.pair_literals(var_a, var_b)
                        changed = True
                        break
                if changed:
                    break
        if dead_ends is not None:
            # The loop exits only after a full scan of ``current`` found
            # nothing acceptable: ``current`` is a dead end for this off.
            dead_ends.add((current.pos, current.neg, current.xors))
        expanded.append(current)
    return SppCover(cover.n_vars, list(dict.fromkeys(expanded)))


class ExpandMemo:
    """Cross-restart memo for the expansion passes (one off-set).

    Keys are ``(pos, neg, xors)`` triples on both the mask-native and
    the reference path, so a memo is freely shared between them.
    """

    __slots__ = ("accept", "dead_ends")

    def __init__(self) -> None:
        #: candidate key -> off-set disjointness verdict.
        self.accept: dict[tuple, bool] = {}
        #: pseudocubes whose full weakening scan found nothing.
        self.dead_ends: set[tuple] = set()


def _spp_irredundant(
    cover: SppCover,
    dc: Function,
    mgr: BDD,
    memo: ChainMemo | None = None,
) -> SppCover:
    """Single irredundancy sweep with prefix/suffix unions (reference).

    ``memo`` interns the prefix/suffix OR chains across the restart
    rounds of :func:`minimize_spp_heuristic` (see
    :mod:`repro.twolevel.chains`); pseudocubes whose chain context is
    unchanged since the last round cost a dictionary lookup instead of a
    rebuilt union and containment check.
    """
    if not cover.pseudocubes:
        return cover
    kept = irredundant_sweep(
        cover.pseudocubes, lambda pc: pc.to_function(mgr), dc, memo
    )
    return SppCover(cover.n_vars, kept)


def sop_to_spp(cover: Cover) -> SppCover:
    """Lift an SOP cover and apply the merge fixpoint (no oracle needed)."""
    triples = [(cube.pos, cube.neg, _NO_XORS) for cube in cover.cubes]
    return SppCover(
        cover.n_vars,
        [
            Pseudocube(cover.n_vars, pos, neg, xors)
            for pos, neg, xors in _merge_fixpoint_masks(triples)
        ],
    )


def minimize_spp_heuristic(
    isf: ISF,
    initial: Cover | SppCover | None = None,
    max_iterations: int = 6,
    memoize_expansion: bool = True,
    algebra: bool = True,
) -> SppCover:
    """Heuristic 2-SPP minimization (benchmark-scale workhorse).

    ``memoize_expansion`` shares candidate off-set verdicts across the
    expansion restarts (see :func:`_spp_expand_masks`); disabling it
    exists only so the ablation benchmark can measure the win.
    ``algebra=False`` routes through the pseudocube-object reference
    passes — same oracle calls, same cover — for the differential tests
    and the on/off ablation benchmark.
    """
    mgr = isf.mgr
    on, dc, off = isf.on, isf.dc, isf.off
    if on.is_false:
        return SppCover(mgr.n_vars, [])
    if off.is_false:
        return SppCover(mgr.n_vars, [Pseudocube.tautology(mgr.n_vars)])

    if not algebra:
        return _minimize_spp_heuristic_pc(
            isf, initial, max_iterations, memoize_expansion
        )

    if initial is None:
        base = espresso_minimize(isf)
        triples = [(cube.pos, cube.neg, _NO_XORS) for cube in base.cubes]
    elif isinstance(initial, Cover):
        triples = [(cube.pos, cube.neg, _NO_XORS) for cube in initial.cubes]
    else:
        triples = [_triple_of(pc) for pc in initial.pseudocubes]

    n_vars = mgr.n_vars
    triples = _merge_fixpoint_masks(triples)
    chains = ChainMemo()
    triples = _spp_irredundant_masks(triples, dc, mgr, chains)
    best = triples
    best_cost = _triples_cost(triples)
    memo = ExpandMemo() if memoize_expansion else None
    for _iteration in range(max_iterations):
        triples = _spp_expand_masks(triples, off, mgr, memo)
        triples = _merge_fixpoint_masks(triples)
        triples = _spp_irredundant_masks(triples, dc, mgr, chains)
        cost = _triples_cost(triples)
        if cost < best_cost:
            best, best_cost = triples, cost
        else:
            break

    result = SppCover(
        n_vars,
        [Pseudocube(n_vars, pos, neg, xors) for pos, neg, xors in best],
    )
    realized = result.to_function(mgr)
    if not (on <= realized and realized <= isf.upper):
        raise AssertionError("2-SPP synthesis produced an invalid cover")
    return result


def _triples_cost(triples: list[tuple]) -> tuple[int, int]:
    """Lexicographic ``(pseudoproducts, literals)`` cost of triples."""
    return (
        len(triples),
        sum(_triple_literal_count(triple) for triple in triples),
    )


def _minimize_spp_heuristic_pc(
    isf: ISF,
    initial: Cover | SppCover | None,
    max_iterations: int,
    memoize_expansion: bool,
) -> SppCover:
    """The pre-algebra loop, pseudocube objects throughout (reference)."""
    mgr = isf.mgr
    on, dc, off = isf.on, isf.dc, isf.off
    if initial is None:
        spp = SppCover.from_cover(espresso_minimize(isf, algebra=False))
    elif isinstance(initial, Cover):
        spp = SppCover.from_cover(initial)
    else:
        spp = initial.copy()

    spp = _merge_fixpoint(spp)
    chains = ChainMemo()
    spp = _spp_irredundant(spp, dc, mgr, chains)
    best = spp
    best_cost = spp.cost()
    memo = ExpandMemo() if memoize_expansion else None
    for _iteration in range(max_iterations):
        spp = _spp_expand(spp, off, mgr, memo)
        spp = _merge_fixpoint(spp)
        spp = _spp_irredundant(spp, dc, mgr, chains)
        cost = spp.cost()
        if cost < best_cost:
            best, best_cost = spp, cost
        else:
            break

    realized = best.to_function(mgr)
    if not (on <= realized and realized <= isf.upper):
        raise AssertionError("2-SPP synthesis produced an invalid cover")
    return best


def enumerate_maximal_pseudocubes(
    isf: ISF, max_candidates: int = 50_000
) -> list[Pseudocube]:
    """All maximal pseudocubes inside ``[on, on ∪ dc]``.

    Raises ``RuntimeError`` if the candidate space exceeds
    ``max_candidates`` (callers should fall back to the heuristic).
    """
    mgr = isf.mgr
    upper = isf.upper
    n_vars = mgr.n_vars
    seen: set[Pseudocube] = set()
    maximal: set[Pseudocube] = set()
    function_cache: dict[Pseudocube, Function] = {}

    def function_of(pc: Pseudocube) -> Function:
        cached = function_cache.get(pc)
        if cached is None:
            cached = pc.to_function(mgr)
            function_cache[pc] = cached
        return cached

    stack = [
        Pseudocube.from_cube(Cube.from_minterm(n_vars, minterm))
        for minterm in isf.on.minterms()
    ]
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        if len(seen) > max_candidates:
            raise RuntimeError(
                f"maximal-pseudocube enumeration exceeded {max_candidates} candidates"
            )
        grew = False
        for candidate in pc.expansions():
            if function_of(candidate) <= upper:
                grew = True
                if candidate not in seen:
                    stack.append(candidate)
        if not grew:
            maximal.add(pc)
    return sorted(
        maximal, key=lambda p: (p.literal_count, p.pos, p.neg, sorted(p.xors))
    )


#: Interval-size bail-out for the exact engine: an ISOP cover beyond
#: this many cubes predicts a maximal-pseudocube blow-up.  An n-variable
#: interval has at most ``2^n`` irredundant cubes, so the guard can
#: never fire below 9 variables — the default exact dispatch
#: (``exact_threshold=6``) is provably unaffected.
EXACT_PROBE_CUBES = 256


def minimize_spp_exact(
    isf: ISF,
    literal_weight: int = 1,
    product_weight: int = 1000,
    max_candidates: int = 50_000,
    max_nodes: int = 200_000,
) -> SppCover:
    """Exact minimum 2-SPP cover via covering over maximal pseudocubes.

    Oversized instances are rejected *before* the candidate enumeration:
    a lazy first-k probe of the interval's ISOP
    (:func:`repro.twolevel.covering.probe_interval_cubes`, which stops
    after :data:`EXACT_PROBE_CUBES` + 1 cubes instead of materializing
    the full cover) raises the same ``RuntimeError`` the enumeration
    would eventually hit, so callers fall back to the heuristic engine
    without paying for the doomed scan.
    """
    mgr = isf.mgr
    if isf.on.is_false:
        return SppCover(mgr.n_vars, [])
    if isf.off.is_false:
        return SppCover(mgr.n_vars, [Pseudocube.tautology(mgr.n_vars)])
    from repro.twolevel.covering import probe_interval_cubes

    if probe_interval_cubes(isf.on, isf.upper, EXACT_PROBE_CUBES + 1) > EXACT_PROBE_CUBES:
        raise RuntimeError(
            f"interval ISOP exceeds {EXACT_PROBE_CUBES} cubes; exact 2-SPP"
            " synthesis would blow the candidate budget"
        )
    candidates = enumerate_maximal_pseudocubes(isf, max_candidates=max_candidates)
    on_minterms = sorted(isf.on.minterms())
    row_index = {minterm: row for row, minterm in enumerate(on_minterms)}
    columns = []
    costs = []
    for pc in candidates:
        covered = frozenset(
            row_index[m] for m in on_minterms if pc.contains_minterm(m)
        )
        columns.append(covered)
        costs.append(product_weight + literal_weight * pc.literal_count)
    problem = CoveringProblem(len(on_minterms), columns, costs)
    chosen = solve_covering(problem, max_nodes=max_nodes)
    result = SppCover(mgr.n_vars, [candidates[j] for j in chosen])
    realized = result.to_function(mgr)
    if not (isf.on <= realized and realized <= isf.upper):
        raise AssertionError("exact 2-SPP produced an invalid cover")
    return result


def minimize_spp(
    isf: ISF,
    exact_threshold: int = 6,
    initial: Cover | SppCover | None = None,
) -> SppCover:
    """Minimize an ISF in 2-SPP form.

    Uses the exact engine for ``n_vars <= exact_threshold`` (falling back
    to the heuristic if the candidate space explodes) and the heuristic
    engine otherwise.
    """
    if isf.n_vars <= exact_threshold:
        try:
            return minimize_spp_exact(isf)
        except RuntimeError:
            pass
    return minimize_spp_heuristic(isf, initial=initial)
