"""Pseudoproducts with two-literal XOR factors (2-pseudocubes).

A 2-pseudoproduct is a conjunction of *factors*; each factor is either a
literal ``xi`` / ``~xi`` or a two-variable XOR constraint ``xi ^ xj == c``
(``c = 1`` is the XOR factor, ``c = 0`` the XNOR factor — the paper's
``xi ⊕ x̄j`` is the same as XNOR).  Every variable appears in at most one
factor, so a pseudoproduct over ``n`` variables with ``l`` literals and
``k`` XOR factors covers exactly ``2^(n - l - k)`` minterms.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import NamedTuple

from repro.bdd.manager import BDD, Function
from repro.cover.cube import Cube
from repro.utils.bitops import bit_indices


class XorFactor(NamedTuple):
    """Constraint ``x[i] ^ x[j] == phase`` with ``i < j``."""

    i: int
    j: int
    phase: int

    def evaluate(self, minterm: int, n_vars: int) -> bool:
        """Evaluate on a minterm index (variable 0 = MSB)."""
        bit_i = (minterm >> (n_vars - 1 - self.i)) & 1
        bit_j = (minterm >> (n_vars - 1 - self.j)) & 1
        return (bit_i ^ bit_j) == self.phase

    def to_function(self, mgr: BDD) -> Function:
        """Build the factor's function on any backend."""
        return mgr.spp_product(0, 0, frozenset((self,)))

    def to_expression(self, names) -> str:
        """Render as ``(a ^ b)`` or ``~(a ^ b)``."""
        body = f"({names[self.i]} ^ {names[self.j]})"
        return body if self.phase else "~" + body


def make_xor_factor(i: int, j: int, phase: int) -> XorFactor:
    """Normalize index order (``i < j``) of an XOR factor."""
    if i == j:
        raise ValueError("XOR factor needs two distinct variables")
    if i > j:
        i, j = j, i
    return XorFactor(i, j, phase & 1)


class Pseudocube:
    """A 2-pseudoproduct: literals (pos/neg masks) plus XOR factors."""

    __slots__ = ("n_vars", "pos", "neg", "xors")

    def __init__(
        self,
        n_vars: int,
        pos: int = 0,
        neg: int = 0,
        xors: frozenset[XorFactor] = frozenset(),
    ) -> None:
        if pos & neg:
            raise ValueError("contradictory literals")
        xor_vars = 0
        for factor in xors:
            mask = (1 << factor.i) | (1 << factor.j)
            if xor_vars & mask:
                raise ValueError("variable reused across XOR factors")
            xor_vars |= mask
        if xor_vars & (pos | neg):
            raise ValueError("variable used both as literal and in an XOR factor")
        self.n_vars = n_vars
        self.pos = pos
        self.neg = neg
        self.xors = frozenset(xors)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_cube(cls, cube: Cube) -> "Pseudocube":
        """Lift a plain cube (no XOR factors)."""
        return cls(cube.n_vars, cube.pos, cube.neg)

    @classmethod
    def tautology(cls, n_vars: int) -> "Pseudocube":
        """The factor-free pseudoproduct covering everything."""
        return cls(n_vars)

    # -- identity -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pseudocube)
            and other.n_vars == self.n_vars
            and other.pos == self.pos
            and other.neg == self.neg
            and other.xors == self.xors
        )

    def __hash__(self) -> int:
        return hash((self.n_vars, self.pos, self.neg, self.xors))

    def __repr__(self) -> str:
        names = tuple(f"x{k + 1}" for k in range(self.n_vars))
        return f"Pseudocube({self.to_expression(names)})"

    # -- measures --------------------------------------------------------------
    @property
    def literal_count(self) -> int:
        """2-SPP literal cost: 1 per literal, 2 per XOR factor."""
        return (self.pos | self.neg).bit_count() + 2 * len(self.xors)

    @property
    def factor_count(self) -> int:
        """Number of factors (AND-gate fan-in of the pseudoproduct)."""
        return (self.pos | self.neg).bit_count() + len(self.xors)

    @property
    def bound_mask(self) -> int:
        """Bitmask of variables constrained by any factor."""
        mask = self.pos | self.neg
        for factor in self.xors:
            mask |= (1 << factor.i) | (1 << factor.j)
        return mask

    def minterm_count(self) -> int:
        """Number of covered minterms: each factor halves the space."""
        halvings = (self.pos | self.neg).bit_count() + len(self.xors)
        return 1 << (self.n_vars - halvings)

    @property
    def is_plain_cube(self) -> bool:
        """True iff there are no XOR factors."""
        return not self.xors

    def to_cube(self) -> Cube:
        """Convert back to a plain cube (requires :attr:`is_plain_cube`)."""
        if self.xors:
            raise ValueError("pseudocube has XOR factors")
        return Cube(self.n_vars, self.pos, self.neg)

    # -- semantics -----------------------------------------------------------------
    def contains_minterm(self, minterm: int) -> bool:
        """Evaluate the pseudoproduct on a minterm index."""
        for var in bit_indices(self.pos):
            if not (minterm >> (self.n_vars - 1 - var)) & 1:
                return False
        for var in bit_indices(self.neg):
            if (minterm >> (self.n_vars - 1 - var)) & 1:
                return False
        return all(factor.evaluate(minterm, self.n_vars) for factor in self.xors)

    def to_function(self, mgr: BDD) -> Function:
        """Build the pseudoproduct's function on any backend.

        Delegates to the manager's memoized ``spp_product`` construction
        (bottom-up literals plus one cached apply per XOR factor on the
        BDD backend; a handful of mask operations on the bitset one).
        """
        return mgr.spp_product(self.pos, self.neg, self.xors)

    def to_expression(self, names) -> str:
        """Human-readable product, e.g. ``x1 & (x3 ^ x4)``."""
        parts = []
        for var in range(self.n_vars):
            bit = 1 << var
            if self.pos & bit:
                parts.append(names[var])
            elif self.neg & bit:
                parts.append("~" + names[var])
        for factor in sorted(self.xors):
            parts.append(factor.to_expression(names))
        return " & ".join(parts) if parts else "1"

    # -- containment ------------------------------------------------------------------
    def contains_pseudocube(self, other: "Pseudocube") -> bool:
        """Structural containment: every factor of self is implied by other.

        Sufficient (not necessary) without a BDD check; exact when both
        operands are valid 2-pseudoproducts with disjoint factor supports,
        except for parity interactions across multiple factors, which
        cannot make a *single* factor true — so the check is exact for
        factor-wise containment and used as a fast pre-filter.
        """
        if self.pos & ~other.pos or self.neg & ~other.neg:
            # A literal of self not enforced literally by other can still
            # not be enforced by other's XOR factors (they never fix a
            # single variable), so containment fails.
            return False
        for factor in self.xors:
            if factor in other.xors:
                continue
            # other must force x_i ^ x_j == phase through its literals.
            bit_i, bit_j = 1 << factor.i, 1 << factor.j
            if (other.pos | other.neg) & bit_i and (other.pos | other.neg) & bit_j:
                value_i = 1 if other.pos & bit_i else 0
                value_j = 1 if other.pos & bit_j else 0
                if (value_i ^ value_j) == factor.phase:
                    continue
            return False
        return True

    # -- factor edits (expansion moves) ----------------------------------------------
    def factors(self) -> Iterator[tuple[str, object]]:
        """Iterate factors as ``("lit", (var, polarity))`` / ``("xor", XorFactor)``."""
        for var in bit_indices(self.pos):
            yield "lit", (var, True)
        for var in bit_indices(self.neg):
            yield "lit", (var, False)
        for factor in sorted(self.xors):
            yield "xor", factor

    def drop_literal(self, var: int) -> "Pseudocube":
        """Remove the literal on ``var`` (doubles coverage)."""
        bit = 1 << var
        return Pseudocube(self.n_vars, self.pos & ~bit, self.neg & ~bit, self.xors)

    def drop_xor(self, factor: XorFactor) -> "Pseudocube":
        """Remove an XOR factor (doubles coverage)."""
        return Pseudocube(self.n_vars, self.pos, self.neg, self.xors - {factor})

    def drop_factor(self, kind: str, payload) -> "Pseudocube":
        """Remove a factor returned by :meth:`factors`."""
        if kind == "lit":
            var, _polarity = payload
            return self.drop_literal(var)
        return self.drop_xor(payload)

    def pair_literals(self, var_a: int, var_b: int) -> "Pseudocube":
        """Weaken two literals into the XOR factor they imply.

        Literals ``(x_a = u, x_b = v)`` become the factor
        ``x_a ^ x_b == u ^ v``, doubling coverage.
        """
        bit_a, bit_b = 1 << var_a, 1 << var_b
        bound = self.pos | self.neg
        if not (bound & bit_a and bound & bit_b):
            raise ValueError("both variables must be bound as literals")
        value_a = 1 if self.pos & bit_a else 0
        value_b = 1 if self.pos & bit_b else 0
        factor = make_xor_factor(var_a, var_b, value_a ^ value_b)
        return Pseudocube(
            self.n_vars,
            self.pos & ~(bit_a | bit_b),
            self.neg & ~(bit_a | bit_b),
            self.xors | {factor},
        )

    def expansions(self) -> Iterator["Pseudocube"]:
        """All single-step expansions (each strictly doubles coverage)."""
        for kind, payload in self.factors():
            yield self.drop_factor(kind, payload)
        literal_vars = list(bit_indices(self.pos | self.neg))
        for index, var_a in enumerate(literal_vars):
            for var_b in literal_vars[index + 1 :]:
                yield self.pair_literals(var_a, var_b)
