"""2-SPP synthesis: three-level XOR-AND-OR forms.

SPP networks (Luccio–Pagli [7]) generalize SOP forms by replacing
literals with XOR factors inside products ("pseudoproducts").  For
technological reasons the paper restricts factors to at most two literals
(2-SPP forms, Ciriani–Bernasconi [5]).  This package provides:

* :class:`~repro.spp.pseudocube.Pseudocube` — a product of literals and
  two-literal XOR factors, each variable used at most once;
* :class:`~repro.spp.spp_cover.SppCover` — a sum of pseudoproducts;
* :func:`~repro.spp.synthesis.minimize_spp` — 2-SPP minimization of an
  incompletely specified function (exact for small arity via maximal
  pseudocube enumeration + covering, cube-merging heuristic above).
"""

from repro.spp.pseudocube import Pseudocube, XorFactor
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import (
    enumerate_maximal_pseudocubes,
    minimize_spp,
    minimize_spp_exact,
    minimize_spp_heuristic,
    sop_to_spp,
)

__all__ = [
    "Pseudocube",
    "SppCover",
    "XorFactor",
    "enumerate_maximal_pseudocubes",
    "minimize_spp",
    "minimize_spp_exact",
    "minimize_spp_heuristic",
    "sop_to_spp",
]
