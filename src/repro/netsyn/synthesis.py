"""Shared-network synthesis of multi-output benchmarks.

:class:`NetworkSynthesizer` turns a multi-output
:class:`~repro.benchgen.registry.BenchmarkInstance` into one strashed
:class:`~repro.techmap.network.LogicNetwork`:

1. outputs are ordered by support overlap
   (:func:`~repro.netsyn.scheduler.schedule_by_overlap`);
2. every block — an output, a divisor ``g``, or a residual quotient
   ``h`` — first consults the :class:`~repro.netsyn.pool.DivisorPool`;
   a pooled block (either polarity, or any pooled completion of an
   incompletely specified block) is reused instead of re-derived;
3. blocks whose minimized cover is above ``literal_threshold`` are
   bi-decomposed through the strategy engine
   (:class:`~repro.engine.Decomposer`) and their ``g``/``h`` parts
   realized recursively, down to ``max_depth``; a decomposition that
   does not strictly reduce the literal cost falls back to the cover;
4. surviving covers are instantiated into the shared network, where
   structural hashing materializes identical gates once.

``jobs > 1`` prefetches the top-level decompositions through
:meth:`~repro.engine.Decomposer.decompose_many`'s process pool and then
merges the results into the shared network through the pool — the
synthesized network is byte-identical to a serial run.  A
:class:`~repro.engine.cache.ResultCache` directory persists finished
networks keyed by the benchmark's canonical output fingerprints and the
synthesis configuration; keys are backend-free, so a cache warmed under
one backend serves the other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter

from repro.boolfunc.isf import ISF
from repro.core.operators import EXPERIMENT_OPERATORS, operator_by_name
from repro.engine.cache import ResultCache, as_result_cache
from repro.engine.decomposer import (
    AutoSearchError,
    Decomposer,
    VerificationError,
)
from repro.engine.registry import MINIMIZERS
from repro.netsyn.pool import DivisorPool
from repro.obs.trace import span as _obs_span
from repro.netsyn.scheduler import schedule_by_overlap
from repro.techmap.area import map_network
from repro.techmap.genlib import GateLibrary
from repro.techmap.network import LogicNetwork


@dataclass(frozen=True)
class NetsynConfig:
    """Synthesis policy: strategies, recursion bounds, pool behaviour.

    Strategies must be registry names (the cache and the worker pool
    ship them by name); ``operators`` bounds the per-block auto search —
    the default is the paper's experimental pair, which keeps suite runs
    comparable with the per-output harness.  ``backend`` is carried to
    the engine but never enters cache keys: networks are identical
    whichever representation computes them.
    """

    operators: tuple[str, ...] = EXPERIMENT_OPERATORS
    approximator: str = "expand-full"
    minimizer: str = "spp"
    #: Blocks at or below this 2-SPP/SOP literal cost are instantiated
    #: directly; larger blocks are bi-decomposed recursively.
    literal_threshold: int = 10
    #: Maximum bi-decomposition nesting depth per output.
    max_depth: int = 2
    #: Allow incompletely specified blocks to match pooled completions.
    match_intervals: bool = True
    #: Check every realized block against its interval (cheap; on by
    #: default — a shared network that silently diverges is worthless).
    verify: bool = True
    backend: str = "auto"

    def key_payload(self) -> dict:
        """Identity-relevant fields for cache keys (backend excluded)."""
        return {
            "operators": list(self.operators),
            "approximator": self.approximator,
            "minimizer": self.minimizer,
            "literal_threshold": self.literal_threshold,
            "max_depth": self.max_depth,
            "match_intervals": self.match_intervals,
            "verify": self.verify,
        }


@dataclass
class NetworkSynthesisResult:
    """A synthesized shared network plus its accounting.

    ``isolated_area``/``isolated_gate_count`` re-map every output's cone
    as its own network — the per-output sum the old harness flow
    reports — so ``shared_area <= isolated_area`` quantifies what
    cross-output sharing bought.
    """

    name: str
    network: LogicNetwork
    output_names: list[str]
    per_output: list[dict]
    pool_stats: dict
    shared_area: float
    isolated_area: float
    shared_gate_count: int
    isolated_gate_count: int
    time_s: float
    engine_stats: dict | None = None
    cached: bool = False

    @property
    def saving_pct(self) -> float:
        """Area saved by sharing, in percent of the isolated sum."""
        if not self.isolated_area:
            return 0.0
        return 100.0 * (self.isolated_area - self.shared_area) / self.isolated_area

    @property
    def pool_hit_rate(self) -> float:
        """Pool lookups served from previously realized blocks."""
        lookups = self.pool_stats.get("lookups", 0) + self.pool_stats.get(
            "interval_lookups", 0
        )
        hits = self.pool_stats.get("hits", 0) + self.pool_stats.get(
            "interval_hits", 0
        )
        return hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready metrics (the CLI ``--json`` payload; no network)."""
        return {
            "name": self.name,
            "outputs": len(self.output_names),
            "shared_area": self.shared_area,
            "isolated_area": self.isolated_area,
            "saving_pct": round(self.saving_pct, 4),
            "shared_gate_count": self.shared_gate_count,
            "isolated_gate_count": self.isolated_gate_count,
            "pool_stats": dict(self.pool_stats),
            "pool_hit_rate": round(self.pool_hit_rate, 4),
            "per_output": list(self.per_output),
            "time_s": round(self.time_s, 6),
            "cached": self.cached,
        }


class NetworkSynthesizer:
    """Drives shared-network synthesis over one benchmark instance."""

    def __init__(
        self,
        config: NetsynConfig | None = None,
        engine: Decomposer | None = None,
        library: GateLibrary | None = None,
    ) -> None:
        self.config = config or NetsynConfig()
        self.library = library
        self.engine = engine or Decomposer(
            approximator=self.config.approximator,
            minimizer=self.config.minimizer,
            operators=self.config.operators,
            backend=self.config.backend,
        )
        resolved = MINIMIZERS.resolve(self.config.minimizer)
        if resolved.name.partition(":")[0] == "none":
            raise ValueError(
                "network synthesis needs a cover-producing minimizer;"
                " 'none' cannot instantiate blocks"
            )
        self._minimize = resolved.func
        self._cover_memo: dict[ISF, object] = {}
        #: The pool of the most recent :meth:`synthesize` run (``None``
        #: after a cache-served run) — the service snapshots it to carry
        #: warm covers into later requests.
        self.last_pool: DivisorPool | None = None

    # -- public API -------------------------------------------------------

    def synthesize(
        self,
        instance,
        jobs: int = 1,
        cache: "ResultCache | str | None" = None,
        pool_seed: dict | None = None,
        collect_covers: bool = False,
    ) -> NetworkSynthesisResult:
        """Synthesize one shared network for a benchmark instance.

        ``pool_seed`` — a :meth:`~repro.netsyn.pool.DivisorPool.snapshot`
        from an earlier run — pre-warms this run's pool with remembered
        minimized covers; ``collect_covers`` records this run's covers so
        :attr:`last_pool` can be snapshotted afterwards.  Both are pure
        work-savers: the minimizer is deterministic, so a warm replay
        instantiates exactly the cover a cold run would compute and the
        synthesized network is identical either way.
        """
        with _obs_span("netsyn.synthesize", name=getattr(instance, "name", "")) as sp:
            result = self._synthesize(instance, jobs, cache, pool_seed, collect_covers)
            sp.annotate(
                cached=bool(getattr(result, "cached", False)),
                outputs=len(result.output_names),
            )
        return result

    def _synthesize(
        self,
        instance,
        jobs: int,
        cache: "ResultCache | str | None",
        pool_seed: dict | None,
        collect_covers: bool,
    ) -> NetworkSynthesisResult:
        from repro.bdd.serialize import SerializationError
        from repro.engine import wire

        config = self.config
        self.last_pool = None
        result_cache = as_result_cache(cache) if self.library is None else None
        key = None
        if result_cache is not None:
            fingerprints = [
                wire.isf_fingerprint(isf) for isf in instance.outputs
            ]
            key = ResultCache.netsyn_key_for(fingerprints, config.key_payload())
            hit = result_cache.get(key)
            if hit is not None:
                try:
                    cached = wire.netsyn_result_from_payload(hit)
                    cached.cached = True
                    return cached
                except SerializationError:
                    result_cache.stats["hits"] -= 1
                    result_cache.stats["misses"] += 1
                    result_cache.stats["corrupt"] += 1

        t0 = perf_counter()
        network = LogicNetwork(list(instance.mgr.var_names))
        pool = DivisorPool(
            config.match_intervals,
            collect_covers=collect_covers or pool_seed is not None,
        )
        pool.merge(pool_seed)
        self.last_pool = pool
        order = schedule_by_overlap(instance.outputs)

        prefetched: dict[str, object] = {}
        if jobs > 1 and config.max_depth > 0:
            # Prefetch only the outputs the serial path would actually
            # decompose: covers at or below the literal threshold are
            # instantiated directly, so shipping them to workers would
            # be pure wasted auto-search.
            labeled = [
                (f"o{index}", instance.outputs[index])
                for index in order
                if self._cover_of(instance.outputs[index], pool).literal_count()
                > config.literal_threshold
            ]
            try:
                for result in self.engine.decompose_many(
                    labeled, "auto", jobs=jobs, backend=config.backend
                ):
                    prefetched[result.request.name] = result
            except (AutoSearchError, VerificationError):
                # A worker's whole batch fails on the first undecomposable
                # output; the serial path recovers per block (cover
                # fallback), so just realize without the prefetch — the
                # resulting network is identical either way.
                prefetched = {}

        per_output: list[dict] = []
        output_names: list[str] = []
        records: dict[int, dict] = {}
        for index in order:
            name = f"o{index}"
            node, _function, source, op_name = self._realize(
                instance.outputs[index],
                None,
                0,
                network,
                pool,
                ready=prefetched.get(name),
                label=name,
            )
            network.set_output(name, node)
            records[index] = {"name": name, "source": source, "op": op_name}
        for index in range(len(instance.outputs)):
            output_names.append(f"o{index}")
            per_output.append(records[index])

        shared = map_network(network, self.library)
        isolated_area = 0.0
        isolated_gates = 0
        for name in output_names:
            cone = network.extract_cone(name)
            isolated_area += map_network(cone, self.library).area
            isolated_gates += cone.gate_count()

        result = NetworkSynthesisResult(
            name=getattr(instance, "name", ""),
            network=network,
            output_names=output_names,
            per_output=per_output,
            pool_stats=dict(pool.stats),
            shared_area=shared.area,
            isolated_area=isolated_area,
            shared_gate_count=network.gate_count(),
            isolated_gate_count=isolated_gates,
            time_s=perf_counter() - t0,
            engine_stats=dict(self.engine.stats),
        )
        if key is not None:
            result_cache.put(key, wire.netsyn_result_to_payload(result))
        return result

    # -- realization ------------------------------------------------------

    def _cover_of(self, isf: ISF, pool: DivisorPool | None = None):
        cover = self._cover_memo.get(isf)
        if cover is not None:
            return cover
        with _obs_span("netsyn.cover", minimizer=self.config.minimizer) as sp:
            warm_key = None
            if pool is not None and pool.collect_covers:
                from repro.engine import wire

                # The minimizer is part of the key: warm covers replay a
                # *specific* deterministic minimization, not just the block.
                warm_key = f"{self.config.minimizer}|{wire.isf_fingerprint(isf)}"
                payload = pool.warm_cover(warm_key)
                if payload is not None:
                    cover = wire.cover_from_payload(payload)
                    self._cover_memo[isf] = cover
                    sp.annotate(source="warm")
                    return cover
            cover = self._minimize(isf)
            sp.annotate(source="minimized")
        if cover is None:
            raise ValueError(
                f"minimizer {self.config.minimizer!r} produced no cover"
            )
        self._cover_memo[isf] = cover
        if warm_key is not None:
            from repro.engine import wire

            pool.remember_cover(warm_key, wire.cover_to_payload(cover))
        return cover

    def _instantiate(self, cover, isf: ISF, network, pool, label: str):
        root = network.any_cover_root(cover)
        function = cover.to_function(isf.mgr)
        if self.config.verify and not isf.is_completion(function):
            raise AssertionError(
                f"netsyn: cover of {label or 'block'} is not a completion"
            )
        pool.register(function, root, label)
        return root, function, "cover", ""

    def _realize(
        self,
        isf: ISF,
        cover,
        depth: int,
        network,
        pool: DivisorPool,
        ready=None,
        label: str = "",
    ):
        """Realize one block; returns ``(node, function, source, op)``.

        The function returned is the exact function the network node
        computes — a completion of ``isf`` — so callers can register and
        combine it soundly.
        """
        config = self.config
        hit = pool.lookup_completion(isf)
        if hit is not None:
            node, complemented, function = hit
            if complemented:
                node = network.negate(node)
            return node, function, "pool", ""

        if cover is None:
            cover = self._cover_of(isf, pool)
        cost = cover.literal_count()
        if cost <= config.literal_threshold or depth >= config.max_depth:
            return self._instantiate(cover, isf, network, pool, label)

        result = ready
        if result is None:
            try:
                result = self.engine.decompose(isf, "auto", name=label)
            except (AutoSearchError, VerificationError):
                return self._instantiate(cover, isf, network, pool, label)
        decomposition = result.decomposition
        g_cover = decomposition.g_cover
        h_cover = decomposition.h_cover
        if (
            g_cover is None
            or h_cover is None
            or g_cover.literal_count() + h_cover.literal_count() >= cost
        ):
            # No strict literal progress: the block's own cover is the
            # better realization (and the guard bounds the recursion).
            return self._instantiate(cover, isf, network, pool, label)

        g_node, g_function, _source, _op = self._realize(
            ISF.completely_specified(decomposition.g),
            g_cover,
            depth + 1,
            network,
            pool,
            label=f"{label}.g" if label else "g",
        )
        h_node, h_function, _source, _op = self._realize(
            decomposition.h,
            h_cover,
            depth + 1,
            network,
            pool,
            label=f"{label}.h" if label else "h",
        )
        op = operator_by_name(result.op_name)
        node = network.operator_root(op.truth_row(), g_node, h_node)
        # Any completion of the full quotient recombines to a completion
        # of f (the paper's Lemmas 1-5) — verified here because the h
        # block may have been served from the pool as a *different*
        # completion than the one the engine checked.
        function = op.apply(g_function, h_function)
        if config.verify and not isf.is_completion(function):
            raise AssertionError(
                f"netsyn: {op.name} recombination of {label or 'block'}"
                " is not a completion"
            )
        pool.register(function, node, label)
        return node, function, "decomposition", op.name


def synthesize_instance(
    instance,
    config: NetsynConfig | None = None,
    jobs: int = 1,
    cache: "ResultCache | str | None" = None,
    library: GateLibrary | None = None,
    backend: str | None = None,
) -> NetworkSynthesisResult:
    """One-shot synthesis with a fresh engine (the harness entry point)."""
    config = config or NetsynConfig()
    if backend is not None and backend != config.backend:
        config = replace(config, backend=backend)
    synthesizer = NetworkSynthesizer(config, library=library)
    return synthesizer.synthesize(instance, jobs=jobs, cache=cache)


__all__ = [
    "NetsynConfig",
    "NetworkSynthesisResult",
    "NetworkSynthesizer",
    "synthesize_instance",
]
