"""Output scheduling for shared-network synthesis.

Outputs are processed in a greedy support-overlap order: start with the
narrowest output, then repeatedly pick the output whose support overlaps
the already-processed region most.  Outputs that share variables tend to
share sub-logic, so by the time a wide output is decomposed, the pool
already holds the blocks its narrow siblings contributed — the order
maximizes the chance of divisor reuse without any lookahead.

The schedule is deterministic (ties break on smaller support, then on
input order), which keeps synthesized networks byte-identical across
runs, backends, and worker counts.
"""

from __future__ import annotations

from repro.boolfunc.isf import ISF


def output_support(isf: ISF) -> frozenset[str]:
    """Variables either set of an ISF depends on."""
    return frozenset(isf.on.support()) | frozenset(isf.dc.support())


def schedule_by_overlap(outputs: list[ISF]) -> list[int]:
    """Greedy support-overlap order over output indices."""
    supports = [output_support(isf) for isf in outputs]
    remaining = set(range(len(outputs)))
    covered: set[str] = set()
    order: list[int] = []
    while remaining:
        pick = min(
            remaining,
            key=lambda i: (-len(supports[i] & covered), len(supports[i]), i),
        )
        order.append(pick)
        remaining.remove(pick)
        covered |= supports[pick]
    return order


__all__ = ["output_support", "schedule_by_overlap"]
