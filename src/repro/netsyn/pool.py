"""Cross-output divisor pool keyed by canonical function hashes.

The pool maps *functions already realized in the shared network* to
their node ids.  Keys are the backend-free canonical fingerprints of
:func:`repro.bdd.serialize.function_fingerprint`, so a function computed
under the BDD backend and one computed under the bitset backend meet in
the same pool slot.  Registration is polarity-aware — both ``g`` and
``¬g`` are indexed at insert time — so a block needed in the opposite
phase costs one inverter instead of a second copy of the logic.

For incompletely specified residual blocks the pool can also answer
*interval* queries: any pooled function (or its complement) that is a
completion of the block's ``[on, on ∪ dc]`` interval may realize it, so
an output can absorb a sibling's divisor instead of minimizing and
decomposing its own.

Pools also carry a *warm-cover* side table for cross-request sharing
(the decomposition service): minimized covers of blocks seen in earlier
synthesis runs, keyed by a caller-chosen canonical key (block ISF
fingerprint plus minimizer spec) and stored as wire payloads, so they
survive :meth:`DivisorPool.snapshot` / :meth:`DivisorPool.merge` across
process and request boundaries.  A warm hit replays exactly what the
deterministic minimizer would recompute — networks synthesized with a
warm pool are identical to cold ones, only faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.serialize import SerializationError, function_fingerprint
from repro.boolfunc.isf import ISF

#: Snapshot payload identifier; bump on any incompatible layout change.
POOL_SNAPSHOT_FORMAT = "repro-pool/1"


@dataclass(frozen=True)
class PoolEntry:
    """One realized block: network node, its function, and provenance."""

    node: int
    function: object  # Function (either backend)
    fingerprint: str
    label: str = ""


class DivisorPool:
    """Canonical-hash index of realized blocks in one shared network.

    ``stats`` counts lookups/hits by kind; :meth:`hit_rate` summarizes
    them for reports.
    """

    def __init__(
        self, match_intervals: bool = True, collect_covers: bool = False
    ) -> None:
        #: fingerprint -> (node id, realized-in-complement flag).
        self._by_hash: dict[str, tuple[int, bool]] = {}
        self.entries: list[PoolEntry] = []
        self.match_intervals = match_intervals
        #: Record minimized covers for snapshot/merge (the service sets
        #: this; the one-shot path skips the bookkeeping entirely).
        self.collect_covers = collect_covers
        #: warm key -> cover wire payload (see module docstring).
        self._warm_covers: dict[str, dict] = {}
        self.stats = {
            "lookups": 0,
            "hits": 0,
            "complement_hits": 0,
            "interval_lookups": 0,
            "interval_hits": 0,
            "registered": 0,
            "warm_lookups": 0,
            "warm_hits": 0,
            "warm_imported": 0,
        }

    def __len__(self) -> int:
        return len(self.entries)

    # -- queries ----------------------------------------------------------

    def lookup(self, function) -> tuple[int, bool] | None:
        """Find a node computing ``function`` (or its complement).

        Returns ``(node, complemented)`` — the caller adds an inverter
        when ``complemented`` is true — or ``None`` on a miss.
        """
        self.stats["lookups"] += 1
        hit = self._by_hash.get(function_fingerprint(function))
        if hit is None:
            return None
        self.stats["hits"] += 1
        if hit[1]:
            self.stats["complement_hits"] += 1
        return hit

    def lookup_completion(self, isf: ISF) -> tuple[int, bool, object] | None:
        """Find a pooled block realizing *some* completion of an ISF.

        Completely specified blocks go through the O(1) hash index; a
        block with flexibility scans the pool for an entry whose
        function (or complement) lies in ``[on, on ∪ dc]``.  Returns
        ``(node, complemented, realized_function)`` or ``None``.
        """
        if isf.dc.is_false:
            hit = self.lookup(isf.on)
            if hit is None:
                return None
            return hit[0], hit[1], isf.on
        if not self.match_intervals:
            return None
        self.stats["interval_lookups"] += 1
        for entry in self.entries:
            if isf.is_completion(entry.function):
                self.stats["interval_hits"] += 1
                return entry.node, False, entry.function
            complement = ~entry.function
            if isf.is_completion(complement):
                self.stats["interval_hits"] += 1
                return entry.node, True, complement
        return None

    # -- updates ----------------------------------------------------------

    def register(self, function, node: int, label: str = "") -> None:
        """Index a realized block under both polarities (first one wins)."""
        fingerprint = function_fingerprint(function)
        if fingerprint in self._by_hash:
            return
        self._by_hash[fingerprint] = (node, False)
        self._by_hash[function_fingerprint(~function)] = (node, True)
        self.entries.append(PoolEntry(node, function, fingerprint, label))
        self.stats["registered"] += 1

    # -- cross-request sharing --------------------------------------------

    def remember_cover(self, warm_key: str, cover_payload: dict | None) -> None:
        """Record one minimized cover for future requests (first wins).

        No-op unless :attr:`collect_covers` is set, so the one-shot
        synthesis path never pays the serialization.
        """
        if not self.collect_covers or cover_payload is None:
            return
        self._warm_covers.setdefault(warm_key, cover_payload)

    def warm_cover(self, warm_key: str) -> dict | None:
        """Look up a cover remembered by an earlier (merged) request."""
        if not self._warm_covers:
            return None
        self.stats["warm_lookups"] += 1
        payload = self._warm_covers.get(warm_key)
        if payload is not None:
            self.stats["warm_hits"] += 1
        return payload

    def snapshot(self) -> dict:
        """Serializable warm-cover state of this pool (JSON-ready).

        Node ids never leave through here — they only mean something
        inside one network — so a snapshot carries exactly the state a
        *different* request can soundly reuse: deterministic minimizer
        outputs keyed by canonical block identity.
        """
        return {
            "format": POOL_SNAPSHOT_FORMAT,
            "covers": dict(self._warm_covers),
        }

    def merge(self, snapshot: dict | None) -> int:
        """Import another pool's snapshot (first wins); returns new count.

        Merging implies this pool participates in cross-request sharing,
        so :attr:`collect_covers` is switched on.
        """
        if snapshot is None:
            return 0
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("format") != POOL_SNAPSHOT_FORMAT
            or not isinstance(snapshot.get("covers"), dict)
        ):
            raise SerializationError(
                f"not a {POOL_SNAPSHOT_FORMAT} pool snapshot:"
                f" {snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r}"
            )
        self.collect_covers = True
        imported = 0
        for warm_key, payload in snapshot["covers"].items():
            if warm_key not in self._warm_covers:
                self._warm_covers[str(warm_key)] = payload
                imported += 1
        self.stats["warm_imported"] += imported
        return imported

    # -- reporting --------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of lookups (hash + interval) served from the pool."""
        lookups = self.stats["lookups"] + self.stats["interval_lookups"]
        hits = self.stats["hits"] + self.stats["interval_hits"]
        return hits / lookups if lookups else 0.0

    def __repr__(self) -> str:
        return f"DivisorPool({len(self.entries)} entries, stats={self.stats})"


__all__ = ["DivisorPool", "POOL_SNAPSHOT_FORMAT", "PoolEntry"]
