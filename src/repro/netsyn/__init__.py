"""Multi-output network synthesis with cross-output divisor sharing.

The per-output harness decomposes every output of a benchmark in
isolation and adds up the areas; this subsystem decomposes a whole
:class:`~repro.benchgen.registry.BenchmarkInstance` into **one** shared
:class:`~repro.techmap.network.LogicNetwork` instead:

* a :class:`~repro.netsyn.pool.DivisorPool` keyed by backend-free
  canonical hashes (polarity-aware: ``g`` and ``¬g`` share one gate)
  lets outputs reuse each other's divisors, covers, and residual
  blocks;
* a support-overlap :func:`~repro.netsyn.scheduler.schedule_by_overlap`
  schedule orders outputs so that reusable blocks are in the pool by
  the time overlapping outputs need them;
* the :class:`~repro.netsyn.synthesis.NetworkSynthesizer` recursively
  bi-decomposes residual blocks down to a literal threshold, consults
  the pool before every :class:`~repro.engine.Decomposer` call, and
  instantiates the surviving covers into the strashed network, where
  identical gates materialize once.
"""

from repro.netsyn.pool import DivisorPool, PoolEntry
from repro.netsyn.scheduler import schedule_by_overlap
from repro.netsyn.synthesis import (
    NetsynConfig,
    NetworkSynthesisResult,
    NetworkSynthesizer,
    synthesize_instance,
)

__all__ = [
    "DivisorPool",
    "NetsynConfig",
    "NetworkSynthesisResult",
    "NetworkSynthesizer",
    "PoolEntry",
    "schedule_by_overlap",
    "synthesize_instance",
]
