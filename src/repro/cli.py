"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2
    python -m repro.cli table3 [--names br1 br2] [--no-paper]
    python -m repro.cli table4 [--names z4]
    python -m repro.cli fig1
    python -m repro.cli fig2
    python -m repro.cli bench <name> [...]
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.harness.tables import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.harness.tables import render_table2

    print(render_table2())
    return 0


def _run_table(table: str, args: argparse.Namespace) -> int:
    from repro.harness.experiment import run_table
    from repro.harness.report import comparison_lines, shape_summary
    from repro.harness.tables import render_table_results

    names = args.names or None
    results = run_table(table, names=names)
    print(render_table_results(results, table, with_paper=not args.no_paper))
    print()
    for line in comparison_lines(results):
        print(line)
    print()
    print("shape summary:", shape_summary(results))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    return _run_table("III", args)


def _cmd_table4(args: argparse.Namespace) -> int:
    return _run_table("IV", args)


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.harness.figures import render_figure1

    print(render_figure1().rendering)
    return 0


def _cmd_fig2(_args: argparse.Namespace) -> int:
    from repro.harness.figures import render_figure2

    print(render_figure2().rendering)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.experiment import run_benchmark
    from repro.harness.tables import render_table_results

    results = [run_benchmark(name) for name in args.names]
    table = "III/IV"
    print(render_table_results(results, table, with_paper=not args.no_paper))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-bidec",
        description=(
            "Reproduce tables/figures of 'Computing the full quotient in"
            " bi-decomposition by approximation' (DATE 2020)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="operator table").set_defaults(
        handler=_cmd_table1
    )
    subparsers.add_parser("table2", help="full-quotient formulas").set_defaults(
        handler=_cmd_table2
    )
    for name, handler in (("table3", _cmd_table3), ("table4", _cmd_table4)):
        sub = subparsers.add_parser(name, help=f"run paper {name}")
        sub.add_argument("--names", nargs="*", help="subset of benchmarks")
        sub.add_argument(
            "--no-paper", action="store_true", help="omit the paper's rows"
        )
        sub.set_defaults(handler=handler)
    subparsers.add_parser("fig1", help="regenerate Figure 1").set_defaults(
        handler=_cmd_fig1
    )
    subparsers.add_parser("fig2", help="regenerate Figure 2").set_defaults(
        handler=_cmd_fig2
    )
    bench = subparsers.add_parser("bench", help="run named benchmarks")
    bench.add_argument("names", nargs="+")
    bench.add_argument("--no-paper", action="store_true")
    bench.set_defaults(handler=_cmd_bench)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
