"""Command-line interface: paper tables/figures and the decompose engine.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2
    python -m repro.cli table3 [--names br1 br2] [--no-paper]
    python -m repro.cli table4 [--names z4]
    python -m repro.cli fig1
    python -m repro.cli fig2
    python -m repro.cli bench <name> [...] [--json] [--jobs N] [--cache-dir DIR]
    python -m repro.cli decompose <name> [...] [--op auto] [--approx expand-full]
                                  [--minimizer spp] [--json]
                                  [--jobs N] [--cache-dir DIR]
                                  [--backend auto|bdd|bitset]
    python -m repro.cli netsyn <name> [...] [--json] [--jobs N] [--cache-dir DIR]
                               [--backend auto|bdd|bitset]
                               [--literal-threshold N] [--max-depth N]
    python -m repro.cli serve [--host H] [--port P] [--jobs N]
                              [--cache-dir DIR] [--cache-shards N]
                              [--cache-max-mb MB] [--no-prewarm]
                              [--timeout S] [--max-inflight N]
                              [--max-line-kb KB] [--max-pending N]
                              [--rate R] [--burst B]
                              [--min-slots N] [--max-slots N]
                              [--trace] [--trace-capacity N]
                              [--slow-request S]
    python -m repro.cli serve --status --port P
    python -m repro.cli client <status|metrics|trace|resize|shutdown|netsyn|decompose>
                               [names...] [--host H] --port P [--op auto]
                               [--timeout S] [--size N]
                               [--n N] [--slowest] [--min-duration S]
                               [--chrome out.json]

Installed as the ``repro-bidec`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.harness.tables import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.harness.tables import render_table2

    print(render_table2())
    return 0


def _run_table(table: str, args: argparse.Namespace) -> int:
    from repro.harness.experiment import run_table
    from repro.harness.report import comparison_lines, shape_summary
    from repro.harness.tables import render_table_results

    names = args.names or None
    results = run_table(table, names=names)
    print(render_table_results(results, table, with_paper=not args.no_paper))
    print()
    for line in comparison_lines(results):
        print(line)
    print()
    print("shape summary:", shape_summary(results))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    return _run_table("III", args)


def _cmd_table4(args: argparse.Namespace) -> int:
    return _run_table("IV", args)


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.harness.figures import render_figure1

    print(render_figure1().rendering)
    return 0


def _cmd_fig2(_args: argparse.Namespace) -> int:
    from repro.harness.figures import render_figure2

    print(render_figure2().rendering)
    return 0


def _bench_result_dict(result) -> dict:
    """JSON-friendly view of a harness BenchmarkResult (no artifacts)."""
    return {
        "name": result.name,
        "n_inputs": result.n_inputs,
        "n_outputs": result.n_outputs,
        "time_s": round(result.time_s, 6),
        "area_f": result.area_f,
        "area_g": result.area_g,
        "pct_errors": result.pct_errors,
        "pct_reduction": result.pct_reduction,
        "op_areas": result.op_areas,
        "op_gains": result.op_gains,
        "area_f_isolated": result.area_f_isolated,
        "op_areas_isolated": result.op_areas_isolated,
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.experiment import run_benchmarks
    from repro.harness.tables import render_table_results

    results = run_benchmarks(
        args.names, jobs=args.jobs, cache_dir=args.cache_dir
    )
    if args.json:
        print(json.dumps([_bench_result_dict(r) for r in results], indent=2))
        return 0
    table = "III/IV"
    print(render_table_results(results, table, with_paper=not args.no_paper))
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.harness.experiment import decompose_suite

    results = decompose_suite(
        args.names,
        op=args.op,
        approximator=args.approx,
        minimizer=args.minimizer,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return 0
    header = (
        f"{'output':<16} {'op':<14} {'lits':>5} {'err%':>6} {'ok':>3}"
        f" {'time(s)':>8}"
    )
    print(f"strategies: approx={args.approx} minimizer={args.minimizer}"
          f" op={args.op}")
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.name:<16} {result.op_name:<14}"
            f" {result.literal_cost:>5} {100 * result.error_rate:>6.2f}"
            f" {'yes' if result.verified else 'NO':>3}"
            f" {result.timings['total']:>8.3f}"
        )
    total_lits = sum(r.literal_cost for r in results)
    print("-" * len(header))
    print(f"{len(results)} outputs, {total_lits} literals total")
    return 0


def _cmd_netsyn(args: argparse.Namespace) -> int:
    from repro.harness.experiment import synthesize_network
    from repro.harness.tables import render_network_results
    from repro.netsyn.synthesis import NetsynConfig

    config = NetsynConfig(
        literal_threshold=args.literal_threshold,
        max_depth=args.max_depth,
        backend=args.backend,
    )
    results = [
        synthesize_network(
            name,
            config=config,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            backend=args.backend,
        )
        for name in args.names
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return 0
    print(render_network_results(results))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DecompositionService, ServiceClient, ServiceServer

    if args.status:
        if not args.port:
            print("serve --status needs --port", file=sys.stderr)
            return 2
        with ServiceClient(args.host, args.port) as client:
            print(json.dumps(client.status(), indent=2, sort_keys=True))
        return 0

    if args.trace:
        from repro import obs

        # Install before the service constructs its fleet: workers fork
        # with the tracer already in place, so their spans join every
        # request's trace (exactly like an inherited fault plan).
        obs.install()
    service = DecompositionService(
        jobs=args.jobs if args.jobs > 0 else None,
        cache_dir=args.cache_dir,
        cache_shards=args.cache_shards,
        cache_max_bytes=(
            args.cache_max_mb * 1024 * 1024 if args.cache_max_mb else None
        ),
        prewarm=not args.no_prewarm,
        timeout_s=args.timeout if args.timeout > 0 else None,
        max_inflight=args.max_inflight if args.max_inflight > 0 else None,
        max_line_bytes=args.max_line_kb * 1024,
        max_pending_per_conn=(
            args.max_pending if args.max_pending > 0 else None
        ),
        rate=args.rate if args.rate > 0 else None,
        burst=args.burst if args.burst > 0 else None,
        min_slots=args.min_slots if args.min_slots > 0 else None,
        max_slots=args.max_slots if args.max_slots > 0 else None,
        trace_capacity=args.trace_capacity,
        slow_request_s=args.slow_request if args.slow_request > 0 else None,
    )

    async def _run() -> None:
        server = ServiceServer(service, args.host, args.port)
        await server.start()
        print(
            f"repro-bidec service listening on {server.host}:{server.port}"
            f" (fleet={service.fleet.size},"
            f" cache={'on' if service.cache else 'off'})",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    if not args.port:
        print("client needs --port", file=sys.stderr)
        return 2
    with ServiceClient(args.host, args.port) as client:
        if args.action == "status":
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.action == "metrics":
            print(client.metrics(), end="")
            return 0
        if args.action == "trace":
            result = client.trace(
                n=args.n,
                order="slowest" if args.slowest else "recent",
                min_duration_s=(
                    args.min_duration if args.min_duration > 0 else None
                ),
            )
            if args.chrome:
                from pathlib import Path

                from repro.obs import chrome_trace

                document = chrome_trace(result.get("traces", []))
                Path(args.chrome).write_text(json.dumps(document))
                print(
                    f"wrote {len(result.get('traces', []))} traces"
                    f" ({len(document['traceEvents'])} events) to"
                    f" {args.chrome}"
                )
                return 0
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        if args.action == "resize":
            if args.size < 1:
                print("client resize needs --size N (>= 1)", file=sys.stderr)
                return 2
            print(json.dumps(client.resize(args.size), sort_keys=True))
            return 0
        if args.action == "shutdown":
            print(json.dumps(client.shutdown()))
            return 0
        if not args.names:
            print(f"client {args.action} needs benchmark names", file=sys.stderr)
            return 2
        timeout_s = args.timeout if args.timeout > 0 else None
        if args.action == "netsyn":
            rows = []
            for name in args.names:
                result, stats = client.netsyn(
                    benchmark=name, timeout_s=timeout_s
                )
                rows.append(
                    {
                        "name": name,
                        "shared_area": result["shared_area"],
                        "isolated_area": result["isolated_area"],
                        "shared_gate_count": result["shared_gate_count"],
                        "served_by": stats["served_by"],
                        "coalesced": stats["coalesced"],
                    }
                )
            print(json.dumps(rows, indent=2))
            return 0
        # action == "decompose": ship every output of the named benchmarks
        # as one decompose_many batch.
        from repro.benchgen.registry import load_benchmark
        from repro.engine import wire

        items = []
        for name in args.names:
            instance = load_benchmark(name)
            items.extend(
                {
                    "name": f"{name}.o{index}",
                    "f": wire.isf_to_payload(isf),
                }
                for index, isf in enumerate(instance.outputs)
            )
        defaults = {"op": args.op}
        if timeout_s is not None:
            defaults["timeout_s"] = timeout_s
        result, stats = client.decompose_many(items, **defaults)
        rows = [
            {
                "name": item["name"],
                "op": payload["op"],
                "literal_cost": payload["literal_cost"],
                "verified": payload["verified"],
            }
            for item, payload in zip(items, result["results"])
        ]
        print(json.dumps({"results": rows, "stats": stats}, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-bidec",
        description=(
            "Reproduce tables/figures of 'Computing the full quotient in"
            " bi-decomposition by approximation' (DATE 2020)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="operator table").set_defaults(
        handler=_cmd_table1
    )
    subparsers.add_parser("table2", help="full-quotient formulas").set_defaults(
        handler=_cmd_table2
    )
    for name, handler in (("table3", _cmd_table3), ("table4", _cmd_table4)):
        sub = subparsers.add_parser(name, help=f"run paper {name}")
        sub.add_argument("--names", nargs="*", help="subset of benchmarks")
        sub.add_argument(
            "--no-paper", action="store_true", help="omit the paper's rows"
        )
        sub.set_defaults(handler=handler)
    subparsers.add_parser("fig1", help="regenerate Figure 1").set_defaults(
        handler=_cmd_fig1
    )
    subparsers.add_parser("fig2", help="regenerate Figure 2").set_defaults(
        handler=_cmd_fig2
    )
    def add_execution_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the batch (default: 1, in-process)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help=(
                "persistent result cache directory; results are keyed by"
                " serialized function + strategy + operator, so warm"
                " re-runs complete without recomputation"
            ),
        )

    bench = subparsers.add_parser("bench", help="run named benchmarks")
    bench.add_argument("names", nargs="+")
    bench.add_argument("--no-paper", action="store_true")
    bench.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    add_execution_flags(bench)
    bench.set_defaults(handler=_cmd_bench)

    decompose = subparsers.add_parser(
        "decompose",
        help="decompose benchmark outputs with the strategy engine",
        description=(
            "Batch-decompose every output of the named benchmarks through"
            " the Decomposer engine (one shared BDD manager, memoized"
            " sub-results)."
        ),
    )
    decompose.add_argument("names", nargs="+", help="benchmark names")
    decompose.add_argument(
        "--op",
        default="auto",
        help="operator name, or 'auto' to search all ten (default)",
    )
    decompose.add_argument(
        "--approx",
        default="expand-full",
        help=(
            "approximator strategy, e.g. expand-full, expand-bounded:0.05,"
            " random:0.3 (default: expand-full)"
        ),
    )
    decompose.add_argument(
        "--minimizer",
        default="spp",
        help="minimizer strategy: spp, espresso, exact, none (default: spp)",
    )
    decompose.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "bdd", "bitset"),
        help=(
            "function representation: 'bitset' forces the dense"
            " truth-table fast path, 'bdd' forces BDDs, 'auto' (default)"
            " picks bitset per output when its support is small enough;"
            " results are identical on every backend, only speed differs"
        ),
    )
    decompose.add_argument(
        "--json", action="store_true", help="emit DecomposeResult metrics as JSON"
    )
    add_execution_flags(decompose)
    decompose.set_defaults(handler=_cmd_decompose)

    netsyn = subparsers.add_parser(
        "netsyn",
        help="synthesize one shared multi-output network per benchmark",
        description=(
            "Decompose a whole benchmark into a single shared LogicNetwork:"
            " outputs reuse each other's divisors and residual blocks"
            " through a canonical-hash pool, and the report compares the"
            " shared network's mapped area against the per-output sum."
        ),
    )
    netsyn.add_argument("names", nargs="+", help="benchmark names")
    netsyn.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "bdd", "bitset"),
        help=(
            "function representation for the decompositions (results are"
            " identical on every backend; cache entries are shared)"
        ),
    )
    netsyn.add_argument(
        "--literal-threshold",
        type=int,
        default=10,
        metavar="N",
        help="instantiate blocks at or below this literal cost (default: 10)",
    )
    netsyn.add_argument(
        "--max-depth",
        type=int,
        default=2,
        metavar="N",
        help="maximum recursive bi-decomposition depth (default: 2)",
    )
    netsyn.add_argument(
        "--json", action="store_true", help="emit synthesis metrics as JSON"
    )
    add_execution_flags(netsyn)
    netsyn.set_defaults(handler=_cmd_netsyn)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived decomposition service",
        description=(
            "Serve decompose/decompose_many/netsyn requests over"
            " newline-delimited JSON (repro-svc/1): duplicate concurrent"
            " requests coalesce into one computation, results persist in"
            " a sharded LRU-bounded cache, and a pre-warmed worker fleet"
            " keeps managers and engines warm across requests."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0, pick a free one and print it)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="fleet size (default: 0, size to the machine)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sharded persistent result store (omit to serve cache-less)",
    )
    serve.add_argument(
        "--cache-shards", type=int, default=4, metavar="N",
        help="number of cache shards (default: 4)",
    )
    serve.add_argument(
        "--cache-max-mb", type=int, default=0, metavar="MB",
        help="total cache byte budget, LRU-evicted (default: unbounded)",
    )
    serve.add_argument(
        "--no-prewarm", action="store_true",
        help="skip force-spawning the fleet at startup",
    )
    serve.add_argument(
        "--timeout", type=float, default=0.0, metavar="S",
        help=(
            "default per-request deadline in seconds; on expiry the"
            " worker is killed and respawned and the client gets a typed"
            " 'timeout' error (default: none; a request's timeout_s"
            " param always wins)"
        ),
    )
    serve.add_argument(
        "--max-inflight", type=int, default=0, metavar="N",
        help=(
            "max concurrently admitted compute requests; beyond it"
            " requests get a typed 'overloaded' error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--max-line-kb", type=int, default=8192, metavar="KB",
        help=(
            "max request line size in KiB; larger lines get a typed"
            " 'too-large' error and the connection closes (default: 8192)"
        ),
    )
    serve.add_argument(
        "--max-pending", type=int, default=0, metavar="N",
        help=(
            "max unanswered pipelined requests per connection; beyond it"
            " requests get a typed 'overloaded' error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--rate", type=float, default=0.0, metavar="R",
        help=(
            "per-client compute-request rate limit in requests/second;"
            " beyond it requests get a typed 'rate-limited' error carrying"
            " retry_after_s (default: unlimited)"
        ),
    )
    serve.add_argument(
        "--burst", type=float, default=0.0, metavar="B",
        help=(
            "token-bucket burst capacity per client (default: max(rate, 1))"
        ),
    )
    serve.add_argument(
        "--min-slots", type=int, default=0, metavar="N",
        help=(
            "autoscale floor: shrink the fleet no further than N slots"
            " (set with --max-slots to enable queue-depth autoscaling)"
        ),
    )
    serve.add_argument(
        "--max-slots", type=int, default=0, metavar="N",
        help="autoscale ceiling: grow the fleet no further than N slots",
    )
    serve.add_argument(
        "--status", action="store_true",
        help="probe a running server (--port) and print its counters",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help=(
            "install the span tracer before the fleet forks: every request"
            " records a full span tree (server/coalescer/fleet/worker/"
            "engine/cache), queryable via 'client trace'"
        ),
    )
    serve.add_argument(
        "--trace-capacity", type=int, default=256, metavar="N",
        help="trace ring-buffer capacity (default: 256 requests)",
    )
    serve.add_argument(
        "--slow-request", type=float, default=0.0, metavar="S",
        help=(
            "log requests slower than S seconds with a per-site latency"
            " breakdown (requires --trace; default: off)"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    client = subparsers.add_parser(
        "client",
        help="send one request to a running decomposition service",
    )
    client.add_argument(
        "action",
        choices=(
            "status", "metrics", "trace", "resize", "shutdown", "netsyn",
            "decompose",
        ),
    )
    client.add_argument("names", nargs="*", help="benchmark names")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=0, required=False)
    client.add_argument(
        "--size", type=int, default=0, metavar="N",
        help="target fleet size for the resize action",
    )
    client.add_argument(
        "--n", type=int, default=20, metavar="N",
        help="trace action: fetch up to N traces (default: 20)",
    )
    client.add_argument(
        "--slowest", action="store_true",
        help="trace action: slowest-first instead of most recent",
    )
    client.add_argument(
        "--min-duration", type=float, default=0.0, metavar="S",
        help="trace action: only traces at least S seconds long",
    )
    client.add_argument(
        "--chrome", default=None, metavar="PATH",
        help=(
            "trace action: write the fetched traces as Chrome trace-event"
            " JSON (load PATH in https://ui.perfetto.dev)"
        ),
    )
    client.add_argument(
        "--op", default="auto", help="operator for decompose (default: auto)"
    )
    client.add_argument(
        "--timeout", type=float, default=0.0, metavar="S",
        help="server-side per-request deadline in seconds (default: server's)",
    )
    client.set_defaults(handler=_cmd_client)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
