"""Approximation methods producing divisors for bi-decomposition.

* :mod:`~repro.approx.expansion` — the paper's experimental 0→1 method
  (Section IV-A): expand pseudoproducts of a 2-SPP cover, move the
  swallowed off-set minterms into the dc-set, re-synthesize.  Both the
  paper's full-expansion variant and the bounded-error variant of
  Bernasconi–Ciriani (DSD 2014, ref. [2]) are provided.
* :mod:`~repro.approx.generic` — random 0→1 / 1→0 / 0↔1 approximators
  matched to each operator's required kind (used by tests and the
  all-operator ablation).
* :mod:`~repro.approx.error` — error-rate metrics.
"""

from repro.approx.error import error_count, error_rate, output_error_rate
from repro.approx.expansion import (
    ExpansionResult,
    approximate_expand_bounded,
    approximate_expand_full,
)
from repro.approx.generic import (
    approximation_for_kind,
    approximation_for_operator,
    mixed_approximation,
    over_approximation,
    under_approximation,
)

__all__ = [
    "ExpansionResult",
    "approximate_expand_bounded",
    "approximate_expand_full",
    "approximation_for_kind",
    "approximation_for_operator",
    "error_count",
    "error_rate",
    "mixed_approximation",
    "output_error_rate",
    "over_approximation",
    "under_approximation",
]
