"""Random approximators of every kind (Definitions 1–3 of the paper).

These are used for property-based testing of all ten operators and for
the all-operator ablation experiment.  Each generator starts from the
exact function (or its complement) and flips a requested fraction of
care minterms in the allowed direction only, leaving dc minterms to an
arbitrary but deterministic choice.

All generators enumerate minterms, so they require small arity; the
benchmark-scale flow uses :mod:`repro.approx.expansion` instead.
"""

from __future__ import annotations

from random import Random

from repro.backend.protocol import BooleanFunction as Function
from repro.boolfunc.isf import ISF
from repro.core.operators import ApproximationKind, BinaryOperator, operator_by_name


def _flip_sample(mgr, candidates: list[int], rate: float, rng: Random) -> Function:
    """Union of a random ``rate`` fraction of the candidate minterms."""
    count = min(len(candidates), round(rate * len(candidates)))
    chosen = rng.sample(candidates, count) if count else []
    flips = mgr.false
    for minterm in chosen:
        flips = flips | mgr.minterm(minterm)
    return flips


def over_approximation(f: ISF, rate: float, rng: Random) -> Function:
    """A 0→1 approximation of ``f``: flips ``rate`` of the off-set up.

    Don't-care minterms of ``f`` are resolved downwards (g = 0 there), so
    the error set is exactly the sampled off-set minterms.
    """
    flips = _flip_sample(f.mgr, sorted(f.off.minterms()), rate, rng)
    return f.on | flips


def under_approximation(f: ISF, rate: float, rng: Random) -> Function:
    """A 1→0 approximation of ``f``: drops ``rate`` of the on-set."""
    flips = _flip_sample(f.mgr, sorted(f.on.minterms()), rate, rng)
    return f.on - flips


def mixed_approximation(f: ISF, rate: float, rng: Random) -> Function:
    """A 0↔1 approximation: flips ``rate`` of all care minterms."""
    flips = _flip_sample(f.mgr, sorted(f.care.minterms()), rate, rng)
    return (f.on ^ flips) - f.dc


def approximation_for_kind(
    f: ISF, kind: ApproximationKind, rate: float, rng: Random
) -> Function:
    """Generate a valid divisor of the requested kind."""
    if kind is ApproximationKind.OVER_F:
        return over_approximation(f, rate, rng)
    if kind is ApproximationKind.UNDER_F:
        return under_approximation(f, rate, rng)
    if kind is ApproximationKind.OVER_COMPLEMENT:
        return over_approximation(~f, rate, rng)
    if kind is ApproximationKind.UNDER_COMPLEMENT:
        return under_approximation(~f, rate, rng)
    return mixed_approximation(f, rate, rng)


def approximation_for_operator(
    f: ISF, op: BinaryOperator | str, rate: float, rng: Random
) -> Function:
    """Generate a divisor of the kind operator ``op`` requires."""
    if isinstance(op, str):
        op = operator_by_name(op)
    return approximation_for_kind(f, op.approximation, rate, rng)
