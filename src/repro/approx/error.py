"""Error-rate metrics for approximations.

The paper (following ref. [2]) measures the error rate of an
approximation ``g`` of ``f`` as the fraction of output bits complemented,
i.e. the number of care minterms where ``g`` disagrees with ``f`` over
the size of the Boolean space.  For multi-output functions the flipped
bits are summed over all outputs and divided by ``2^n · m``.
"""

from __future__ import annotations

from repro.backend.protocol import BooleanFunction as Function
from repro.boolfunc.isf import ISF


def error_count(f: ISF, g: Function) -> int:
    """Number of care minterms of ``f`` where ``g`` differs."""
    return ((f.on - g) | (g & f.off)).satcount()


def error_rate(f: ISF, g: Function) -> float:
    """Fraction of the whole Boolean space flipped by ``g``."""
    return error_count(f, g) / (1 << f.n_vars)


def output_error_rate(pairs: list[tuple[ISF, Function]]) -> float:
    """Aggregate error rate of a multi-output approximation.

    ``pairs`` holds one ``(f_j, g_j)`` pair per output; the result is
    the total number of flipped output bits over ``2^n · m``.
    """
    if not pairs:
        raise ValueError("need at least one output")
    total_flips = sum(error_count(f, g) for f, g in pairs)
    space = (1 << pairs[0][0].n_vars) * len(pairs)
    return total_flips / space
