"""0→1 approximation by pseudoproduct expansion (paper Section IV-A).

The method of Bernasconi–Ciriani (DSD 2014, paper ref. [2]) expands
pseudoproducts of an initial 2-SPP cover of ``f``: dropping a factor from
a pseudoproduct doubles its coverage, removing literals from the form and
possibly swallowing other pseudoproducts, at the price of moving some
off-set minterms to the on-set (0→1 errors).

Two variants are provided:

* :func:`approximate_expand_full` — the variant the paper actually uses
  for its experiments: *every* pseudoproduct is expanded (its most
  profitable factor is dropped), all newly covered off-set minterms move
  to the dc-set, and the function is re-synthesized with the extended
  dc-set.  The final error rate is whatever the re-synthesis produces —
  "the actual error rate of the approximation g depends on the
  benchmark".
* :func:`approximate_expand_bounded` — the original bounded-error
  selection of [2]: candidate expansions are ranked by gain/cost and
  applied greedily while the cumulative error rate stays within a budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.manager import Function
from repro.boolfunc.isf import ISF
from repro.spp.pseudocube import Pseudocube
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import minimize_spp


@dataclass
class ExpansionResult:
    """Outcome of an expansion-based approximation."""

    #: The divisor: a completely specified 0→1 approximation of f.
    g: Function
    #: Minimized 2-SPP form of the divisor.
    g_cover: SppCover
    #: The 2-SPP cover of f the expansion started from.
    initial_cover: SppCover
    #: Off-set minterms moved to the dc-set by the expansion.
    extended_dc: Function
    #: |g_on \ f_on| — the 0→1 errors actually introduced.
    n_errors: int
    #: ``n_errors / 2^n``.
    error_rate: float


def _expansion_candidates(
    pc: Pseudocube, off: Function, mgr
) -> list[tuple[int, int, Pseudocube]]:
    """All single-factor expansions of ``pc`` with their (cost, gain).

    Cost is the number of 0→1 complementations the expansion introduces;
    gain is the 2-SPP literal reduction.
    """
    candidates = []
    for kind, payload in pc.factors():
        expanded = pc.drop_factor(kind, payload)
        if expanded.factor_count == 0:
            # Never expand to the bare tautology: g = 1 is the trivial
            # endpoint g_n = 1, h_n = f of the decomposition sequence.
            continue
        cost = (expanded.to_function(mgr) & off).satcount()
        gain = pc.literal_count - expanded.literal_count
        candidates.append((cost, gain, expanded))
    return candidates


def _finalize(
    f: ISF,
    initial: SppCover,
    extended_dc: Function,
    expanded: SppCover,
    resynthesis: str = "full",
) -> ExpansionResult:
    """Re-synthesize with the extended dc-set and package the result.

    ``resynthesis="full"`` runs the complete 2-SPP minimization loop
    seeded with the expanded cover (the aggressive regime: the extended
    dc-set lets the minimizer collapse the cover).  ``"light"`` only
    merges and removes redundant pseudoproducts, preserving the cover's
    structural alignment with ``f``'s own cover — important for the area
    of multi-output control benchmarks, where per-output re-synthesis
    would destroy the sharing of product terms across outputs.
    """
    mgr = f.mgr
    relaxed = ISF(f.on, (f.dc | extended_dc) - f.on)
    if resynthesis == "light":
        from repro.spp.synthesis import _merge_fixpoint, _spp_irredundant

        g_cover = _spp_irredundant(_merge_fixpoint(expanded), relaxed.dc, mgr)
    else:
        g_cover = minimize_spp(relaxed, initial=expanded)
    g = g_cover.to_function(mgr)
    error_set = g & f.off
    n_errors = error_set.satcount()
    return ExpansionResult(
        g=g,
        g_cover=g_cover,
        initial_cover=initial,
        extended_dc=extended_dc,
        n_errors=n_errors,
        error_rate=n_errors / (1 << f.n_vars),
    )


def approximate_expand_full(
    f: ISF,
    initial: SppCover | None = None,
    policy: str = "aggressive",
    rounds: int = 1,
) -> ExpansionResult:
    """Full-expansion variant used by the paper's experiments.

    Every pseudoproduct of the initial 2-SPP cover is expanded by
    dropping its most profitable factor — highest literal gain per
    introduced error, matching the gain/cost evaluation of [2] — and the
    off-set minterms involved in the expansions become don't-cares for
    the re-synthesis of ``g``.

    ``policy`` selects the expansion regime:

    * ``"aggressive"`` — every pseudoproduct is expanded unconditionally.
      On XOR-rich arithmetic functions this collapses ``g`` massively at
      a 40–50% error rate, the regime of the paper's Table IV.
    * ``"conservative"`` — a pseudoproduct is expanded only when the
      expansion is free (no new errors) or structurally profitable (the
      expanded pseudoproduct swallows at least one other pseudoproduct of
      the cover, the gain model of [2]).  This is the regime the paper's
      structured control-logic benchmarks exhibit in Table III; our
      synthetic stand-ins lack that structure, so the policy recreates it
      explicitly (see DESIGN.md, substitutions).
    """
    if policy not in ("aggressive", "conservative"):
        raise ValueError(f"unknown expansion policy {policy!r}")
    mgr = f.mgr
    spp = initial if initial is not None else minimize_spp(f)
    off = f.off
    resynthesis = "light" if policy == "conservative" else "full"

    extended_dc = mgr.false
    current = spp
    result: ExpansionResult | None = None
    # Conservative-policy error allowance per expansion: proportional to
    # the function's own on-set size (scale-free across variable counts).
    conservative_budget = max(2, f.on.satcount() // 256)
    for _round in range(max(1, rounds)):
        functions = [pc.to_function(mgr) for pc in current]
        expanded_pcs = []
        grew = False
        for index, pc in enumerate(current):
            candidates = _expansion_candidates(pc, off, mgr)
            if not candidates:
                expanded_pcs.append(pc)
                continue  # factor-free pseudoproduct: nothing to expand
            cost, _gain, expanded = min(
                candidates, key=lambda item: (item[0] / max(item[1], 1), item[0], -item[1])
            )
            if policy == "conservative" and cost > 0:
                budget = conservative_budget
                expanded_fn = expanded.to_function(mgr)
                swallows = any(
                    other_index != index and functions[other_index] <= expanded_fn
                    for other_index in range(len(functions))
                )
                if not (swallows or cost <= budget):
                    # Fall back to the cheapest acceptable expansion, if any.
                    acceptable = [
                        item for item in candidates if item[0] <= budget
                    ]
                    if acceptable:
                        _cost, _gain, expanded = min(
                            acceptable,
                            key=lambda item: (item[0] / max(item[1], 1), item[0], -item[1]),
                        )
                    else:
                        expanded_pcs.append(pc)
                        continue
            extended_dc = extended_dc | (expanded.to_function(mgr) & off)
            expanded_pcs.append(expanded)
            grew = True
        expanded_cover = SppCover(spp.n_vars, expanded_pcs)
        result = _finalize(f, spp, extended_dc, expanded_cover, resynthesis)
        current = result.g_cover
        if not grew:
            break
    assert result is not None
    return result


def approximate_expand_bounded(
    f: ISF,
    error_budget: float,
    initial: SppCover | None = None,
) -> ExpansionResult:
    """Bounded-error variant of [2].

    Applies single-factor expansions in decreasing gain/cost order while
    the cumulative number of newly covered off-set minterms stays within
    ``error_budget * 2^n``.
    """
    if not 0.0 <= error_budget <= 1.0:
        raise ValueError("error_budget must be within [0, 1]")
    mgr = f.mgr
    spp = initial if initial is not None else minimize_spp(f)
    off = f.off
    budget = int(error_budget * (1 << f.n_vars))

    ranked: list[tuple[float, int, int, Pseudocube]] = []
    for index, pc in enumerate(spp):
        for cost, gain, expanded in _expansion_candidates(pc, off, mgr):
            ratio = gain / (cost + 1)
            ranked.append((ratio, cost, index, expanded))
    ranked.sort(key=lambda item: -item[0])

    extended_dc = mgr.false
    chosen: dict[int, Pseudocube] = {}
    for _ratio, _cost, index, expanded in ranked:
        if index in chosen:
            continue  # one expansion per pseudoproduct, as in [2]
        new_errors = (expanded.to_function(mgr) & off) - extended_dc
        introduced = new_errors.satcount()
        if extended_dc.satcount() + introduced > budget:
            continue
        extended_dc = extended_dc | new_errors
        chosen[index] = expanded
    expanded_cover = SppCover(
        spp.n_vars,
        [chosen.get(index, pc) for index, pc in enumerate(spp)],
    )
    return _finalize(f, spp, extended_dc, expanded_cover)
