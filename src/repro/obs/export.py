"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Each trace record becomes one "process" row (pid = ordinal, named after
the request kind and trace id) whose threads are the real OS pids the
spans ran in — so the server/worker split is visible at a glance.
Spans are emitted as ``ph: "X"`` complete events with microsecond
timestamps rebased to the earliest span in the export.

The output of :func:`chrome_trace` is a plain dict; dump it with
``json.dumps`` and load the file in https://ui.perfetto.dev.
"""

from __future__ import annotations

from typing import Iterable


def chrome_trace(records: Iterable[dict]) -> dict:
    """Convert :class:`~repro.obs.store.TraceStore` records to Chrome JSON."""
    records = list(records)
    starts = [
        span["t0"]
        for record in records
        for span in record.get("spans", ())
        if isinstance(span.get("t0"), (int, float))
    ]
    origin = min(starts) if starts else 0.0
    events: list[dict] = []
    for ordinal, record in enumerate(records, start=1):
        label = (
            f"{record.get('kind', '?')} {str(record.get('trace_id', ''))[:12]}"
            f" [{record.get('status', '?')}]"
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": ordinal,
                "tid": 0,
                "args": {"name": label},
            }
        )
        seen_tids: set[int] = set()
        for span in record.get("spans", ()):
            t0, t1 = span.get("t0"), span.get("t1")
            if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
                continue
            tid = int(span.get("pid", 0))
            if tid not in seen_tids:
                seen_tids.add(tid)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": ordinal,
                        "tid": tid,
                        "args": {"name": f"pid {tid}"},
                    }
                )
            args = {
                "span_id": span.get("span_id"),
                "parent_id": span.get("parent_id"),
                "status": span.get("status"),
            }
            attrs = span.get("attrs")
            if isinstance(attrs, dict):
                args.update(attrs)
            events.append(
                {
                    "name": str(span.get("site", "?")),
                    "cat": str(record.get("kind", "request")),
                    "ph": "X",
                    "pid": ordinal,
                    "tid": tid,
                    "ts": (t0 - origin) * 1e6,
                    "dur": max(0.0, t1 - t0) * 1e6,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: dict) -> list[str]:
    """Schema-check a Chrome trace document; return a list of problems.

    Used by tests and the CI wire smoke — an empty list means the file
    is loadable by Perfetto's trace-event importer.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i}: missing {field!r}")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
        if ph == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    problems.append(f"event {i}: non-numeric {field!r}")
    return problems
