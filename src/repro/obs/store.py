"""Bounded ring buffer of reassembled request traces.

The service records one entry per completed request: the root span plus
every descendant (including worker-side spans absorbed across the fleet
pipe), flattened to JSON-safe dicts.  The buffer is a fixed-capacity
ring — oldest traces fall off — queried by recency or duration for the
``trace`` wire kind and the Chrome exporter.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

#: Query orders accepted by :meth:`TraceStore.query`.
ORDERS = ("recent", "slowest")


class TraceStore:
    """Thread-safe bounded store of finished trace records.

    A *record* is a dict::

        {"trace_id", "kind", "status", "t0", "duration_s", "spans": [...]}

    where ``spans`` is the flattened span tree (each span carries its
    own ``span_id``/``parent_id``).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def add(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self.recorded += 1

    def query(
        self,
        n: int = 20,
        order: str = "recent",
        min_duration_s: float = 0.0,
    ) -> list[dict]:
        """Return up to ``n`` records, newest-first or slowest-first."""
        if order not in ORDERS:
            raise ValueError(f"order must be one of {ORDERS}, got {order!r}")
        with self._lock:
            records: Iterable[dict] = list(self._ring)
        if min_duration_s > 0.0:
            records = [r for r in records if r.get("duration_s", 0.0) >= min_duration_s]
        else:
            records = list(records)
        if order == "slowest":
            records.sort(key=lambda r: r.get("duration_s", 0.0), reverse=True)
        else:
            records.reverse()
        return records[: max(0, int(n))]

    def stats(self) -> dict:
        with self._lock:
            return {
                "recorded": self.recorded,
                "buffered": len(self._ring),
                "capacity": self.capacity,
                "dropped": self.recorded - len(self._ring),
            }
