"""Span-based observability for the decomposition stack.

``repro.obs`` is deliberately standalone — it imports nothing from the
rest of :mod:`repro` — so every layer (engine, BDD manager, netsyn,
service) can instrument itself by importing :func:`span` directly
without creating dependency cycles or dragging the service stack into
engine-only processes.

The subsystem mirrors the :mod:`repro.service.faults` hook pattern:

* :func:`install` / :func:`uninstall` / :func:`active` manage one
  process-wide :class:`Tracer`; forked workers inherit it, so worker
  spans join the server's traces.
* :func:`span` is the single instrumentation primitive.  When no
  tracer is installed it returns a shared no-op singleton — the cost
  of an uninstrumented site is one module-global read.

Higher layers add :class:`~repro.obs.store.TraceStore` (bounded ring
buffer of reassembled traces), :class:`~repro.obs.hist.LatencyHistograms`
(fixed-bucket per-site latency with exemplar trace ids), and
:func:`~repro.obs.export.chrome_trace` (Perfetto-loadable Chrome
trace-event JSON).
"""

from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.obs.hist import DEFAULT_BUCKETS, LatencyHistograms
from repro.obs.store import TraceStore
from repro.obs.trace import (
    CLOCK,
    Tracer,
    absorb,
    active,
    current_context,
    current_trace_id,
    install,
    installed,
    span,
    uninstall,
)

__all__ = [
    "CLOCK",
    "DEFAULT_BUCKETS",
    "LatencyHistograms",
    "TraceStore",
    "Tracer",
    "absorb",
    "active",
    "chrome_trace",
    "current_context",
    "current_trace_id",
    "install",
    "installed",
    "span",
    "uninstall",
    "validate_chrome_trace",
]
