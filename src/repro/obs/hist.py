"""Fixed-bucket per-site latency histograms with trace-id exemplars.

Prometheus-shaped: cumulative ``le`` buckets plus ``_sum``/``_count``,
one histogram per span site.  Each bucket remembers the most recent
observation that landed in it together with its trace id, so the
rendered page can attach OpenMetrics-style exemplars — a scrape reader
can jump from "p99 is 80ms" straight to a concrete slow trace.
"""

from __future__ import annotations

import threading

#: Upper bounds (seconds) for the fixed latency buckets.  Spans in this
#: stack range from ~50µs cache probes to multi-second netsyn runs.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistograms:
    """Thread-safe map of span site -> fixed-bucket latency histogram."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        # site -> [per-bucket counts..., +Inf count]
        self._counts: dict[str, list[int]] = {}
        self._sums: dict[str, float] = {}
        # site -> bucket index -> (value, trace_id)
        self._exemplars: dict[str, dict[int, tuple[float, str]]] = {}

    def _bucket_index(self, seconds: float) -> int:
        for i, le in enumerate(self.buckets):
            if seconds <= le:
                return i
        return len(self.buckets)

    def observe(self, site: str, seconds: float, trace_id: str | None = None) -> None:
        index = self._bucket_index(seconds)
        with self._lock:
            counts = self._counts.get(site)
            if counts is None:
                counts = self._counts[site] = [0] * (len(self.buckets) + 1)
                self._sums[site] = 0.0
                self._exemplars[site] = {}
            counts[index] += 1
            self._sums[site] += seconds
            if trace_id is not None:
                self._exemplars[site][index] = (seconds, trace_id)

    def observe_trace(self, record: dict) -> None:
        """Fold every span of a finished trace record into the histograms."""
        trace_id = record.get("trace_id")
        for span in record.get("spans", ()):
            t0, t1 = span.get("t0"), span.get("t1")
            if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
                self.observe(str(span.get("site", "?")), max(0.0, t1 - t0), trace_id)

    def snapshot(self) -> dict:
        """Sites -> {"buckets": [(le, cumulative)...], "sum", "count", "exemplars"}.

        ``buckets`` are cumulative (Prometheus ``le`` semantics) and end
        with the ``+Inf`` bucket.  ``exemplars`` maps bucket index ->
        ``(value, trace_id)`` for the non-cumulative bucket the
        observation landed in.
        """
        with self._lock:
            out = {}
            for site, counts in self._counts.items():
                cumulative = []
                running = 0
                for i, le in enumerate(self.buckets):
                    running += counts[i]
                    cumulative.append((le, running))
                running += counts[-1]
                cumulative.append((float("inf"), running))
                out[site] = {
                    "buckets": cumulative,
                    "sum": self._sums[site],
                    "count": running,
                    "exemplars": dict(self._exemplars[site]),
                }
            return out
