"""Contextvar-scoped span tracing with fork/pipe-crossing support.

One :class:`Tracer` is installed process-wide (:func:`install`), exactly
like :func:`repro.service.faults.install`: forked fleet workers inherit
it, and when none is installed every instrumented site degrades to a
shared no-op singleton whose entire cost is a module-global read.

Spans form trees: the first span opened in a context starts a new
trace; nested spans (same task, thread, or ``contextvars`` copy) become
children.  Timing uses :data:`CLOCK` (``time.perf_counter`` —
``CLOCK_MONOTONIC``, shared by parent and forked children on Linux);
finished spans are serialized immediately to plain JSON-safe dicts with
epoch timestamps via the tracer's ``(epoch, clock)`` anchor, so worker
and server spans align on one host timeline.

Crossing process boundaries:

* the parent captures :func:`current_context` — a small
  ``{"trace_id", "span_id"}`` dict — and ships it over the fleet pipe;
* the worker wraps its compute in :meth:`Tracer.remote`, which grafts
  new spans under the shipped parent, then returns
  :meth:`Tracer.pop_trace` payloads on the reply envelope;
* the server calls :func:`absorb` to merge them back into the live
  trace before the request's root span closes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterable

#: The span clock.  ``time.perf_counter`` is CLOCK_MONOTONIC on Linux:
#: system-wide, unaffected by clock steps, and valid across ``fork()``
#: — which is what lets worker spans share the server's timeline.
CLOCK: Callable[[], float] = time.perf_counter

#: Span statuses a site may report.
STATUSES = ("ok", "error", "timeout")

#: Every named site instrumented across the stack (mirrors and extends
#: the ``repro.service.faults.KNOWN_SITES`` failure sites).  Purely
#: documentation — :func:`span` accepts any name so new sites never
#: need a registry edit.
SPAN_SITES = (
    "server.request",
    "server.admission",
    "coalesce.leader",
    "coalesce.follower",
    "cache.get",
    "cache.put",
    "cache.journal",
    "fleet.checkout",
    "fleet.roundtrip",
    "worker.compute",
    "engine.dispatch",
    "engine.approximate",
    "engine.quotient",
    "engine.minimize",
    "engine.verify",
    "bdd.reorder",
    "netsyn.synthesize",
    "netsyn.cover",
)

_CURRENT: ContextVar[Any] = ContextVar("repro_obs_current_span", default=None)


class _NullSpan:
    """Shared do-nothing span returned when no tracer is installed."""

    __slots__ = ()

    trace_id = None
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


_NULL = _NullSpan()


class _RemoteParent:
    """Stand-in parent for spans grafted under a shipped context."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class _ActiveSpan:
    """A live span; also the context manager returned by :func:`span`."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "site",
        "attrs",
        "status",
        "_start",
        "_tracer",
        "_token",
    )

    def __init__(self, tracer: "Tracer", site: str, attrs: dict) -> None:
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = tracer._new_id("t")
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = tracer._new_id("s")
        self.site = site
        self.attrs = attrs
        self.status: str | None = None
        self._tracer = tracer
        self._start = CLOCK()
        self._token = _CURRENT.set(self)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def annotate(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def set_status(self, status: str) -> None:
        self.status = status

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        end = CLOCK()
        _CURRENT.reset(self._token)
        if self.status is None:
            self.status = "error" if exc_type is not None else "ok"
        self._tracer._finish(self, end)
        return False


class Tracer:
    """Process-wide span collector with a bounded per-trace buffer.

    Finished spans are serialized to plain dicts immediately and grouped
    by ``trace_id`` until someone (the service's request wrapper, or a
    worker's reply path) pops the whole trace.  Traces that are never
    popped — orphan spans from detached flight tasks, in-process engine
    use — are evicted oldest-first once ``capacity`` traces are
    buffered, so an installed-but-unharvested tracer cannot grow without
    bound.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, int(capacity))
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._by_trace: dict[str, list[dict]] = {}
        self.spans_finished = 0
        self.traces_dropped = 0
        # Epoch anchor: perf_counter deltas are rebased onto time.time()
        # at construction, so serialized spans carry epoch seconds that
        # agree between the server and its forked workers.
        self.anchor_epoch = time.time()
        self.anchor_clock = CLOCK()

    # -- span lifecycle -------------------------------------------------

    def span(self, site: str, **attrs: object) -> _ActiveSpan:
        return _ActiveSpan(self, site, attrs)

    def _new_id(self, prefix: str) -> str:
        return f"{prefix}{os.getpid():x}-{next(self._seq):x}"

    def to_epoch(self, clock_t: float) -> float:
        return self.anchor_epoch + (clock_t - self.anchor_clock)

    def _finish(self, span: _ActiveSpan, end: float) -> None:
        payload = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "site": span.site,
            "t0": self.to_epoch(span._start),
            "t1": self.to_epoch(end),
            "status": span.status,
            "pid": os.getpid(),
            "attrs": span.attrs,
        }
        with self._lock:
            self.spans_finished += 1
            bucket = self._by_trace.get(span.trace_id)
            if bucket is None:
                while len(self._by_trace) >= self.capacity:
                    oldest = next(iter(self._by_trace))
                    del self._by_trace[oldest]
                    self.traces_dropped += 1
                bucket = self._by_trace[span.trace_id] = []
            bucket.append(payload)

    # -- harvesting -----------------------------------------------------

    def pop_trace(self, trace_id: str) -> list[dict]:
        """Remove and return every finished span of ``trace_id``."""
        with self._lock:
            return self._by_trace.pop(trace_id, [])

    def absorb(self, spans: Iterable[dict]) -> None:
        """Merge spans serialized by another process into the buffer."""
        with self._lock:
            for payload in spans:
                trace_id = payload.get("trace_id")
                if not isinstance(trace_id, str):
                    continue
                self.spans_finished += 1
                self._by_trace.setdefault(trace_id, []).append(payload)

    def remote(self, ctx: dict) -> "_RemoteScope":
        """Graft spans opened inside the scope under a shipped parent.

        ``ctx`` is the dict produced by :func:`current_context` on the
        other side of a pipe.  Used by fleet workers so their
        ``worker.compute`` / engine spans become children of the
        server's ``fleet.roundtrip`` span.
        """
        return _RemoteScope(ctx)

    # -- bookkeeping ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "spans_finished": self.spans_finished,
                "traces_buffered": len(self._by_trace),
                "traces_dropped": self.traces_dropped,
            }

    def _after_fork(self) -> None:
        # Locks and buffered spans belong to the parent; a freshly
        # forked worker starts clean (its contextvar slate is wiped too
        # so prewarm-time spans don't attach to a stale parent trace).
        self._lock = threading.Lock()
        self._by_trace = {}
        self.spans_finished = 0
        self.traces_dropped = 0
        _CURRENT.set(None)


class _RemoteScope:
    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: dict) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> "_RemoteScope":
        parent = _RemoteParent(str(self._ctx["trace_id"]), str(self._ctx["span_id"]))
        self._token = _CURRENT.set(parent)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


# -- process-wide installation (mirrors repro.service.faults) -----------

_TRACER: Tracer | None = None


def install(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) process-wide and return it."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> None:
    """Remove the installed tracer; every site reverts to a no-op."""
    global _TRACER
    _TRACER = None


def active() -> Tracer | None:
    """Return the installed tracer, or ``None``."""
    return _TRACER


class installed:
    """Context manager: install a tracer, uninstall on exit.

    ::

        with obs.installed(Tracer()) as tracer:
            ...  # every span site records into `tracer`
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    def __enter__(self) -> Tracer:
        install(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> bool:
        uninstall()
        return False


def span(site: str, **attrs: object):
    """Open a span at ``site`` (the no-op singleton when tracing is off)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL
    return tracer.span(site, **attrs)


def current_context() -> dict | None:
    """The ``{"trace_id", "span_id"}`` of the current span, for shipping."""
    if _TRACER is None:
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace_id": current.trace_id, "span_id": current.span_id}


def current_trace_id() -> str | None:
    current = _CURRENT.get()
    return None if current is None else current.trace_id


def absorb(spans: Iterable[dict] | None) -> None:
    """Merge remotely-serialized spans into the installed tracer."""
    if spans and _TRACER is not None:
        _TRACER.absorb(spans)


def _reset_after_fork() -> None:
    if _TRACER is not None:
        _TRACER._after_fork()


os.register_at_fork(after_in_child=_reset_after_fork)
