"""Reader/writer for the MCNC / espresso PLA exchange format.

Supported directives: ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type``
(``fd`` — the default — ``fr``, ``f``), ``.e``/``.end``.  Each cube line
has an input part over ``{0,1,-}`` and an output part over ``{0,1,-,~,d}``
(``d`` marks a don't-care output in fd-type PLAs, ``4`` is accepted as a
legacy alias of ``-``).

The reader produces a :class:`PLA`, which exposes each output as a pair of
input covers (on-set cover, dc-set cover) — exactly the per-output ISF
view the synthesis flow needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.manager import BDD
from repro.boolfunc.isf import ISF
from repro.cover.cover import Cover
from repro.cover.cube import Cube


class PLAError(ValueError):
    """Raised for malformed PLA text."""


@dataclass
class PLA:
    """Parsed PLA: covers of the on/dc sets of each output."""

    n_inputs: int
    n_outputs: int
    input_labels: list[str]
    output_labels: list[str]
    rows: list[tuple[Cube, str]] = field(default_factory=list)
    pla_type: str = "fd"

    def output_covers(self, output: int) -> tuple[Cover, Cover]:
        """Return ``(on_cover, dc_cover)`` of one output column."""
        if not 0 <= output < self.n_outputs:
            raise IndexError(f"output {output} out of range")
        on_cubes = []
        dc_cubes = []
        for cube, outputs in self.rows:
            char = outputs[output]
            if char == "1":
                on_cubes.append(cube)
            elif char in "d-2":
                dc_cubes.append(cube)
            elif char == "4":
                dc_cubes.append(cube)
            # '0' and '~' contribute nothing in fd-type PLAs.
        return Cover(self.n_inputs, on_cubes), Cover(self.n_inputs, dc_cubes)

    def output_isf(self, mgr: BDD, output: int) -> ISF:
        """Build the ISF of one output over a manager with matching arity."""
        on_cover, dc_cover = self.output_covers(output)
        on = on_cover.to_function(mgr)
        dc = dc_cover.to_function(mgr) - on  # on-set wins where they overlap
        return ISF(on, dc)

    def make_manager(self) -> BDD:
        """Create a BDD manager with this PLA's input variables."""
        return BDD(self.input_labels)


def parse_pla(text: str) -> PLA:
    """Parse PLA text into a :class:`PLA`."""
    n_inputs: int | None = None
    n_outputs: int | None = None
    input_labels: list[str] | None = None
    output_labels: list[str] | None = None
    pla_type = "fd"
    rows: list[tuple[Cube, str]] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                n_inputs = int(parts[1])
            elif directive == ".o":
                n_outputs = int(parts[1])
            elif directive == ".p":
                pass  # informational product count
            elif directive == ".ilb":
                input_labels = parts[1:]
            elif directive == ".ob":
                output_labels = parts[1:]
            elif directive == ".type":
                pla_type = parts[1]
            elif directive in (".e", ".end"):
                break
            else:
                # Unknown directives are ignored (matches espresso's
                # permissiveness for .phase, .pair, etc.).
                continue
        else:
            if n_inputs is None:
                raise PLAError("cube line before .i directive")
            compact = line.replace(" ", "").replace("\t", "")
            if n_outputs is None or n_outputs == 0:
                in_part, out_part = compact, ""
            else:
                in_part = compact[:n_inputs]
                out_part = compact[n_inputs:]
            if len(in_part) != n_inputs:
                raise PLAError(f"bad input part in line {raw_line!r}")
            if n_outputs and len(out_part) != n_outputs:
                raise PLAError(f"bad output part in line {raw_line!r}")
            rows.append((Cube.from_string(in_part), out_part))

    if n_inputs is None:
        raise PLAError("missing .i directive")
    if n_outputs is None:
        n_outputs = 0
    if input_labels is None:
        input_labels = [f"x{i + 1}" for i in range(n_inputs)]
    if output_labels is None:
        output_labels = [f"f{j}" for j in range(n_outputs)]
    if len(input_labels) != n_inputs or len(output_labels) != n_outputs:
        raise PLAError("label count does not match .i/.o")
    return PLA(n_inputs, n_outputs, input_labels, output_labels, rows, pla_type)


def write_pla(pla: PLA) -> str:
    """Serialize a :class:`PLA` back to text."""
    lines = [
        f".i {pla.n_inputs}",
        f".o {pla.n_outputs}",
        ".ilb " + " ".join(pla.input_labels),
        ".ob " + " ".join(pla.output_labels),
        f".type {pla.pla_type}",
        f".p {len(pla.rows)}",
    ]
    for cube, outputs in pla.rows:
        lines.append(f"{cube.to_string()} {outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def pla_from_covers(
    covers: list[tuple[Cover, Cover]],
    input_labels: list[str] | None = None,
    output_labels: list[str] | None = None,
) -> PLA:
    """Assemble a multi-output PLA from per-output (on, dc) covers.

    Each output's cubes become rows that assert only that output (other
    outputs get ``~`` meaning "no contribution"), which is valid fd-type
    semantics and keeps the construction simple.
    """
    if not covers:
        raise ValueError("need at least one output")
    n_inputs = covers[0][0].n_vars
    n_outputs = len(covers)
    rows: list[tuple[Cube, str]] = []
    for output, (on_cover, dc_cover) in enumerate(covers):
        for cube in on_cover:
            pattern = ["~"] * n_outputs
            pattern[output] = "1"
            rows.append((cube, "".join(pattern)))
        for cube in dc_cover:
            pattern = ["~"] * n_outputs
            pattern[output] = "d"
            rows.append((cube, "".join(pattern)))
    return PLA(
        n_inputs,
        n_outputs,
        input_labels or [f"x{i + 1}" for i in range(n_inputs)],
        output_labels or [f"f{j}" for j in range(n_outputs)],
        rows,
        "fd",
    )
