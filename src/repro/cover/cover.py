"""Covers: sums of products over a fixed variable count.

A :class:`Cover` is an ordered list of :class:`~repro.cover.cube.Cube`
objects.  Semantic operations (tautology, containment) are provided both
by classic unate-recursion on the cube list and by conversion to BDDs;
the two are cross-checked in the test suite.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.bdd.manager import BDD, Function
from repro.boolfunc.truthtable import TruthTable
from repro.cover.cube import Cube
from repro.utils.bitops import bit_indices


class Cover:
    """A sum of products (possibly redundant, possibly empty)."""

    __slots__ = ("n_vars", "cubes")

    def __init__(self, n_vars: int, cubes: Iterable[Cube] = ()) -> None:
        self.n_vars = n_vars
        self.cubes: list[Cube] = []
        for cube in cubes:
            if cube.n_vars != n_vars:
                raise ValueError("cube arity mismatch")
            self.cubes.append(cube)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "Cover":
        """Build from positional-cube strings (all the same length)."""
        cubes = [Cube.from_string(row) for row in rows]
        if not cubes:
            raise ValueError("cannot infer arity from an empty list")
        return cls(cubes[0].n_vars, cubes)

    @classmethod
    def from_isop(cls, n_vars: int, cube_dicts: list[dict[str, bool]], names) -> "Cover":
        """Build from :func:`repro.bdd.ops.isop` output."""
        index = {name: position for position, name in enumerate(names)}
        cubes = [
            Cube.from_literals(n_vars, {index[name]: val for name, val in entry.items()})
            for entry in cube_dicts
        ]
        return cls(n_vars, cubes)

    # -- basic container behaviour ---------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __getitem__(self, index: int) -> Cube:
        return self.cubes[index]

    def __repr__(self) -> str:
        return f"Cover({len(self.cubes)} cubes, {self.literal_count()} literals)"

    def copy(self) -> "Cover":
        """Shallow copy (cubes are immutable)."""
        return Cover(self.n_vars, list(self.cubes))

    # -- measures ------------------------------------------------------------
    def literal_count(self) -> int:
        """Total number of literals across all cubes (SOP cost)."""
        return sum(cube.literal_count for cube in self.cubes)

    def cube_count(self) -> int:
        """Number of products."""
        return len(self.cubes)

    # -- semantics --------------------------------------------------------------
    def contains_minterm(self, minterm: int) -> bool:
        """Evaluate the SOP on a minterm index."""
        return any(cube.contains_minterm(minterm) for cube in self.cubes)

    def to_function(self, mgr: BDD) -> Function:
        """Build the BDD of the SOP."""
        result = mgr.false
        for cube in self.cubes:
            result = result | cube.to_function(mgr)
        return result

    def to_truthtable(self) -> TruthTable:
        """Dense tabulation (small arity only)."""
        bits = 0
        for minterm in range(1 << self.n_vars):
            if self.contains_minterm(minterm):
                bits |= 1 << minterm
        return TruthTable(self.n_vars, bits)

    def to_expression(self, names) -> str:
        """Human-readable SOP string."""
        if not self.cubes:
            return "0"
        return " | ".join(
            cube.to_expression(names) if cube.literal_count else "1"
            for cube in self.cubes
        )

    # -- classic cover algorithms (unate recursion) ------------------------------
    def cofactor_cube(self, against: Cube) -> "Cover":
        """Cover cofactor with respect to a cube (Shannon generalization)."""
        result = []
        for cube in self.cubes:
            if (cube.pos & against.neg) or (cube.neg & against.pos):
                continue  # disjoint from the cofactor subspace
            bound = against.pos | against.neg
            result.append(
                Cube(self.n_vars, cube.pos & ~bound, cube.neg & ~bound)
            )
        return Cover(self.n_vars, result)

    def is_tautology(self) -> bool:
        """Tautology check by recursive splitting on the most binate variable."""
        cover = self
        # Quick exits.
        for cube in cover.cubes:
            if cube.literal_count == 0:
                return True
        if not cover.cubes:
            return False

        pos_counts = [0] * self.n_vars
        neg_counts = [0] * self.n_vars
        free_everywhere = (1 << self.n_vars) - 1
        for cube in cover.cubes:
            free_everywhere &= cube.free_mask
            for var in bit_indices(cube.pos):
                pos_counts[var] += 1
            for var in bit_indices(cube.neg):
                neg_counts[var] += 1

        # A variable appearing in only one phase can be removed only if a
        # unate-leaf test applies; pick the most binate variable to split.
        split_var = -1
        best_score = -1
        for var in range(self.n_vars):
            if pos_counts[var] and neg_counts[var]:
                score = min(pos_counts[var], neg_counts[var])
                if score > best_score:
                    best_score = score
                    split_var = var
        if split_var < 0:
            # Unate cover: tautology iff some cube has no literals —
            # already checked above, except literals on variables that are
            # free in every cube were impossible; so answer is False.
            return False

        positive = cover.cofactor_cube(Cube.from_literals(self.n_vars, {split_var: 1}))
        if not positive.is_tautology():
            return False
        negative = cover.cofactor_cube(Cube.from_literals(self.n_vars, {split_var: 0}))
        return negative.is_tautology()

    def covers_cube(self, cube: Cube) -> bool:
        """True iff the cover contains every minterm of ``cube``."""
        return self.cofactor_cube(cube).is_tautology()

    def covers_cover(self, other: "Cover") -> bool:
        """True iff every cube of ``other`` is contained in this cover."""
        return all(self.covers_cube(cube) for cube in other.cubes)

    # -- simple structural cleanups ------------------------------------------------
    def single_cube_containment(self) -> "Cover":
        """Drop cubes contained in a single other cube (cheap cleanup)."""
        kept: list[Cube] = []
        # Sort by decreasing coverage so containers come first.
        ordered = sorted(self.cubes, key=lambda c: c.literal_count)
        for cube in ordered:
            if any(existing.contains_cube(cube) for existing in kept):
                continue
            kept.append(cube)
        return Cover(self.n_vars, kept)

    def merged_with(self, other: "Cover") -> "Cover":
        """Concatenation of two covers over the same variables."""
        if other.n_vars != self.n_vars:
            raise ValueError("cover arity mismatch")
        return Cover(self.n_vars, self.cubes + other.cubes)
