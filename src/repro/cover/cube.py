"""Product terms (cubes) in positional-cube notation.

A cube over ``n`` variables keeps two bitmasks indexed by *variable
index* (bit ``i`` = variable ``i``):

* ``pos`` — variables appearing as positive literals,
* ``neg`` — variables appearing as negative literals.

A variable in neither mask is absent (don't-care position).  The empty
cube (no literals) is the tautology.  Note the variable-index bit order
differs from the *minterm* convention (variable 0 is the most significant
bit of a minterm index); :meth:`Cube.contains_minterm` does the mapping.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.bdd.manager import BDD, Function
from repro.utils.bitops import bit_indices


class Cube:
    """An AND of literals over ``n_vars`` variables."""

    __slots__ = ("n_vars", "pos", "neg")

    def __init__(self, n_vars: int, pos: int = 0, neg: int = 0) -> None:
        if pos & neg:
            raise ValueError("cube with contradictory literals (use None instead)")
        self.n_vars = n_vars
        self.pos = pos
        self.neg = neg

    # -- constructors -----------------------------------------------------
    @classmethod
    def tautology(cls, n_vars: int) -> "Cube":
        """The literal-free cube covering the whole space."""
        return cls(n_vars, 0, 0)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse PLA-style positional notation, e.g. ``"10-1"``.

        Character ``k`` of the string refers to variable ``k``; ``1`` is a
        positive literal, ``0`` negative, ``-`` (or ``2``) absent.
        """
        pos = neg = 0
        for index, char in enumerate(text):
            if char == "1":
                pos |= 1 << index
            elif char == "0":
                neg |= 1 << index
            elif char not in "-2":
                raise ValueError(f"bad cube character {char!r}")
        return cls(len(text), pos, neg)

    @classmethod
    def from_minterm(cls, n_vars: int, minterm: int) -> "Cube":
        """The full cube of a single minterm index (variable 0 = MSB)."""
        pos = neg = 0
        for var in range(n_vars):
            if (minterm >> (n_vars - 1 - var)) & 1:
                pos |= 1 << var
            else:
                neg |= 1 << var
        return cls(n_vars, pos, neg)

    @classmethod
    def from_literals(cls, n_vars: int, literals: dict[int, int | bool]) -> "Cube":
        """Build from ``{variable_index: polarity}``."""
        pos = neg = 0
        for var, polarity in literals.items():
            if polarity:
                pos |= 1 << var
            else:
                neg |= 1 << var
        return cls(n_vars, pos, neg)

    # -- printing ------------------------------------------------------------
    def to_string(self) -> str:
        """Positional-cube string (inverse of :meth:`from_string`)."""
        chars = []
        for var in range(self.n_vars):
            bit = 1 << var
            if self.pos & bit:
                chars.append("1")
            elif self.neg & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    def to_expression(self, names: tuple[str, ...] | list[str]) -> str:
        """Human-readable product, e.g. ``x1 & ~x3`` (``1`` if literal-free)."""
        parts = []
        for var in range(self.n_vars):
            bit = 1 << var
            if self.pos & bit:
                parts.append(names[var])
            elif self.neg & bit:
                parts.append("~" + names[var])
        return " & ".join(parts) if parts else "1"

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"

    # -- identity ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and other.n_vars == self.n_vars
            and other.pos == self.pos
            and other.neg == self.neg
        )

    def __hash__(self) -> int:
        return hash((self.n_vars, self.pos, self.neg))

    # -- measures -----------------------------------------------------------------
    @property
    def literal_count(self) -> int:
        """Number of literals in the product."""
        return (self.pos | self.neg).bit_count()

    @property
    def free_mask(self) -> int:
        """Bitmask of variables not bound by the cube."""
        return ~(self.pos | self.neg) & ((1 << self.n_vars) - 1)

    def minterm_count(self) -> int:
        """Number of minterms covered: 2^(free variables)."""
        return 1 << self.free_mask.bit_count()

    def literals(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(variable_index, polarity)`` pairs."""
        for var in bit_indices(self.pos):
            yield var, True
        for var in bit_indices(self.neg):
            yield var, False

    # -- semantics -----------------------------------------------------------------
    def contains_minterm(self, minterm: int) -> bool:
        """Evaluate the product on a minterm index (variable 0 = MSB)."""
        for var in bit_indices(self.pos):
            if not (minterm >> (self.n_vars - 1 - var)) & 1:
                return False
        for var in bit_indices(self.neg):
            if (minterm >> (self.n_vars - 1 - var)) & 1:
                return False
        return True

    def to_function(self, mgr: BDD) -> Function:
        """Build the cube's function (manager must have >= n_vars variables).

        Delegates to the manager's memoized ``product`` construction, so
        the cube algebra works unchanged on any backend (BDD or bitset).
        """
        return mgr.product(self.pos, self.neg)

    def minterms(self) -> Iterator[int]:
        """Iterate covered minterm indices (exponential in free variables)."""
        free_vars = list(bit_indices(self.free_mask))
        base = 0
        for var in bit_indices(self.pos):
            base |= 1 << (self.n_vars - 1 - var)
        for combo in range(1 << len(free_vars)):
            minterm = base
            for position, var in enumerate(free_vars):
                if (combo >> position) & 1:
                    minterm |= 1 << (self.n_vars - 1 - var)
            yield minterm

    # -- cube algebra ---------------------------------------------------------------
    def contains_cube(self, other: "Cube") -> bool:
        """True iff ``other``'s minterms are all inside this cube."""
        return (self.pos & ~other.pos) == 0 and (self.neg & ~other.neg) == 0

    def intersect(self, other: "Cube") -> "Cube | None":
        """Cube intersection, or ``None`` if empty."""
        if (self.pos & other.neg) or (self.neg & other.pos):
            return None
        return Cube(self.n_vars, self.pos | other.pos, self.neg | other.neg)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both."""
        return Cube(self.n_vars, self.pos & other.pos, self.neg & other.neg)

    def distance(self, other: "Cube") -> int:
        """Number of variables with conflicting literals."""
        return ((self.pos & other.neg) | (self.neg & other.pos)).bit_count()

    def consensus(self, other: "Cube") -> "Cube | None":
        """Consensus term when the distance is exactly 1, else ``None``."""
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if conflict.bit_count() != 1:
            return None
        pos = (self.pos | other.pos) & ~conflict
        neg = (self.neg | other.neg) & ~conflict
        return Cube(self.n_vars, pos, neg)

    def without_variable(self, var: int) -> "Cube":
        """Drop any literal of ``var`` (expansion step)."""
        bit = 1 << var
        return Cube(self.n_vars, self.pos & ~bit, self.neg & ~bit)

    def cofactor(self, var: int, value: int | bool) -> "Cube | None":
        """Cofactor against a literal: ``None`` if the cube vanishes."""
        bit = 1 << var
        if value:
            if self.neg & bit:
                return None
        else:
            if self.pos & bit:
                return None
        return Cube(self.n_vars, self.pos & ~bit, self.neg & ~bit)
