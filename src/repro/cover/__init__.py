"""Cube and cover algebra, plus PLA (espresso-format) file I/O.

This package is the data model of two-level logic: :class:`Cube` is a
product term in positional-cube notation, :class:`Cover` is a list of
cubes (an SOP form), and :mod:`repro.cover.pla` reads and writes the
MCNC/espresso PLA exchange format that the paper's benchmark suite [12]
uses.
"""

from repro.cover.cover import Cover
from repro.cover.cube import Cube
from repro.cover.pla import PLA, parse_pla, write_pla

__all__ = ["Cover", "Cube", "PLA", "parse_pla", "write_pla"]
