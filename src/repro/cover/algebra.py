"""Mask-native cover algebra: whole-cover operations on packed masks.

The minimizer inner loops (espresso EXPAND/REDUCE/IRREDUNDANT, the 2-SPP
merge/expand sweeps, Quine-McCluskey column construction and the unate
covering solver) spend their time asking tiny questions — "does this
cube contain that one?", "what is the distance?", "is anything here a
tautology?" — millions of times.  Routing every question through a
:class:`~repro.cover.cube.Cube` or
:class:`~repro.spp.pseudocube.Pseudocube` object allocates, hashes and
validates a handle per candidate, which profiling shows is the floor on
small-width rows (the minimizer scaffolding, not representation ops).

:class:`CoverAlgebra` keeps a cover as two parallel arrays of packed
``(pos, neg)`` literal masks — bit ``i`` of ``pos``/``neg`` set when
variable ``i`` appears positively/negatively, exactly the
:class:`~repro.cover.cube.Cube` convention — and answers the questions
with plain integer arithmetic over whole covers.  ``Cube``/``Cover``
(and ``Pseudocube``/``SppCover`` on the 2-SPP side) remain the public
vocabulary, materialized only at API boundaries; in the hot loops they
are thin views over these masks.

The module-level ``mask_*`` primitives are the single-pair building
blocks; every one of them is differentially pinned against the
``Cube``/``Cover`` reference implementations and a BDD oracle in
``tests/test_cover_algebra.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cover.cover import Cover
from repro.cover.cube import Cube

__all__ = [
    "CoverAlgebra",
    "mask_consensus",
    "mask_contains",
    "mask_distance",
    "mask_intersects",
    "mask_sharp",
    "mask_supercube",
]


# ---------------------------------------------------------------------------
# Single-pair mask primitives
# ---------------------------------------------------------------------------


def mask_contains(a_pos: int, a_neg: int, b_pos: int, b_neg: int) -> bool:
    """True iff cube ``a`` contains cube ``b`` (every literal of ``a`` in ``b``)."""
    return not ((a_pos & ~b_pos) | (a_neg & ~b_neg))


def mask_intersects(a_pos: int, a_neg: int, b_pos: int, b_neg: int) -> bool:
    """True iff the cubes share at least one minterm (no conflicting literal)."""
    return not ((a_pos & b_neg) | (a_neg & b_pos))


def mask_distance(a_pos: int, a_neg: int, b_pos: int, b_neg: int) -> int:
    """Number of variables on which the cubes hold conflicting literals."""
    return ((a_pos & b_neg) | (a_neg & b_pos)).bit_count()


def mask_supercube(
    a_pos: int, a_neg: int, b_pos: int, b_neg: int
) -> tuple[int, int]:
    """Smallest cube containing both (literal-wise intersection)."""
    return a_pos & b_pos, a_neg & b_neg


def mask_consensus(
    a_pos: int, a_neg: int, b_pos: int, b_neg: int
) -> tuple[int, int] | None:
    """Consensus term when the distance is exactly 1, else ``None``."""
    conflict = (a_pos & b_neg) | (a_neg & b_pos)
    if conflict.bit_count() != 1:
        return None
    return (a_pos | b_pos) & ~conflict, (a_neg | b_neg) & ~conflict


def mask_sharp(
    a_pos: int, a_neg: int, b_pos: int, b_neg: int
) -> list[tuple[int, int]]:
    """Cubes covering ``a ∧ ¬b`` (the non-disjoint sharp ``a # b``).

    One term ``a ∧ ¬l`` per literal ``l`` of ``b`` that ``a`` leaves
    free; positive literals of ``b`` first (ascending variable), then
    negative ones.  When the cubes are disjoint the result is ``[a]``.
    """
    if (a_pos & b_neg) | (a_neg & b_pos):
        return [(a_pos, a_neg)]
    out: list[tuple[int, int]] = []
    free_pos = b_pos & ~a_pos
    while free_pos:
        bit = free_pos & -free_pos
        free_pos ^= bit
        out.append((a_pos, a_neg | bit))
    free_neg = b_neg & ~a_neg
    while free_neg:
        bit = free_neg & -free_neg
        free_neg ^= bit
        out.append((a_pos | bit, a_neg))
    return out


# ---------------------------------------------------------------------------
# Whole-cover algebra
# ---------------------------------------------------------------------------


class CoverAlgebra:
    """A cover as parallel arrays of packed ``(pos, neg)`` literal masks.

    Mutable (``append``) during construction inside minimizer loops;
    treat instances handed across function boundaries as frozen.
    """

    __slots__ = ("n_vars", "pos", "neg")

    def __init__(
        self,
        n_vars: int,
        pos: Iterable[int] = (),
        neg: Iterable[int] = (),
    ) -> None:
        self.n_vars = n_vars
        self.pos: list[int] = list(pos)
        self.neg: list[int] = list(neg)
        if len(self.pos) != len(self.neg):
            raise ValueError("pos and neg arrays must align")

    # -- constructors / views ---------------------------------------------
    @classmethod
    def from_cover(cls, cover: Cover) -> "CoverAlgebra":
        return cls(
            cover.n_vars,
            [cube.pos for cube in cover.cubes],
            [cube.neg for cube in cover.cubes],
        )

    @classmethod
    def from_masks(
        cls, n_vars: int, masks: Iterable[tuple[int, int]]
    ) -> "CoverAlgebra":
        out = cls(n_vars)
        for pos, neg in masks:
            out.pos.append(pos)
            out.neg.append(neg)
        return out

    @classmethod
    def from_isop(
        cls, n_vars: int, cube_dicts: list[dict[str, bool]], names
    ) -> "CoverAlgebra":
        """Build straight from :func:`repro.bdd.ops.isop` output."""
        index = {name: position for position, name in enumerate(names)}
        out = cls(n_vars)
        for entry in cube_dicts:
            pos = neg = 0
            for name, value in entry.items():
                bit = 1 << index[name]
                if value:
                    pos |= bit
                else:
                    neg |= bit
            out.pos.append(pos)
            out.neg.append(neg)
        return out

    def to_cover(self) -> Cover:
        """Materialize ``Cube`` views (the API boundary, not the hot loop)."""
        return Cover(
            self.n_vars,
            [
                Cube(self.n_vars, pos, neg)
                for pos, neg in zip(self.pos, self.neg)
            ],
        )

    def copy(self) -> "CoverAlgebra":
        return CoverAlgebra(self.n_vars, self.pos, self.neg)

    # -- container behaviour ----------------------------------------------
    def __len__(self) -> int:
        return len(self.pos)

    def append(self, pos: int, neg: int) -> None:
        self.pos.append(pos)
        self.neg.append(neg)

    def masks(self) -> Iterator[tuple[int, int]]:
        return zip(self.pos, self.neg)

    def __repr__(self) -> str:
        return (
            f"CoverAlgebra({len(self.pos)} cubes,"
            f" {self.literal_count()} literals)"
        )

    # -- measures ----------------------------------------------------------
    def literal_counts(self) -> list[int]:
        """Per-cube literal counts, one popcount per cube."""
        return [
            (pos | neg).bit_count() for pos, neg in zip(self.pos, self.neg)
        ]

    def literal_count(self) -> int:
        return sum(self.literal_counts())

    def cube_count(self) -> int:
        return len(self.pos)

    # -- vectorized tests over the whole cover ------------------------------
    def has_tautology(self) -> bool:
        """Single-cube tautology test: some cube binds no variable."""
        return any(
            not (pos | neg) for pos, neg in zip(self.pos, self.neg)
        )

    def any_superset_of(self, pos: int, neg: int) -> bool:
        """True iff some cube of the cover contains the cube ``(pos, neg)``."""
        for a_pos, a_neg in zip(self.pos, self.neg):
            if not ((a_pos & ~pos) | (a_neg & ~neg)):
                return True
        return False

    def supersets_of(self, pos: int, neg: int) -> list[int]:
        """Indices of cubes containing the cube ``(pos, neg)``."""
        return [
            index
            for index, (a_pos, a_neg) in enumerate(zip(self.pos, self.neg))
            if not ((a_pos & ~pos) | (a_neg & ~neg))
        ]

    def subsets_of(self, pos: int, neg: int) -> list[int]:
        """Indices of cubes contained in the cube ``(pos, neg)``."""
        return [
            index
            for index, (a_pos, a_neg) in enumerate(zip(self.pos, self.neg))
            if not ((pos & ~a_pos) | (neg & ~a_neg))
        ]

    def intersecting(self, pos: int, neg: int) -> list[int]:
        """Indices of cubes sharing at least one minterm with ``(pos, neg)``."""
        return [
            index
            for index, (a_pos, a_neg) in enumerate(zip(self.pos, self.neg))
            if not ((a_pos & neg) | (a_neg & pos))
        ]

    def distances_to(self, pos: int, neg: int) -> list[int]:
        """Per-cube literal-conflict distances to the cube ``(pos, neg)``."""
        return [
            ((a_pos & neg) | (a_neg & pos)).bit_count()
            for a_pos, a_neg in zip(self.pos, self.neg)
        ]

    def consensus_with(self, pos: int, neg: int) -> list[tuple[int, int]]:
        """Consensus terms of each distance-1 cube with ``(pos, neg)``."""
        out: list[tuple[int, int]] = []
        for a_pos, a_neg in zip(self.pos, self.neg):
            conflict = (a_pos & neg) | (a_neg & pos)
            if conflict.bit_count() == 1:
                out.append(
                    (
                        (a_pos | pos) & ~conflict,
                        (a_neg | neg) & ~conflict,
                    )
                )
        return out

    def sharp_with(self, pos: int, neg: int) -> "CoverAlgebra":
        """The cover with cube ``(pos, neg)`` sharped out of every cube."""
        out = CoverAlgebra(self.n_vars)
        for a_pos, a_neg in zip(self.pos, self.neg):
            for s_pos, s_neg in mask_sharp(a_pos, a_neg, pos, neg):
                out.pos.append(s_pos)
                out.neg.append(s_neg)
        return out

    def supercube(self) -> tuple[int, int] | None:
        """Smallest cube containing the whole cover (``None`` if empty)."""
        if not self.pos:
            return None
        pos = neg = -1
        for a_pos, a_neg in zip(self.pos, self.neg):
            pos &= a_pos
            neg &= a_neg
        return pos, neg

    # -- structural cleanups -------------------------------------------------
    def single_cube_containment(self) -> "CoverAlgebra":
        """Drop cubes contained in a single other cube.

        Exact mask-native counterpart of
        :meth:`repro.cover.cover.Cover.single_cube_containment`: stable
        ascending-literal-count order, keep a cube unless an already-kept
        cube contains it.
        """
        order = sorted(
            range(len(self.pos)),
            key=lambda i: (self.pos[i] | self.neg[i]).bit_count(),
        )
        kept_pos: list[int] = []
        kept_neg: list[int] = []
        for index in order:
            pos, neg = self.pos[index], self.neg[index]
            contained = False
            for k_pos, k_neg in zip(kept_pos, kept_neg):
                if not ((k_pos & ~pos) | (k_neg & ~neg)):
                    contained = True
                    break
            if not contained:
                kept_pos.append(pos)
                kept_neg.append(neg)
        return CoverAlgebra(self.n_vars, kept_pos, kept_neg)

    def deduplicated(self) -> "CoverAlgebra":
        """Drop exact duplicate cubes, keeping first occurrences in order."""
        seen: set[tuple[int, int]] = set()
        out = CoverAlgebra(self.n_vars)
        for pos, neg in zip(self.pos, self.neg):
            key = (pos, neg)
            if key in seen:
                continue
            seen.add(key)
            out.pos.append(pos)
            out.neg.append(neg)
        return out
