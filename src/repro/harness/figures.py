"""Karnaugh-map rendering and regeneration of the paper's Figures 1–2.

The maps follow the paper's layout: rows are ``x1 x2`` in Gray order
(00, 01, 11, 10), columns are ``x3 x4`` in Gray order.  Cell symbols:
``1`` on-set, ``0`` off-set, ``-`` don't-care.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd.manager import BDD, Function
from repro.bdd.expr import parse_expression
from repro.boolfunc.isf import ISF
from repro.core.bidecomposition import apply_operator
from repro.core.quotient import full_quotient
from repro.spp.pseudocube import Pseudocube, make_xor_factor
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import minimize_spp
from repro.twolevel.espresso import espresso_minimize
from repro.utils.bitops import gray_code

_GRAY4 = tuple(gray_code(i) for i in range(4))  # 0, 1, 3, 2


def render_karnaugh(f: ISF | Function, title: str = "") -> str:
    """ASCII 4-variable Karnaugh map in the paper's layout."""
    if isinstance(f, Function):
        f = ISF.completely_specified(f)
    if f.n_vars != 4:
        raise ValueError("Karnaugh rendering supports exactly 4 variables")
    names = f.mgr.var_names
    lines = []
    if title:
        lines.append(title)
    header = " ".join(f"{row:02b}"[::1] for row in (0b00, 0b01, 0b11, 0b10))
    lines.append(f"{names[0]}{names[1]} \\ {names[2]}{names[3]}   "
                 + "  ".join(f"{value:02b}" for value in _GRAY4))
    for row in _GRAY4:
        cells = []
        for column in _GRAY4:
            minterm = (row << 2) | column
            value = f(minterm)
            cells.append("-" if value is None else str(value))
        lines.append(f"       {row:02b}       " + "   ".join(cells))
    del header
    return "\n".join(lines)


@dataclass
class FigureData:
    """All artifacts of a worked 4-variable figure."""

    mgr: BDD
    f: ISF
    g: Function
    h: ISF
    f_text: str
    g_text: str
    h_text: str
    rendering: str


def render_figure1() -> FigureData:
    """Regenerate paper Figure 1 (AND bi-decomposition, SOP forms).

    f = x1 x2 x4 + x2 x3 x4 (6 SOP literals); the 0→1 approximation adds
    the single minterm x1'x2 x3'x4, giving g = x2 x4 (2 literals); the
    full quotient minimizes to h = x1 + x3 (2 literals) and
    f = g · h = x2 x4 (x1 + x3) with 4 literals.
    """
    mgr = BDD(["x1", "x2", "x3", "x4"])
    f_fn = parse_expression(mgr, "x1 & x2 & x4 | x2 & x3 & x4")
    f = ISF.completely_specified(f_fn)
    g = f_fn | mgr.cube({"x1": 0, "x2": 1, "x3": 0, "x4": 1})
    h = full_quotient(f, g, "AND")

    f_cover = espresso_minimize(f)
    g_cover = espresso_minimize(ISF.completely_specified(g))
    h_cover = espresso_minimize(h)
    rebuilt = apply_operator("AND", g_cover.to_function(mgr), h_cover.to_function(mgr))
    assert rebuilt == f_fn, "figure 1 reconstruction failed"

    names = mgr.var_names
    f_text = f_cover.to_expression(names)
    g_text = g_cover.to_expression(names)
    h_text = h_cover.to_expression(names)
    parts = [
        render_karnaugh(f, "(a) f"),
        "",
        render_karnaugh(g, "(b) g  (0->1 approximation)"),
        "",
        render_karnaugh(h, "(c) h  (full quotient)"),
        "",
        f"f_SOP = {f_text}   ({f_cover.literal_count()} literals)",
        f"g_SOP = {g_text}   ({g_cover.literal_count()} literals)",
        f"h_SOP = {h_text}   ({h_cover.literal_count()} literals)",
        f"f = g . h = ({g_text}) & ({h_text})",
    ]
    return FigureData(mgr, f, g, h, f_text, g_text, h_text, "\n".join(parts))


def render_figure2() -> FigureData:
    """Regenerate paper Figure 2 (2-SPP forms, pseudoproduct expansion).

    f = x1(x3 ^ x4) + x2(x3 ^ x4) (2 pseudoproducts, 6 literals; the
    minimal SOP needs 4 products and 12 literals).  Expanding the first
    pseudoproduct by removing the literal x1 moves the two off-set
    minterms x1'x2'x3'x4 and x1'x2'x3 x4' to the on-set and swallows the
    second pseudoproduct: g = x3 ^ x4.  The full quotient is
    h = x1 + x2, so f = g · h = (x3 ^ x4)(x1 + x2).
    """
    mgr = BDD(["x1", "x2", "x3", "x4"])
    f_fn = parse_expression(mgr, "(x1 | x2) & (x3 ^ x4)")
    f = ISF.completely_specified(f_fn)

    # The paper's 2-SPP cover of f.
    factor = make_xor_factor(2, 3, 1)  # x3 ^ x4
    pc1 = Pseudocube(4, pos=0b0001, xors=frozenset({factor}))  # x1 (x3^x4)
    pc2 = Pseudocube(4, pos=0b0010, xors=frozenset({factor}))  # x2 (x3^x4)
    f_cover = SppCover(4, [pc1, pc2])
    assert f_cover.to_function(mgr) == f_fn

    # Expansion step of [2]: remove literal x1 from the first
    # pseudoproduct; the expanded pseudoproduct (x3^x4) covers pc2.
    expanded = pc1.drop_literal(0)
    g = expanded.to_function(mgr)
    flipped = g - f_fn
    assert flipped.satcount() == 2, "expansion must introduce two 0->1 errors"

    h = full_quotient(f, g, "AND")
    g_cover = SppCover(4, [expanded])
    h_cover = minimize_spp(h)
    rebuilt = apply_operator("AND", g, h_cover.to_function(mgr))
    assert rebuilt == f_fn, "figure 2 reconstruction failed"

    names = mgr.var_names
    f_text = f_cover.to_expression(names)
    g_text = g_cover.to_expression(names)
    h_text = h_cover.to_expression(names)
    parts = [
        render_karnaugh(f, "(a) f"),
        "",
        render_karnaugh(g, "(b) g = x3 ^ x4  (expansion of x1(x3^x4))"),
        "",
        render_karnaugh(h, "(c) h  (full quotient)"),
        "",
        f"f_2SPP = {f_text}   ({f_cover.literal_count()} literals)",
        f"g_2SPP = {g_text}   ({g_cover.literal_count()} literals)",
        f"h_2SPP = {h_text}   ({h_cover.literal_count()} literals)",
        f"f = g . h = ({g_text}) & ({h_text})",
    ]
    return FigureData(mgr, f, g, h, f_text, g_text, h_text, "\n".join(parts))
