"""Experiment harness: regenerate every table and figure of the paper."""

from repro.harness.experiment import (
    BenchmarkResult,
    OutputArtifacts,
    run_benchmark,
    run_table,
    synthesize_network,
)
from repro.harness.figures import render_figure1, render_figure2, render_karnaugh
from repro.harness.tables import (
    render_network_results,
    render_table1,
    render_table2,
    render_table_results,
)
from repro.harness.report import comparison_lines, shape_summary

__all__ = [
    "BenchmarkResult",
    "OutputArtifacts",
    "comparison_lines",
    "render_figure1",
    "render_figure2",
    "render_karnaugh",
    "render_network_results",
    "render_table1",
    "render_table2",
    "render_table_results",
    "run_benchmark",
    "run_table",
    "shape_summary",
    "synthesize_network",
]
