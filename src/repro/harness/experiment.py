"""Per-benchmark experiment flow (paper Section IV-B).

For every output of a benchmark:

1. minimize ``f`` in 2-SPP form;
2. compute the 0→1 approximation ``g`` by full pseudoproduct expansion
   (Section IV-A) and minimize it in 2-SPP form;
3. compute the on/dc sets of the full quotient ``h`` for AND and 6⇒ with
   the Table II formulas (OBDD operations);
4. minimize ``h`` in 2-SPP form;
5. map the three-level forms of ``f``, ``g`` and the bi-decompositions
   onto the gate library and report areas and gains.

Steps 3–4 (and verification) run through the strategy-driven engine
(:class:`repro.engine.Decomposer`), with the expansion of step 2 handed
over as a ready :class:`~repro.engine.request.Divisor` so its minimized
cover is reused.  Every decomposition is verified (``f = g op h`` on the
care set) before areas are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.error import output_error_rate
from repro.approx.expansion import approximate_expand_full
from repro.benchgen.registry import BenchmarkInstance, load_benchmark
from repro.boolfunc.isf import ISF
from repro.engine.decomposer import Decomposer, VerificationError
from repro.engine.request import Divisor
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import minimize_spp
from repro.techmap.area import (
    area_of_bidecomposition,
    area_of_spp_covers,
    isolated_area_of_bidecomposition,
    isolated_area_of_spp_covers,
)
from repro.techmap.genlib import GateLibrary
from repro.utils.timing import Stopwatch

#: The operators of the paper's experimental section.
DEFAULT_OPERATORS = ("AND", "NOT_IMPLIES")


@dataclass
class OutputArtifacts:
    """Synthesis artifacts of a single output."""

    f: ISF
    f_cover: SppCover
    g: object  # Function
    g_cover: SppCover
    h_covers: dict[str, SppCover] = field(default_factory=dict)


@dataclass
class BenchmarkResult:
    """One row of Table III / IV (our measurement).

    The ``area_*`` columns are *network-aware*: each is the mapped area
    of one multi-output network, so a gate two outputs share is counted
    once.  The ``*_isolated`` columns map every output's cover as its
    own network and sum the areas — the per-output accounting — kept
    alongside for comparison (``None`` on rows reassembled from older
    cached payloads).
    """

    name: str
    n_inputs: int
    n_outputs: int
    time_s: float
    area_f: float
    area_g: float
    pct_errors: float
    pct_reduction: float
    op_areas: dict[str, float]
    op_gains: dict[str, float]
    area_f_isolated: float | None = None
    op_areas_isolated: dict[str, float] | None = None
    artifacts: list[OutputArtifacts] | None = None

    @property
    def area_and(self) -> float:
        """Area of the (g AND h) realization."""
        return self.op_areas["AND"]

    @property
    def gain_and(self) -> float:
        """Gain of AND bi-decomposition over f, in percent."""
        return self.op_gains["AND"]

    @property
    def area_nimp(self) -> float:
        """Area of the (g 6⇒ h) realization."""
        return self.op_areas["NOT_IMPLIES"]

    @property
    def gain_nimp(self) -> float:
        """Gain of 6⇒ bi-decomposition over f, in percent."""
        return self.op_gains["NOT_IMPLIES"]


def run_benchmark(
    benchmark: str | BenchmarkInstance,
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    library: GateLibrary | None = None,
    keep_artifacts: bool = False,
) -> BenchmarkResult:
    """Run the full experiment flow on one benchmark."""
    instance = (
        load_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    )
    mgr = instance.mgr
    names = mgr.var_names
    watch = Stopwatch()
    engine = Decomposer(minimizer="spp")

    f_covers: list[SppCover] = []
    g_covers: list[SppCover] = []
    error_pairs = []
    artifacts: list[OutputArtifacts] = []
    pairs_by_op: dict[str, list[tuple[SppCover, SppCover]]] = {
        op: [] for op in operators
    }

    # Expansion regime: the paper's structured control-logic benchmarks
    # land in the low-error regime naturally; the synthetic stand-ins
    # need the conservative policy to recreate it (DESIGN.md).  Two
    # expansion rounds on arithmetic instances reproduce the deep
    # collapse of g (Table IV's 85-99% area reductions).
    arithmetic = instance.spec.kind == "arithmetic"
    policy = "aggressive" if arithmetic else "conservative"
    rounds = 2 if arithmetic else 1

    for f in instance.outputs:
        f_cover = minimize_spp(f)
        f_covers.append(f_cover)
        with watch:
            approx = approximate_expand_full(
                f, initial=f_cover, policy=policy, rounds=rounds
            )
            g = approx.g
            divisor = Divisor(g=g, g_cover=approx.g_cover, name="expand-full")
            per_output = OutputArtifacts(f, f_cover, g, approx.g_cover)
            for op_name in operators:
                # The engine recomputes the quotient, minimizes h, and
                # verifies f = g op h (Lemmas 1-5) with the realized covers.
                try:
                    result = engine.decompose(f, op_name, approximator=divisor)
                except VerificationError as exc:
                    raise AssertionError(
                        f"{instance.name}: {op_name} bi-decomposition failed"
                        " verification"
                    ) from exc
                h_cover = result.decomposition.h_cover
                per_output.h_covers[op_name] = h_cover
                pairs_by_op[op_name].append((approx.g_cover, h_cover))
        g_covers.append(approx.g_cover)
        error_pairs.append((f, g))
        artifacts.append(per_output)

    area_f = area_of_spp_covers(f_covers, names, library)
    area_g = area_of_spp_covers(g_covers, names, library)
    area_f_isolated = isolated_area_of_spp_covers(f_covers, names, library)
    pct_errors = 100.0 * output_error_rate(error_pairs)
    pct_reduction = 100.0 * (area_f - area_g) / area_f if area_f else 0.0

    op_areas: dict[str, float] = {}
    op_gains: dict[str, float] = {}
    op_areas_isolated: dict[str, float] = {}
    for op_name in operators:
        area_op = area_of_bidecomposition(pairs_by_op[op_name], op_name, names, library)
        op_areas[op_name] = area_op
        op_gains[op_name] = (
            100.0 * (area_f - area_op) / area_f if area_f else 0.0
        )
        op_areas_isolated[op_name] = isolated_area_of_bidecomposition(
            pairs_by_op[op_name], op_name, names, library
        )

    return BenchmarkResult(
        name=instance.name,
        n_inputs=instance.spec.n_inputs,
        n_outputs=instance.spec.n_outputs,
        time_s=watch.elapsed,
        area_f=area_f,
        area_g=area_g,
        pct_errors=pct_errors,
        pct_reduction=pct_reduction,
        op_areas=op_areas,
        op_gains=op_gains,
        area_f_isolated=area_f_isolated,
        op_areas_isolated=op_areas_isolated,
        artifacts=artifacts if keep_artifacts else None,
    )


def decompose_suite(
    names: list[str],
    op: str = "auto",
    approximator: str = "expand-full",
    minimizer: str = "spp",
    engine: Decomposer | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    backend: str = "auto",
):
    """Decompose every output of the named benchmarks in one batch.

    Loads each benchmark, labels its outputs ``<bench>/o<i>``, and hands
    the whole suite to :meth:`Decomposer.decompose_many`, which merges
    the per-benchmark managers into one shared manager and memoizes
    approximation/minimization sub-results across outputs.  ``jobs``
    fans the batch out to a worker pool; ``cache_dir`` persists results
    on disk across runs; ``backend`` selects the function representation
    per item (``"auto"`` uses the dense bitset fast path for
    small-support outputs — results are identical on every backend).
    Returns the list of :class:`~repro.engine.request.DecomposeResult`.

    When ``engine`` is given, its configured strategies are used and the
    ``approximator``/``minimizer`` arguments are ignored.
    """
    engine = engine or Decomposer(approximator=approximator, minimizer=minimizer)
    labeled = []
    for name in names:
        instance = load_benchmark(name)
        for index, f in enumerate(instance.outputs):
            labeled.append((f"{instance.name}/o{index}", f))
    return engine.decompose_many(
        labeled, op, jobs=jobs, cache=cache_dir, backend=backend
    )


def synthesize_network(
    benchmark: str | BenchmarkInstance,
    config=None,
    jobs: int = 1,
    cache_dir: str | None = None,
    backend: str = "auto",
    library: GateLibrary | None = None,
):
    """Synthesize one shared multi-output network for a benchmark.

    The netsyn counterpart of :func:`run_benchmark`: instead of
    decomposing every output in isolation, the whole instance becomes a
    single :class:`~repro.techmap.network.LogicNetwork` with divisors
    and residual blocks shared across outputs through a canonical-hash
    pool (see :mod:`repro.netsyn`).  ``jobs`` prefetches the top-level
    decompositions through the engine's worker pool; ``cache_dir``
    persists finished networks (keys are backend-free, so a cache
    warmed under one backend serves the other).  Returns a
    :class:`~repro.netsyn.synthesis.NetworkSynthesisResult`.
    """
    from repro.netsyn.synthesis import synthesize_instance

    instance = (
        load_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    )
    return synthesize_instance(
        instance,
        config=config,
        jobs=jobs,
        cache=cache_dir,
        library=library,
        backend=backend,
    )


def _benchmark_result_payload(result: BenchmarkResult) -> dict:
    """JSON-ready form of a result (artifacts are never cached/shipped)."""
    return {
        "name": result.name,
        "n_inputs": result.n_inputs,
        "n_outputs": result.n_outputs,
        "time_s": result.time_s,
        "area_f": result.area_f,
        "area_g": result.area_g,
        "pct_errors": result.pct_errors,
        "pct_reduction": result.pct_reduction,
        "op_areas": dict(result.op_areas),
        "op_gains": dict(result.op_gains),
        "area_f_isolated": result.area_f_isolated,
        "op_areas_isolated": (
            dict(result.op_areas_isolated)
            if result.op_areas_isolated is not None
            else None
        ),
    }


def _run_benchmark_payload(task: tuple[str, tuple[str, ...]]) -> dict:
    """Worker entry point for parallel benchmark runs."""
    name, operators = task
    return _benchmark_result_payload(run_benchmark(name, operators))


def run_benchmarks(
    names: list[str],
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    library: GateLibrary | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> list[BenchmarkResult]:
    """Run several benchmarks, optionally in parallel and/or cached.

    Results come back in the order of ``names``.  With ``cache_dir``
    set, finished rows are stored on disk keyed by ``(benchmark,
    operators)`` and a warm re-run is served entirely from the cache
    (the cached ``time_s`` is the original measurement).  A custom
    ``library`` disables both the cache and the worker pool: the row
    keys would not describe it, and it may not cross process boundaries.
    """
    from repro.engine.cache import ResultCache

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if library is not None:
        return [run_benchmark(name, operators, library) for name in names]

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: list[BenchmarkResult | None] = [None] * len(names)
    keys: list[str | None] = [None] * len(names)
    pending: list[int] = []
    for index, name in enumerate(names):
        if cache is not None:
            keys[index] = cache.bench_key_for(name, operators)
            payload = cache.get(keys[index])
            if payload is not None:
                try:
                    results[index] = BenchmarkResult(**payload)
                    continue
                except TypeError:
                    # Stale field set (older/newer writer): recompute.
                    cache.stats["hits"] -= 1
                    cache.stats["misses"] += 1
                    cache.stats["corrupt"] += 1
        pending.append(index)

    if pending:
        tasks = [(names[index], tuple(operators)) for index in pending]
        if jobs > 1:
            from repro.engine.parallel import pool_context

            with pool_context().Pool(processes=min(jobs, len(tasks))) as pool:
                payloads = pool.map(_run_benchmark_payload, tasks, chunksize=1)
        else:
            payloads = [_run_benchmark_payload(task) for task in tasks]
        for index, payload in zip(pending, payloads):
            results[index] = BenchmarkResult(**payload)
            if cache is not None:
                cache.put(keys[index], payload)
    return results


def run_table(
    table: str,
    operators: tuple[str, ...] = DEFAULT_OPERATORS,
    library: GateLibrary | None = None,
    names: list[str] | None = None,
) -> list[BenchmarkResult]:
    """Run all benchmarks of paper Table III or IV (optionally a subset)."""
    from repro.benchgen.registry import table_benchmarks

    results = []
    for spec in table_benchmarks(table):
        if names is not None and spec.name not in names:
            continue
        results.append(run_benchmark(spec.name, operators, library))
    return results
