"""Table renderers: paper Tables I, II (definitional) and III, IV (runs)."""

from __future__ import annotations

from repro.benchgen.paper_data import PAPER_ROWS
from repro.core.operators import OPERATORS, TABLE_I_ORDER
from repro.harness.experiment import BenchmarkResult

#: Table II formula strings, exactly as printed in the paper (with ASCII
#: set notation).  Keys are canonical operator names.
TABLE_II_FORMULAS: dict[str, dict[str, str]] = {
    "AND": {
        "g": "0->1 approx of f (f_on <= g_on)",
        "h_on": "f_on",
        "h_dc": "g_off | f_dc",
        "h_off": "g_on \\ f_on",
    },
    "NOT_IMPLIED_BY": {
        "g": "1->0 approx of ~f (g_on <= f_off)",
        "h_on": "f_on",
        "h_dc": "g_on | f_dc",
        "h_off": "g_off \\ f_on",
    },
    "NOT_IMPLIES": {
        "g": "0->1 approx of f (f_on <= g_on)",
        "h_on": "f_off \\ g_off",
        "h_dc": "g_off | f_dc",
        "h_off": "f_on",
    },
    "NOR": {
        "g": "1->0 approx of ~f (g_on <= f_off)",
        "h_on": "f_off \\ g_on",
        "h_dc": "g_on | f_dc",
        "h_off": "f_on",
    },
    "OR": {
        "g": "1->0 approx of f (g_on <= f_on)",
        "h_on": "f_on \\ g_on",
        "h_dc": "g_on | f_dc",
        "h_off": "f_off",
    },
    "IMPLIES": {
        "g": "0->1 approx of ~f (f_off <= g_on)",
        "h_on": "f_on \\ g_off",
        "h_dc": "g_off | f_dc",
        "h_off": "f_off",
    },
    "IMPLIED_BY": {
        "g": "1->0 approx of f (g_on <= f_on)",
        "h_on": "f_off",
        "h_dc": "g_on | f_dc",
        "h_off": "f_on \\ g_on",
    },
    "NAND": {
        "g": "0->1 approx of ~f (f_off <= g_on)",
        "h_on": "f_off",
        "h_dc": "g_off | f_dc",
        "h_off": "g_on \\ f_off",
    },
    "XOR": {
        "g": "0<->1 approx of f",
        "h_on": "f_on (+) g_on",
        "h_dc": "f_dc",
        "h_off": "f_on (+) g_off",
    },
    "XNOR": {
        "g": "0<->1 approx of f",
        "h_on": "f_off (+) g_on",
        "h_dc": "f_dc",
        "h_off": "f_off (+) g_off",
    },
}


def render_table1() -> str:
    """Paper Table I: the ten binary operations and decomposed forms."""
    lines = [
        "TABLE I - THE TEN BINARY OPERATIONS DEPENDING ON BOTH INPUT VARIABLES",
        f"{'Operator':<16} {'Symbol':<7} {'Bi-decomposed form':<20} truth(00,01,10,11)",
        "-" * 72,
    ]
    for name in TABLE_I_ORDER:
        op = OPERATORS[name]
        row = "".join(str(int(bit)) for bit in op.truth_row())
        lines.append(f"{op.name:<16} {op.symbol:<7} {op.form:<20} {row}")
    return "\n".join(lines)


def render_table2() -> str:
    """Paper Table II: full-quotient flexibility formulas."""
    lines = [
        "TABLE II - FUNCTIONS g AND h IN THE BI-DECOMPOSED FORMS",
        f"{'Operator':<16} {'Approximation g':<38} {'h_on':<16} {'h_dc':<16} h_off",
        "-" * 100,
    ]
    for name in TABLE_I_ORDER:
        formulas = TABLE_II_FORMULAS[name]
        lines.append(
            f"{name:<16} {formulas['g']:<38} {formulas['h_on']:<16}"
            f" {formulas['h_dc']:<16} {formulas['h_off']}"
        )
    return "\n".join(lines)


def render_table_results(
    results: list[BenchmarkResult], table: str, with_paper: bool = True
) -> str:
    """Render measured Table III/IV rows (optionally with paper values).

    The two trailing columns compare the network-aware ``Area f``
    (shared gates counted once) with the per-output isolated sum:
    ``F iso`` is that sum and ``Shr%`` the sharing saving.  Paper rows
    (and rows reassembled from pre-netsyn cache payloads) leave them
    blank.
    """
    title = (
        f"TABLE {table} - EXPERIMENTAL COMPARISON"
        f" ({'error rate < 10%' if table == 'III' else 'error rate > 40%'})"
    )
    header = (
        f"{'Benchmark':<16} {'Time(s)':>8} {'Area f':>8} {'Area g':>8}"
        f" {'%Errors':>8} {'%Red.':>8} {'AreaAND':>8} {'GainAND%':>9}"
        f" {'Area6=>':>8} {'Gain6=>%':>9} {'F iso':>8} {'Shr%':>6}"
    )
    lines = [title, header, "-" * len(header)]
    for result in results:
        if result.area_f_isolated is not None and result.area_f_isolated:
            sharing = (
                100.0
                * (result.area_f_isolated - result.area_f)
                / result.area_f_isolated
            )
            isolated_cols = (
                f" {result.area_f_isolated:>8.0f} {sharing:>6.2f}"
            )
        else:
            isolated_cols = f" {'-':>8} {'-':>6}"
        lines.append(
            f"{result.name + f' ({result.n_inputs}/{result.n_outputs})':<16}"
            f" {result.time_s:>8.2f} {result.area_f:>8.0f} {result.area_g:>8.0f}"
            f" {result.pct_errors:>8.2f} {result.pct_reduction:>8.2f}"
            f" {result.area_and:>8.0f} {result.gain_and:>9.2f}"
            f" {result.area_nimp:>8.0f} {result.gain_nimp:>9.2f}"
            f"{isolated_cols}"
        )
        if with_paper and result.name in PAPER_ROWS:
            row = PAPER_ROWS[result.name]
            lines.append(
                f"{'  (paper)':<16} {row.time_s:>8.2f} {row.area_f:>8.0f}"
                f" {row.area_g:>8.0f} {row.pct_errors:>8.2f}"
                f" {row.pct_reduction:>8.2f} {row.area_and:>8.0f}"
                f" {row.gain_and:>9.2f} {row.area_nimp:>8.0f}"
                f" {row.gain_nimp:>9.2f} {'-':>8} {'-':>6}"
            )
    return "\n".join(lines)


def render_network_results(results) -> str:
    """Render shared-network synthesis rows (netsyn results).

    ``results`` holds :class:`~repro.netsyn.synthesis.NetworkSynthesisResult`
    items; the table compares the shared network's mapped area against
    the per-output isolated sum and reports the divisor-pool hit rate.
    """
    title = "SHARED MULTI-OUTPUT NETWORK SYNTHESIS (netsyn)"
    header = (
        f"{'Benchmark':<16} {'Outs':>5} {'Time(s)':>8} {'Shared':>8}"
        f" {'Isolated':>9} {'Save%':>7} {'Gates':>6} {'G iso':>6}"
        f" {'Pool%':>6} {'Cached':>7}"
    )
    lines = [title, header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.name:<16} {len(result.output_names):>5}"
            f" {result.time_s:>8.2f} {result.shared_area:>8.0f}"
            f" {result.isolated_area:>9.0f} {result.saving_pct:>7.2f}"
            f" {result.shared_gate_count:>6} {result.isolated_gate_count:>6}"
            f" {100 * result.pool_hit_rate:>6.1f}"
            f" {'yes' if result.cached else 'no':>7}"
        )
    total_shared = sum(r.shared_area for r in results)
    total_isolated = sum(r.isolated_area for r in results)
    if total_isolated:
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<16} {sum(len(r.output_names) for r in results):>5}"
            f" {sum(r.time_s for r in results):>8.2f} {total_shared:>8.0f}"
            f" {total_isolated:>9.0f}"
            f" {100 * (total_isolated - total_shared) / total_isolated:>7.2f}"
        )
    return "\n".join(lines)
