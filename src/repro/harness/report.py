"""Paper-vs-measured comparison helpers (EXPERIMENTS.md backing)."""

from __future__ import annotations

from repro.benchgen.paper_data import PAPER_ROWS, PaperRow
from repro.harness.experiment import BenchmarkResult


def comparison_lines(results: list[BenchmarkResult]) -> list[str]:
    """One comparison line per benchmark: measured vs paper key columns."""
    lines = []
    for result in results:
        row = PAPER_ROWS.get(result.name)
        if row is None:
            continue
        lines.append(
            f"{result.name}: errors {result.pct_errors:.2f}% (paper"
            f" {row.pct_errors:.2f}%), g-reduction {result.pct_reduction:.1f}%"
            f" (paper {row.pct_reduction:.1f}%), gain AND"
            f" {result.gain_and:+.1f}% (paper {row.gain_and:+.1f}%), gain 6=>"
            f" {result.gain_nimp:+.1f}% (paper {row.gain_nimp:+.1f}%)"
        )
    return lines


def _sign(value: float, tolerance: float = 2.0) -> int:
    """Ternary sign with a +-tolerance% dead zone around zero."""
    if value > tolerance:
        return 1
    if value < -tolerance:
        return -1
    return 0


def shape_summary(results: list[BenchmarkResult]) -> dict[str, object]:
    """Aggregate shape agreement between measured and paper results.

    Shape criteria (per DESIGN.md): sign of the AND / 6⇒ gains, the
    magnitude class of the g-area reduction, and the similarity between
    the two operators' behaviour on the same instance.
    """
    compared = 0
    gain_sign_matches = 0
    reduction_direction_matches = 0
    operators_agree_measured = 0
    operators_agree_paper = 0
    for result in results:
        row: PaperRow | None = PAPER_ROWS.get(result.name)
        if row is None:
            continue
        compared += 1
        if _sign(result.gain_and) == _sign(row.gain_and):
            gain_sign_matches += 1
        if (result.pct_reduction >= 50.0) == (row.pct_reduction >= 50.0):
            reduction_direction_matches += 1
        if _sign(result.gain_and) == _sign(result.gain_nimp):
            operators_agree_measured += 1
        if _sign(row.gain_and) == _sign(row.gain_nimp):
            operators_agree_paper += 1
    return {
        "compared": compared,
        "gain_sign_matches": gain_sign_matches,
        "reduction_class_matches": reduction_direction_matches,
        "operators_agree_measured": operators_agree_measured,
        "operators_agree_paper": operators_agree_paper,
    }
