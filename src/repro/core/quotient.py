"""Divisor validation and full-quotient computation (paper Table II).

Given an incompletely specified dividend ``f``, a completely specified
divisor ``g`` of the right approximation kind, and an operator ``op``,
:func:`full_quotient` returns the incompletely specified quotient ``h``
with the smallest on-set and the largest dc-set such that ``f = g op h``
(Lemmas 1–5 and Corollaries 1–4 of the paper).

Backend-neutral: the formulas are pure Boolean algebra over the
:class:`~repro.backend.protocol.BooleanFunction` protocol, so they run
unchanged on BDD and bitset representations.
"""

from __future__ import annotations

from repro.backend.protocol import BooleanFunction as Function
from repro.boolfunc.isf import ISF
from repro.core.operators import ApproximationKind, BinaryOperator, operator_by_name


class InvalidDivisorError(ValueError):
    """The divisor is not an approximation of the kind the operator needs."""


def validate_divisor(f: ISF, g: Function, op: BinaryOperator | str) -> None:
    """Raise :class:`InvalidDivisorError` unless ``g`` fits ``op``.

    The conditions are those of Table II, with don't-care minterms of
    ``f`` unrestricted (Definitions 1 and 2):

    * ``OVER_F``: ``f_on ⊆ g_on``;
    * ``UNDER_F``: ``g_on ∩ f_off = ∅``;
    * ``OVER_COMPLEMENT``: ``f_off ⊆ g_on``;
    * ``UNDER_COMPLEMENT``: ``g_on ∩ f_on = ∅``;
    * ``ANY``: always valid.
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    kind = op.approximation
    if kind is ApproximationKind.OVER_F:
        violation = f.on - g
        message = "g must over-approximate f (f_on ⊆ g_on)"
    elif kind is ApproximationKind.UNDER_F:
        violation = g & f.off
        message = "g must under-approximate f (g_on ∩ f_off = ∅)"
    elif kind is ApproximationKind.OVER_COMPLEMENT:
        violation = f.off - g
        message = "g must over-approximate ~f (f_off ⊆ g_on)"
    elif kind is ApproximationKind.UNDER_COMPLEMENT:
        violation = g & f.on
        message = "g must under-approximate ~f (g_on ∩ f_on = ∅)"
    else:
        return
    if not violation.is_false:
        raise InvalidDivisorError(
            f"{message}; {violation.satcount()} violating minterm(s) for"
            f" operator {op.name}"
        )


def full_quotient(f: ISF, g: Function, op: BinaryOperator | str) -> ISF:
    """The maximum-flexibility quotient of ``f`` by ``g`` under ``op``.

    Implements the formulas of Table II.  The returned ISF ``h``
    satisfies ``f = g op ĥ`` for *every* completion ``ĥ`` of ``h``
    (Lemmas 1–5), and any other valid quotient has a larger on-set or a
    smaller dc-set (Corollaries 1–4).
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    if g.mgr is not f.mgr:
        raise ValueError("f and g must share a BDD manager")
    validate_divisor(f, g, op)
    dc = op.quotient_dc(f, g)
    on = op.quotient_on(f, g) - dc  # Table II sets are read with dc priority
    return ISF(on, dc)


def divisor_error_set(f: ISF, g: Function, op: BinaryOperator | str) -> Function:
    """The approximation error: care minterms of ``f`` (or ``~f``) flipped
    by ``g``.

    Per the paper's observation after each lemma, this set coincides with
    the quotient's on-set or off-set (attribute ``error_in`` of the
    operator), so an accurate approximation directly yields a highly
    flexible quotient.
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    kind = op.approximation
    if kind is ApproximationKind.OVER_F:
        return g & f.off
    if kind is ApproximationKind.UNDER_F:
        return f.on - g
    if kind is ApproximationKind.OVER_COMPLEMENT:
        return g & f.on
    if kind is ApproximationKind.UNDER_COMPLEMENT:
        return f.off - g
    # 0↔1: both directions count.
    return (f.on - g) | (g & f.off)
