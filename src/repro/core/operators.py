"""The ten binary operations depending on both inputs (paper Table I)
and their full-quotient formulas (paper Table II).

Each operator records:

* its truth function on ``(g, h)`` bits;
* the bi-decomposed (De Morgan) form string from Table I;
* the kind of approximation the divisor ``g`` must be (Definitions 1–3);
* the Table II formulas for the quotient's on-set and dc-set as BDD
  expressions over ``f`` (an ISF) and ``g`` (completely specified), plus
  the paper's printed ``h_off`` expression for cross-checking.

The three operator families of Section III map to the three
approximation groups: AND-like operators need a 0→1 approximation of
``f`` (or a 1→0 approximation of its complement), OR-like the converse,
and the XOR pair accepts any 0↔1 approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.backend.protocol import BooleanFunction as Function
from repro.boolfunc.isf import ISF


class ApproximationKind(Enum):
    """What the divisor must be, per Table II (dc minterms unrestricted)."""

    #: 0→1 approximation of f: ``f_on ⊆ g_on``.
    OVER_F = "0->1 approximation of f"
    #: 1→0 approximation of f: ``g_on ∩ f_off = ∅``.
    UNDER_F = "1->0 approximation of f"
    #: 0→1 approximation of f̄: ``f_off ⊆ g_on``.
    OVER_COMPLEMENT = "0->1 approximation of ~f"
    #: 1→0 approximation of f̄: ``g_on ∩ f_on = ∅``.
    UNDER_COMPLEMENT = "1->0 approximation of ~f"
    #: 0↔1 approximation: any completely specified g.
    ANY = "0<->1 approximation of f"


@dataclass(frozen=True)
class BinaryOperator:
    """One of the ten non-degenerate two-input Boolean operators."""

    name: str
    symbol: str
    form: str
    truth: Callable[[bool, bool], bool]
    approximation: ApproximationKind
    #: Table II h_on expression (before removing overlap with h_dc).
    quotient_on: Callable[[ISF, Function], Function]
    #: Table II h_dc expression.
    quotient_dc: Callable[[ISF, Function], Function]
    #: Table II h_off expression, as printed (used only for cross-checks).
    quotient_off_printed: Callable[[ISF, Function], Function]
    #: Which of the quotient's sets equals the approximation error set
    #: ("on", "off", or "" when neither — never the case in Table II).
    error_in: str

    def __call__(self, g_bit: bool | int, h_bit: bool | int) -> bool:
        """Apply the operator to two bits."""
        return self.truth(bool(g_bit), bool(h_bit))

    def truth_row(self) -> tuple[bool, bool, bool, bool]:
        """Outputs on (g,h) = (0,0), (0,1), (1,0), (1,1)."""
        return (
            self.truth(False, False),
            self.truth(False, True),
            self.truth(True, False),
            self.truth(True, True),
        )

    def apply(self, g: Function, h: Function) -> Function:
        """Combine two completely specified functions with this operator."""
        out00, out01, out10, out11 = self.truth_row()
        mgr = g.mgr
        result = mgr.false
        if out11:
            result = result | (g & h)
        if out10:
            result = result | (g - h)
        if out01:
            result = result | (h - g)
        if out00:
            result = result | ~(g | h)
        return result

    def __repr__(self) -> str:
        return f"BinaryOperator({self.name})"


def _operators() -> dict[str, BinaryOperator]:
    registry: dict[str, BinaryOperator] = {}

    def add(
        name: str,
        symbol: str,
        form: str,
        truth: Callable[[bool, bool], bool],
        approximation: ApproximationKind,
        quotient_on: Callable[[ISF, Function], Function],
        quotient_dc: Callable[[ISF, Function], Function],
        quotient_off_printed: Callable[[ISF, Function], Function],
        error_in: str,
    ) -> None:
        registry[name] = BinaryOperator(
            name,
            symbol,
            form,
            truth,
            approximation,
            quotient_on,
            quotient_dc,
            quotient_off_printed,
            error_in,
        )

    # --- AND-like family (Section III-A) -------------------------------
    add(
        "AND",
        "·",
        "f = g · h",
        lambda a, b: a and b,
        ApproximationKind.OVER_F,
        lambda f, g: f.on,
        lambda f, g: ~g | f.dc,
        lambda f, g: g - f.on,
        "off",
    )
    add(
        "NOT_IMPLIED_BY",  # 6⇐ : f = ḡ · h
        "⇍",
        "f = ~g · h",
        lambda a, b: (not a) and b,
        ApproximationKind.UNDER_COMPLEMENT,
        lambda f, g: f.on,
        lambda f, g: g | f.dc,
        lambda f, g: (~g) - f.on,
        "off",
    )
    add(
        "NOT_IMPLIES",  # 6⇒ : f = g · h̄
        "⇏",
        "f = g · ~h",
        lambda a, b: a and (not b),
        ApproximationKind.OVER_F,
        lambda f, g: f.off - (~g),
        lambda f, g: ~g | f.dc,
        lambda f, g: f.on,
        "on",
    )
    add(
        "NOR",
        "↓",
        "f = ~g · ~h",
        lambda a, b: not (a or b),
        ApproximationKind.UNDER_COMPLEMENT,
        lambda f, g: f.off - g,
        lambda f, g: g | f.dc,
        lambda f, g: f.on,
        "on",
    )

    # --- OR-like family (Section III-B) ----------------------------------
    add(
        "OR",
        "+",
        "f = g + h",
        lambda a, b: a or b,
        ApproximationKind.UNDER_F,
        lambda f, g: f.on - g,
        lambda f, g: g | f.dc,
        lambda f, g: f.off,
        "on",
    )
    add(
        "IMPLIES",  # ⇒ : f = ḡ + h
        "⇒",
        "f = ~g + h",
        lambda a, b: (not a) or b,
        ApproximationKind.OVER_COMPLEMENT,
        lambda f, g: f.on - (~g),
        lambda f, g: ~g | f.dc,
        lambda f, g: f.off,
        "on",
    )
    add(
        "IMPLIED_BY",  # ⇐ : f = g + h̄
        "⇐",
        "f = g + ~h",
        lambda a, b: a or (not b),
        ApproximationKind.UNDER_F,
        lambda f, g: f.off,
        lambda f, g: g | f.dc,
        lambda f, g: f.on - g,
        "off",
    )
    add(
        "NAND",
        "↑",
        "f = ~g + ~h",
        lambda a, b: not (a and b),
        ApproximationKind.OVER_COMPLEMENT,
        lambda f, g: f.off,
        lambda f, g: ~g | f.dc,
        lambda f, g: g - f.off,
        "off",
    )

    # --- XOR family (Section III-C) -----------------------------------------
    add(
        "XOR",
        "⊕",
        "f = g ⊕ h",
        lambda a, b: a != b,
        ApproximationKind.ANY,
        lambda f, g: f.on ^ g,
        lambda f, g: f.dc,
        lambda f, g: f.on ^ (~g),
        "on",
    )
    add(
        "XNOR",
        "⊙",
        "f = g ⊕ ~h",
        lambda a, b: a == b,
        ApproximationKind.ANY,
        lambda f, g: f.off ^ g,
        lambda f, g: f.dc,
        lambda f, g: f.off ^ (~g),
        "off",  # "g is a 0<->1 approximation of f, whose errors are
        # described by h_off" (Section III-C)
    )
    return registry


#: Registry of all ten operators, in the order of paper Table I.
OPERATORS: dict[str, BinaryOperator] = _operators()

#: Table I presentation order.
TABLE_I_ORDER = (
    "AND",
    "NOT_IMPLIED_BY",
    "NOT_IMPLIES",
    "NOR",
    "OR",
    "IMPLIES",
    "IMPLIED_BY",
    "NAND",
    "XOR",
    "XNOR",
)

#: The two operators the paper evaluates experimentally (Section IV).
EXPERIMENT_OPERATORS = ("AND", "NOT_IMPLIES")


def operator_by_name(name: str) -> BinaryOperator:
    """Look up an operator; accepts canonical names and common aliases."""
    aliases = {
        "NIMPLY": "NOT_IMPLIES",
        "NIMPLIES": "NOT_IMPLIES",
        "6=>": "NOT_IMPLIES",
        "6<=": "NOT_IMPLIED_BY",
        "=>": "IMPLIES",
        "<=": "IMPLIED_BY",
    }
    key = name.upper()
    key = aliases.get(key, key)
    if key not in OPERATORS:
        raise KeyError(
            f"unknown operator {name!r}; choose from {sorted(OPERATORS)}"
        )
    return OPERATORS[key]


def apply_operator(op: BinaryOperator | str, g: Function, h: Function) -> Function:
    """Combine two completely specified functions with a binary operator."""
    if isinstance(op, str):
        op = operator_by_name(op)
    return op.apply(g, h)
