"""Semantic derivation of the full quotient, independent of Table II.

For every care minterm ``w`` of ``f`` the set of *allowed* quotient
values is ``{b : op(g(w), b) = f(w)}``.  The full quotient is forced
where exactly one value is allowed and free where both are; a divisor is
invalid exactly where no value is allowed.  This module computes that
characterization directly with BDD operations and is used by the test
suite to verify the paper's Table II formulas (Lemmas 1–5) and the
maximality statements (Corollaries 1–4).
"""

from __future__ import annotations

from repro.backend.protocol import BooleanFunction as Function
from repro.boolfunc.isf import ISF
from repro.core.operators import BinaryOperator, operator_by_name
from repro.core.quotient import InvalidDivisorError


def _op_with_fixed_h(g: Function, op: BinaryOperator, h_value: bool) -> Function:
    """The completely specified function ``w -> op(g(w), h_value)``."""
    out_g0 = op.truth(False, h_value)
    out_g1 = op.truth(True, h_value)
    if out_g0 and out_g1:
        return g.mgr.true
    if out_g1:
        return g
    if out_g0:
        return ~g
    return g.mgr.false


def semantic_full_quotient(f: ISF, g: Function, op: BinaryOperator | str) -> ISF:
    """Compute the full quotient from first principles (no Table II).

    Raises :class:`InvalidDivisorError` if some care minterm admits no
    quotient value — which happens exactly when ``g`` is not an
    approximation of the kind Table II requires.
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    mgr = f.mgr
    # matches_b = {w : op(g(w), b) == f(w)} over the care set.
    result_h1 = _op_with_fixed_h(g, op, True)
    result_h0 = _op_with_fixed_h(g, op, False)
    agrees_h1 = (result_h1 & f.on) | (~result_h1 & f.off)
    agrees_h0 = (result_h0 & f.on) | (~result_h0 & f.off)

    impossible = f.care & ~agrees_h1 & ~agrees_h0
    if not impossible.is_false:
        raise InvalidDivisorError(
            f"no quotient value exists on {impossible.satcount()} care"
            f" minterm(s); g is not a valid {op.approximation.value}"
        )
    on = agrees_h1 & ~agrees_h0
    dc = f.dc | (agrees_h1 & agrees_h0 & f.care)
    return ISF(on & ~dc, dc)


def is_valid_quotient(
    f: ISF, g: Function, op: BinaryOperator | str, candidate: ISF
) -> bool:
    """True iff *every* completion of ``candidate`` satisfies
    ``f = g op candidate`` on the care set of ``f``."""
    try:
        full = semantic_full_quotient(f, g, op)
    except InvalidDivisorError:
        return False
    # Forced-1 minterms must be on; forced-0 minterms must be off.
    return full.on <= candidate.on and full.off <= candidate.off


def is_full_quotient(
    f: ISF, g: Function, op: BinaryOperator | str, candidate: ISF
) -> bool:
    """True iff ``candidate`` is *the* maximum-flexibility quotient.

    Checks both validity and maximality: smallest on-set and largest
    dc-set among valid quotients (Corollaries 1–4 phrase this as "the
    quotient with the smallest on-set and the biggest dc-set").
    """
    try:
        full = semantic_full_quotient(f, g, op)
    except InvalidDivisorError:
        return False
    return candidate == full
