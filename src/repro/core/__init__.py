"""The paper's contribution: full-quotient bi-decomposition by approximation.

* :mod:`~repro.core.operators` — the ten non-degenerate two-input Boolean
  operators (Table I) with their quotient-flexibility formulas (Table II);
* :mod:`~repro.core.quotient` — divisor validation and full-quotient
  computation;
* :mod:`~repro.core.flexibility` — an independent *semantic* derivation
  of the full quotient (used to verify Lemmas 1–5 and Corollaries 1–4);
* :mod:`~repro.core.bidecomposition` — the end-to-end driver that picks a
  divisor by approximation, computes the quotient, minimizes both in
  2-SPP (or SOP) form and verifies ``f = g op h``.
"""

from repro.core.bidecomposition import BiDecomposition, bidecompose
from repro.core.flexibility import (
    is_full_quotient,
    is_valid_quotient,
    semantic_full_quotient,
)
from repro.core.operators import (
    OPERATORS,
    TABLE_I_ORDER,
    ApproximationKind,
    BinaryOperator,
    apply_operator,
    operator_by_name,
)
from repro.core.quotient import (
    InvalidDivisorError,
    divisor_error_set,
    full_quotient,
    validate_divisor,
)

__all__ = [
    "OPERATORS",
    "TABLE_I_ORDER",
    "ApproximationKind",
    "BiDecomposition",
    "BinaryOperator",
    "InvalidDivisorError",
    "apply_operator",
    "bidecompose",
    "divisor_error_set",
    "full_quotient",
    "is_full_quotient",
    "is_valid_quotient",
    "operator_by_name",
    "semantic_full_quotient",
    "validate_divisor",
]
