"""End-to-end bi-decomposition driver.

``bidecompose`` ties the pieces together exactly as Section IV-B of the
paper describes:

1. compute a divisor ``g`` as an approximation of ``f`` of the kind the
   chosen operator requires (caller-provided approximator);
2. compute the on/dc sets of the full quotient ``h`` with the Table II
   formulas (OBDD operations);
3. minimize ``g`` and ``h`` (2-SPP by default, plain SOP optionally);
4. return a :class:`BiDecomposition` whose :meth:`~BiDecomposition.verify`
   re-checks ``f = g op h`` on the care set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bdd.manager import Function
from repro.boolfunc.isf import ISF
from repro.core.operators import BinaryOperator, operator_by_name
from repro.core.quotient import divisor_error_set, full_quotient
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import minimize_spp


def apply_operator(op: BinaryOperator | str, g: Function, h: Function) -> Function:
    """Combine two completely specified functions with a binary operator."""
    if isinstance(op, str):
        op = operator_by_name(op)
    out00, out01, out10, out11 = op.truth_row()
    mgr = g.mgr
    result = mgr.false
    if out11:
        result = result | (g & h)
    if out10:
        result = result | (g - h)
    if out01:
        result = result | (h - g)
    if out00:
        result = result | ~(g | h)
    return result


@dataclass
class BiDecomposition:
    """A verified decomposition ``f = g op h``.

    ``h`` is the full quotient (maximum flexibility); ``h_cover`` is one
    concrete minimized completion of it, and ``g_cover`` a minimized form
    of the divisor.
    """

    f: ISF
    op: BinaryOperator
    g: Function
    h: ISF
    g_cover: SppCover | None = None
    h_cover: SppCover | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def error_set(self) -> Function:
        """Minterms flipped by the approximation (see Table II notes)."""
        return divisor_error_set(self.f, self.g, self.op)

    def error_rate(self) -> float:
        """Fraction of the Boolean space flipped by the approximation."""
        return self.error_set.satcount() / (1 << self.f.n_vars)

    def h_completion(self) -> Function:
        """The completion of ``h`` actually realized.

        Uses the minimized cover when available, else the bare on-set
        (the minimum completion).
        """
        if self.h_cover is not None:
            return self.h_cover.to_function(self.f.mgr)
        return self.h.on

    def g_realized(self) -> Function:
        """The divisor as realized by its minimized cover (must equal g)."""
        if self.g_cover is not None:
            return self.g_cover.to_function(self.f.mgr)
        return self.g

    def reconstruct(self) -> Function:
        """Evaluate ``g op h`` with the realized covers."""
        return apply_operator(self.op, self.g_realized(), self.h_completion())

    def verify(self) -> bool:
        """Check ``f = g op h`` on the care set of ``f`` (Lemmas 1–5)."""
        rebuilt = self.reconstruct()
        care = self.f.care
        return (rebuilt & care) == (self.f.on & care) and (
            self.f.on <= rebuilt
        )

    def literal_cost(self) -> int:
        """Total 2-SPP literal cost of the g and h covers."""
        cost = 0
        if self.g_cover is not None:
            cost += self.g_cover.literal_count()
        if self.h_cover is not None:
            cost += self.h_cover.literal_count()
        return cost


ApproximatorType = Callable[[ISF, BinaryOperator], Function]


def bidecompose(
    f: ISF,
    op: BinaryOperator | str,
    approximator: ApproximatorType | Function,
    minimize: Callable[[ISF], SppCover] = minimize_spp,
    verify: bool = True,
) -> BiDecomposition:
    """Bi-decompose ``f`` as ``g op h`` with full quotient flexibility.

    ``approximator`` is either a ready divisor (a BDD function) or a
    callable ``(f, op) -> g`` producing one; it must deliver the
    approximation kind the operator requires (see
    :func:`repro.core.quotient.validate_divisor`).
    """
    if isinstance(op, str):
        op = operator_by_name(op)
    if isinstance(approximator, Function):
        g = approximator
    else:
        g = approximator(f, op)
    h = full_quotient(f, g, op)
    g_cover = minimize(ISF.completely_specified(g))
    h_cover = minimize(h)
    result = BiDecomposition(f=f, op=op, g=g, h=h, g_cover=g_cover, h_cover=h_cover)
    if verify and not result.verify():
        raise AssertionError(
            f"bi-decomposition verification failed for operator {op.name}"
        )
    return result
