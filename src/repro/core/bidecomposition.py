"""End-to-end bi-decomposition driver.

``bidecompose`` ties the pieces together exactly as Section IV-B of the
paper describes:

1. compute a divisor ``g`` as an approximation of ``f`` of the kind the
   chosen operator requires (caller-provided approximator);
2. compute the on/dc sets of the full quotient ``h`` with the Table II
   formulas (OBDD operations);
3. minimize ``g`` and ``h`` (2-SPP by default, plain SOP optionally);
4. return a :class:`BiDecomposition` whose :meth:`~BiDecomposition.verify`
   re-checks ``f = g op h`` on the care set.

It is kept as a thin wrapper over the strategy-driven engine
(:class:`repro.engine.Decomposer`), which is the richer entry point for
multi-operator, multi-strategy, and batch workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bdd.manager import Function
from repro.boolfunc.isf import ISF
from repro.core.operators import BinaryOperator, apply_operator
from repro.core.quotient import divisor_error_set
from repro.spp.spp_cover import SppCover
from repro.spp.synthesis import minimize_spp


@dataclass
class BiDecomposition:
    """A verified decomposition ``f = g op h``.

    ``h`` is the full quotient (maximum flexibility); ``h_cover`` is one
    concrete minimized completion of it, and ``g_cover`` a minimized form
    of the divisor.
    """

    f: ISF
    op: BinaryOperator
    g: Function
    h: ISF
    g_cover: SppCover | None = None
    h_cover: SppCover | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def error_set(self) -> Function:
        """Minterms flipped by the approximation (see Table II notes)."""
        return divisor_error_set(self.f, self.g, self.op)

    def error_rate(self) -> float:
        """Fraction of the Boolean space flipped by the approximation."""
        return self.error_set.satcount() / (1 << self.f.n_vars)

    def h_completion(self) -> Function:
        """The completion of ``h`` actually realized.

        Uses the minimized cover when available, else the bare on-set
        (the minimum completion).
        """
        if self.h_cover is not None:
            return self.h_cover.to_function(self.f.mgr)
        return self.h.on

    def g_realized(self) -> Function:
        """The divisor as realized by its minimized cover (must equal g)."""
        if self.g_cover is not None:
            return self.g_cover.to_function(self.f.mgr)
        return self.g

    def reconstruct(self) -> Function:
        """Evaluate ``g op h`` with the realized covers."""
        return apply_operator(self.op, self.g_realized(), self.h_completion())

    def verify(self) -> bool:
        """Check ``f = g op h`` on the care set of ``f`` (Lemmas 1–5).

        Also checks that the realized ``g_cover`` round-trips to the
        divisor the quotient was computed for — a sound quotient for a
        different ``g`` would otherwise go unnoticed.
        """
        g_real = self.g_realized()  # realize once for both checks
        rebuilt = apply_operator(self.op, g_real, self.h_completion())
        care = self.f.care
        return (rebuilt & care) == (self.f.on & care) and g_real == self.g

    def literal_cost(self) -> int:
        """Total 2-SPP literal cost of the g and h covers."""
        cost = 0
        if self.g_cover is not None:
            cost += self.g_cover.literal_count()
        if self.h_cover is not None:
            cost += self.h_cover.literal_count()
        return cost


ApproximatorType = Callable[[ISF, BinaryOperator], Function]


def bidecompose(
    f: ISF,
    op: BinaryOperator | str,
    approximator: ApproximatorType | Function,
    minimize: Callable[[ISF], SppCover] = minimize_spp,
    verify: bool = True,
) -> BiDecomposition:
    """Bi-decompose ``f`` as ``g op h`` with full quotient flexibility.

    ``approximator`` is either a ready divisor (a BDD function) or a
    callable ``(f, op) -> g`` producing one; it must deliver the
    approximation kind the operator requires (see
    :func:`repro.core.quotient.validate_divisor`).

    Back-compat wrapper: the work happens in the strategy-driven engine
    (:class:`repro.engine.Decomposer`), which additionally offers named
    strategies, ``op="auto"`` search, and batch execution.
    """
    from repro.engine.decomposer import Decomposer

    engine = Decomposer(minimizer=minimize, verify=verify)
    return engine.decompose(f, op, approximator=approximator).decomposition
