"""A self-contained reduced ordered binary decision diagram (ROBDD) engine.

This package replaces the CUDD library used by the paper's authors.  It
provides:

* :class:`~repro.bdd.manager.BDD` — the node manager (unique table,
  ``ite``, quantification, restriction, composition, satcount).
* :class:`~repro.bdd.manager.Function` — a hashable handle to a node with
  full operator overloading (``&``, ``|``, ``^``, ``~``, ``-`` for set
  difference).
* :func:`~repro.bdd.ops.isop` — Minato–Morreale irredundant
  sum-of-products extraction between a lower and an upper bound, the
  bridge from BDDs to cube covers.
* :func:`~repro.bdd.expr.parse_expression` — a small Boolean expression
  parser (``~ & ^ | => <=>``) for tests and examples.
* :mod:`~repro.bdd.serialize` — canonical ``dump``/``load`` of functions
  to a compact, manager-free dict form with stable node numbering; the
  substrate for cross-process batches and persistent caching.
"""

from repro.bdd.expr import parse_expression
from repro.bdd.manager import BDD, Function
from repro.bdd.ops import isop, transfer
from repro.bdd.serialize import canonical_hash, dump, function_fingerprint, load

__all__ = [
    "BDD",
    "Function",
    "canonical_hash",
    "dump",
    "function_fingerprint",
    "isop",
    "load",
    "parse_expression",
    "transfer",
]
