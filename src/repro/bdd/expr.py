"""Boolean expression parser producing BDD functions.

Grammar (loosest binding first)::

    iff     := implies ( "<=>" implies )*
    implies := or ( "=>" or )*          (right associative)
    or      := xor ( "|" xor )*         ("+" is accepted as an alias)
    xor     := and ( "^" and )*
    and     := unary ( "&" unary )*     ("*" is accepted as an alias)
    unary   := ( "~" | "!" ) unary | atom
    atom    := IDENT | "0" | "1" | "(" iff ")" | atom "'"

A postfix apostrophe (``x'``) is accepted as negation to match the
paper's notation.  Identifiers are ``[A-Za-z_][A-Za-z0-9_\\[\\]]*``.
"""

from __future__ import annotations

import re

from repro.bdd.manager import BDD, Function

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\[\]]*)"
    r"|(?P<const>[01])"
    r"|(?P<op><=>|=>|[~!&^|()'*+]))"
)


class ExpressionError(ValueError):
    """Raised for malformed Boolean expressions."""


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ExpressionError(
                    f"unexpected character {text[position]!r} at offset {position}"
                )
            break
        tokens.append(match.group(match.lastgroup))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, mgr: BDD, tokens: list[str]) -> None:
        self.mgr = mgr
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ExpressionError(f"expected {token!r}, got {got!r}")

    # Grammar rules -----------------------------------------------------
    def parse_iff(self) -> Function:
        left = self.parse_implies()
        while self.peek() == "<=>":
            self.take()
            left = left.equiv(self.parse_implies())
        return left

    def parse_implies(self) -> Function:
        left = self.parse_or()
        if self.peek() == "=>":
            self.take()
            return left.implies(self.parse_implies())
        return left

    def parse_or(self) -> Function:
        left = self.parse_xor()
        while self.peek() in ("|", "+"):
            self.take()
            left = left | self.parse_xor()
        return left

    def parse_xor(self) -> Function:
        left = self.parse_and()
        while self.peek() == "^":
            self.take()
            left = left ^ self.parse_and()
        return left

    def parse_and(self) -> Function:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token in ("&", "*"):
                self.take()
                left = left & self.parse_unary()
            elif token is not None and (token[0].isalpha() or token in ("(", "0", "1", "~", "!")):
                # Juxtaposition (``x1x2`` tokenizes as one identifier, but
                # ``x1 (a|b)`` and ``x1 ~y`` are implicit conjunctions).
                left = left & self.parse_unary()
            else:
                return left

    def parse_unary(self) -> Function:
        token = self.peek()
        if token in ("~", "!"):
            self.take()
            return ~self.parse_unary()
        return self.parse_atom()

    def parse_atom(self) -> Function:
        token = self.take()
        if token == "(":
            inner = self.parse_iff()
            self.expect(")")
            result = inner
        elif token == "0":
            result = self.mgr.false
        elif token == "1":
            result = self.mgr.true
        elif token[0].isalpha() or token[0] == "_":
            result = self.mgr.var(token)
        else:
            raise ExpressionError(f"unexpected token {token!r}")
        while self.peek() == "'":
            self.take()
            result = ~result
        return result


def parse_expression(mgr: BDD, text: str) -> Function:
    """Parse ``text`` into a BDD function over ``mgr``'s variables.

    Undeclared identifiers raise ``KeyError``; declare variables on the
    manager first so the global ordering is explicit.
    """
    parser = _Parser(mgr, _tokenize(text))
    result = parser.parse_iff()
    if parser.peek() is not None:
        raise ExpressionError(f"trailing tokens starting at {parser.peek()!r}")
    return result
