"""Derived BDD algorithms: irredundant sum-of-products extraction.

:func:`isop` implements the Minato–Morreale ISOP procedure.  Given a lower
bound ``L`` and an upper bound ``U`` (``L <= U``), it returns a list of
cubes whose union lies between the bounds and is an irredundant cover.
This is the canonical bridge from BDD representations of incompletely
specified functions to cube covers: ``isop(f.on, f.on | f.dc)`` seeds the
two-level minimizers in :mod:`repro.twolevel`.

Both :func:`isop` and :func:`transfer` run on explicit work stacks (no
Python recursion), so chain-structured functions over thousands of
variables are handled without touching the interpreter recursion limit.

Cubes are returned as ``{variable_name: bool}`` dictionaries, readily
convertible to :class:`repro.cover.Cube`.
"""

from __future__ import annotations

from repro.bdd.manager import TERMINAL_LEVEL, BDD, Function

# isop frame slots (explicit stack machine; see _isop_edges).
_STAGE, _LOW, _UP, _LEVEL, _L0, _L1, _U0, _U1, _F0, _CUBES0, _F1, _CUBES1 = range(12)


def _isop_edges(
    mgr: BDD, lower: int, upper: int
) -> tuple[int, list[tuple[tuple[int, bool], ...]]]:
    """Iterative Minato–Morreale core over edges.

    Returns ``(cover_edge, cubes)``; cubes are tuples of ``(level,
    polarity)`` pairs, top variable first — byte-identical to what the
    recursive formulation produces, so downstream covers are stable.
    """
    node_cache: dict[tuple[int, int], int] = {}
    cube_cache: dict[tuple[int, int], tuple] = {}

    def resolve(low: int, up: int):
        """Terminal/cached sub-results, without allocating a frame."""
        if low == 0:
            return (0, [])
        if up == 1:
            return (1, [()])
        cached = node_cache.get((low, up))
        if cached is not None:
            return (cached, list(cube_cache[(low, up)]))
        return None

    ret = resolve(lower, upper)
    if ret is not None:
        return ret
    frames: list[list] = [
        [0, lower, upper, 0, 0, 0, 0, 0, 0, None, 0, None]
    ]
    while frames:
        frame = frames[-1]
        stage = frame[_STAGE]
        if stage == 0:
            low, up = frame[_LOW], frame[_UP]
            level = min(mgr._level[low >> 1], mgr._level[up >> 1])
            frame[_LEVEL] = level
            frame[_L0], frame[_L1] = mgr._branches(low, level)
            frame[_U0], frame[_U1] = mgr._branches(up, level)
            frame[_STAGE] = 1
            # Cubes that must contain the negative literal of this variable.
            sub_low = mgr._and(frame[_L0], frame[_U1] ^ 1)
            ret = resolve(sub_low, frame[_U0])
            if ret is None:
                frames.append(
                    [0, sub_low, frame[_U0], 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        elif stage == 1:
            frame[_F0], frame[_CUBES0] = ret
            frame[_STAGE] = 2
            # Cubes that must contain the positive literal of this variable.
            sub_low = mgr._and(frame[_L1], frame[_U0] ^ 1)
            ret = resolve(sub_low, frame[_U1])
            if ret is None:
                frames.append(
                    [0, sub_low, frame[_U1], 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        elif stage == 2:
            frame[_F1], frame[_CUBES1] = ret
            frame[_STAGE] = 3
            # Remaining onset handled by cubes independent of this variable.
            l_rest = mgr._or(
                mgr._and(frame[_L0], frame[_F0] ^ 1),
                mgr._and(frame[_L1], frame[_F1] ^ 1),
            )
            upper_rest = mgr._and(frame[_U0], frame[_U1])
            ret = resolve(l_rest, upper_rest)
            if ret is None:
                frames.append(
                    [0, l_rest, upper_rest, 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        else:
            fd_edge, cubes_d = ret
            level = frame[_LEVEL]
            cover_edge = mgr._ite(
                mgr._mk(level, 0, 1),
                mgr._or(frame[_F1], fd_edge),
                mgr._or(frame[_F0], fd_edge),
            )
            cubes = (
                [((level, False),) + cube for cube in frame[_CUBES0]]
                + [((level, True),) + cube for cube in frame[_CUBES1]]
                + cubes_d
            )
            key = (frame[_LOW], frame[_UP])
            node_cache[key] = cover_edge
            cube_cache[key] = tuple(cubes)
            ret = (cover_edge, cubes)
            frames.pop()
    return ret


def isop(lower: Function, upper: Function) -> tuple[list[dict[str, bool]], Function]:
    """Minato–Morreale irredundant SOP between ``lower`` and ``upper``.

    Returns ``(cubes, realized)`` where ``realized`` is the function of
    the produced cover; it always satisfies ``lower <= realized <=
    upper``.  Backend-neutral: bitset bounds run the dense mirror of the
    same recursion (:func:`repro.backend.bitset.isop_dense`) and produce
    an identical cube sequence.
    """
    mgr = lower.mgr
    if upper.mgr is not mgr:
        raise ValueError("lower and upper bounds use different managers")
    if not lower <= upper:
        raise ValueError("isop requires lower <= upper")
    names = mgr.var_names
    if isinstance(lower, Function):
        if not mgr._order_is_identity:
            # The recursion splits on the current top level, so its cube
            # sequence depends on the physical order.  Run it in a
            # declaration-order shadow: covers (and everything minimized
            # from them) stay byte-identical across reorders.
            shadow = BDD(list(names))
            cover_edge, cubes = _isop_edges(
                shadow,
                transfer(lower, shadow).node,
                transfer(upper, shadow).node,
            )
            realized = transfer(Function(shadow, cover_edge), mgr)
        else:
            cover_edge, cubes = _isop_edges(mgr, lower.node, upper.node)
            realized = Function(mgr, cover_edge)
    else:
        from repro.backend.bitset import isop_dense

        cover_bits, cubes = isop_dense(
            mgr, lower._aligned_bits(), upper._aligned_bits()
        )
        realized = mgr._wrap(cover_bits)
    dict_cubes = [
        {names[level]: value for level, value in cube} for cube in cubes
    ]
    return dict_cubes, realized


def isop_cubes(lower: Function, upper: Function):
    """Lazily yield the cubes of :func:`isop`, in the same order.

    The generator path for cover-free callers: no realized cover
    function is returned and no per-node cube lists are materialized
    (the eager version's ``cube_cache`` holds full lists at every node —
    exponential in the worst case), so memory stays O(depth) and an
    early exit (``islice``, first-k probes) stops all remaining work.
    Shared subproblems re-derive their cubes instead of replaying a
    cache, which is the same asymptotic work the eager version spends
    prefixing cached child lists into every parent.
    """
    mgr = lower.mgr
    if upper.mgr is not mgr:
        raise ValueError("lower and upper bounds use different managers")
    if not lower <= upper:
        raise ValueError("isop requires lower <= upper")
    names = mgr.var_names
    if isinstance(lower, Function):
        if not mgr._order_is_identity:
            # Same declaration-order normalization as :func:`isop` — the
            # shadow stays alive through the generator closure.
            shadow = BDD(list(names))
            stream = _isop_stream_edges(
                shadow,
                transfer(lower, shadow).node,
                transfer(upper, shadow).node,
            )
        else:
            stream = _isop_stream_edges(mgr, lower.node, upper.node)
    else:
        from repro.backend.bitset import isop_stream_dense

        stream = isop_stream_dense(
            mgr, lower._aligned_bits(), upper._aligned_bits()
        )
    for cube in stream:
        yield {names[level]: value for level, value in cube}


def _isop_stream_edges(mgr: BDD, lower: int, upper: int):
    """Iterative lazy Minato–Morreale over edges (explicit frame stack).

    Yields ``(level, polarity)`` cube tuples in exactly the order
    :func:`_isop_edges` concatenates them: all negative-literal cubes of
    a level, then the positive-literal ones, then the level-independent
    remainder.  Sub-cover edges are still built (the remainder bound
    needs them) but no cube list is ever stored.
    """
    if lower == 0:
        return
    if upper == 1:
        yield ()
        return
    _and, _or = mgr._and, mgr._or
    # Frame: [stage, low, up, level, l0, l1, u0, u1, f0, f1, prefix].
    frames: list[list] = [[0, lower, upper, 0, 0, 0, 0, 0, 0, 0, ()]]
    ret = 0
    while frames:
        frame = frames[-1]
        stage = frame[0]
        if stage == 0:
            low, up = frame[1], frame[2]
            level = min(mgr._level[low >> 1], mgr._level[up >> 1])
            frame[3] = level
            frame[4], frame[5] = mgr._branches(low, level)
            frame[6], frame[7] = mgr._branches(up, level)
            frame[0] = 1
            sub_low = _and(frame[4], frame[7] ^ 1)
            sub_up = frame[6]
            prefix = frame[10] + ((level, False),)
            if sub_low == 0:
                ret = 0
            elif sub_up == 1:
                yield prefix
                ret = 1
            else:
                frames.append([0, sub_low, sub_up, 0, 0, 0, 0, 0, 0, 0, prefix])
        elif stage == 1:
            frame[8] = ret
            frame[0] = 2
            sub_low = _and(frame[5], frame[6] ^ 1)
            sub_up = frame[7]
            prefix = frame[10] + ((frame[3], True),)
            if sub_low == 0:
                ret = 0
            elif sub_up == 1:
                yield prefix
                ret = 1
            else:
                frames.append([0, sub_low, sub_up, 0, 0, 0, 0, 0, 0, 0, prefix])
        elif stage == 2:
            frame[9] = ret
            frame[0] = 3
            sub_low = _or(
                _and(frame[4], frame[8] ^ 1), _and(frame[5], frame[9] ^ 1)
            )
            sub_up = _and(frame[6], frame[7])
            if sub_low == 0:
                ret = 0
            elif sub_up == 1:
                yield frame[10]
                ret = 1
            else:
                frames.append(
                    [0, sub_low, sub_up, 0, 0, 0, 0, 0, 0, 0, frame[10]]
                )
        else:
            level = frame[3]
            ret = mgr._ite(
                mgr._mk(level, 0, 1), _or(frame[9], ret), _or(frame[8], ret)
            )
            frames.pop()


def cube_to_function(mgr: BDD, cube: dict[str, bool]) -> Function:
    """Build the BDD of a cube given as ``{name: polarity}``."""
    return mgr.cube(cube)


def level_map_by_name(var_names, target) -> list[int]:
    """Current target level of every source variable, in source order.

    The variable contract every cross-manager move shares (structural
    transfer, dense conversion, serializer load): each source variable
    must be declared in ``target`` and the shared variables must keep
    their relative *declaration* order.  Raises :class:`ValueError`
    otherwise.  The returned levels are the target's **current** levels;
    when the target has been reordered they need not be monotonic, and
    structural (``_mk``) consumers must fall back to a semantic rebuild.
    """
    mapped = []
    positions = []
    index_of = getattr(target, "_var_index", None)
    for name in var_names:
        try:
            mapped.append(target.level_of(name))
        except KeyError:
            raise ValueError(
                f"target manager does not declare variable {name!r}"
            ) from None
        if index_of is not None:
            positions.append(index_of[name])
    check = positions if index_of is not None else mapped
    if check != sorted(check):
        raise ValueError(
            "variable orders of source and target managers are incompatible"
        )
    return mapped


def transfer(function: Function, target: BDD) -> Function:
    """Rebuild ``function`` inside another manager, matching variables by name.

    Every variable in the source manager must be declared in ``target``,
    and the relative order of the shared variables must agree (the
    structural copy below preserves levels, so an order inversion would
    produce an unordered diagram).  Extra variables in ``target`` are
    simply unused.  This is the primitive behind batch decomposition over
    a single shared manager.

    When either side is a bitset manager the move is a direct structural
    conversion (dense tabulation of a BDD, or Shannon rebuild of a dense
    table) under the same variable contract; a bitset-to-bitset move
    rides on the canonical serializer.
    """
    src = function.mgr
    if target is src:
        return function
    if not (isinstance(function, Function) and isinstance(target, BDD)):
        from repro.backend.bitset import (
            BitsetBDD,
            BitsetFunction,
            function_from_bdd,
            function_to_bdd,
        )

        if isinstance(function, Function) and isinstance(target, BitsetBDD):
            return function_from_bdd(function, target)
        if isinstance(function, BitsetFunction) and isinstance(target, BDD):
            return function_to_bdd(function, target)
        from repro.bdd import serialize

        return serialize.load(serialize.dump(function), target)
    # The copy walks *source levels*, so index the validated declaration
    # map through the source's current order.
    decl_levels = level_map_by_name(src.var_names, target)
    level_map = [decl_levels[var] for var in src._level_var]
    # When either side has been reordered the per-level map may invert
    # somewhere; a structural ``_mk`` copy would build an unordered
    # diagram, so those moves rebuild semantically through ``ite``.
    structural = all(a < b for a, b in zip(level_map, level_map[1:]))
    var_edges = (
        None if structural else [target._mk(lvl, 0, 1) for lvl in level_map]
    )

    # Iterative post-order copy.  ``copied[i]`` is the target edge of the
    # *plain* (uncomplemented) function of source node index ``i``;
    # complements carried by edges transfer as a final bit flip.
    copied: dict[int, int] = {0: 0}
    src_level, src_low, src_high = src._level, src._low, src._high
    stack: list[tuple[int, bool]] = [(function.node >> 1, False)]
    while stack:
        index, expanded = stack.pop()
        if index in copied:
            continue
        low, high = src_low[index], src_high[index]
        if expanded:
            low_edge = copied[low >> 1] ^ (low & 1)
            high_edge = copied[high >> 1] ^ (high & 1)
            if structural:
                copied[index] = target._mk(
                    level_map[src_level[index]], low_edge, high_edge
                )
            else:
                copied[index] = target._ite(
                    var_edges[src_level[index]], high_edge, low_edge
                )
        else:
            stack.append((index, True))
            stack.append((high >> 1, False))
            stack.append((low >> 1, False))
    return Function(target, copied[function.node >> 1] ^ (function.node & 1))


def count_nodes_dag(functions: list[Function]) -> int:
    """Number of distinct BDD nodes used by a set of functions (shared DAG).

    Counts distinct *edges* (canonical subfunctions), which matches the
    node count of the equivalent complement-free shared ROBDD.
    """
    if not functions:
        return 0
    mgr = functions[0].mgr
    seen: set[int] = set()
    stack = [f.node for f in functions]
    low_of, high_of = mgr._low, mgr._high
    while stack:
        edge = stack.pop()
        if edge in seen:
            continue
        seen.add(edge)
        index = edge >> 1
        if index:
            complement = edge & 1
            stack.append(low_of[index] ^ complement)
            stack.append(high_of[index] ^ complement)
    return len(seen)


__all__ = [
    "isop",
    "isop_cubes",
    "cube_to_function",
    "count_nodes_dag",
    "transfer",
    "TERMINAL_LEVEL",
]
