"""Derived BDD algorithms: irredundant sum-of-products extraction.

:func:`isop` implements the Minato–Morreale ISOP procedure.  Given a lower
bound ``L`` and an upper bound ``U`` (``L <= U``), it returns a list of
cubes whose union lies between the bounds and is an irredundant cover.
This is the canonical bridge from BDD representations of incompletely
specified functions to cube covers: ``isop(f.on, f.on | f.dc)`` seeds the
two-level minimizers in :mod:`repro.twolevel`.

Both :func:`isop` and :func:`transfer` run on explicit work stacks (no
Python recursion), so chain-structured functions over thousands of
variables are handled without touching the interpreter recursion limit.

Cubes are returned as ``{variable_name: bool}`` dictionaries, readily
convertible to :class:`repro.cover.Cube`.
"""

from __future__ import annotations

from repro.bdd.manager import TERMINAL_LEVEL, BDD, Function

# isop frame slots (explicit stack machine; see _isop_edges).
_STAGE, _LOW, _UP, _LEVEL, _L0, _L1, _U0, _U1, _F0, _CUBES0, _F1, _CUBES1 = range(12)


def _isop_edges(
    mgr: BDD, lower: int, upper: int
) -> tuple[int, list[tuple[tuple[int, bool], ...]]]:
    """Iterative Minato–Morreale core over edges.

    Returns ``(cover_edge, cubes)``; cubes are tuples of ``(level,
    polarity)`` pairs, top variable first — byte-identical to what the
    recursive formulation produces, so downstream covers are stable.
    """
    node_cache: dict[tuple[int, int], int] = {}
    cube_cache: dict[tuple[int, int], tuple] = {}

    def resolve(low: int, up: int):
        """Terminal/cached sub-results, without allocating a frame."""
        if low == 0:
            return (0, [])
        if up == 1:
            return (1, [()])
        cached = node_cache.get((low, up))
        if cached is not None:
            return (cached, list(cube_cache[(low, up)]))
        return None

    ret = resolve(lower, upper)
    if ret is not None:
        return ret
    frames: list[list] = [
        [0, lower, upper, 0, 0, 0, 0, 0, 0, None, 0, None]
    ]
    while frames:
        frame = frames[-1]
        stage = frame[_STAGE]
        if stage == 0:
            low, up = frame[_LOW], frame[_UP]
            level = min(mgr._level[low >> 1], mgr._level[up >> 1])
            frame[_LEVEL] = level
            frame[_L0], frame[_L1] = mgr._branches(low, level)
            frame[_U0], frame[_U1] = mgr._branches(up, level)
            frame[_STAGE] = 1
            # Cubes that must contain the negative literal of this variable.
            sub_low = mgr._and(frame[_L0], frame[_U1] ^ 1)
            ret = resolve(sub_low, frame[_U0])
            if ret is None:
                frames.append(
                    [0, sub_low, frame[_U0], 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        elif stage == 1:
            frame[_F0], frame[_CUBES0] = ret
            frame[_STAGE] = 2
            # Cubes that must contain the positive literal of this variable.
            sub_low = mgr._and(frame[_L1], frame[_U0] ^ 1)
            ret = resolve(sub_low, frame[_U1])
            if ret is None:
                frames.append(
                    [0, sub_low, frame[_U1], 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        elif stage == 2:
            frame[_F1], frame[_CUBES1] = ret
            frame[_STAGE] = 3
            # Remaining onset handled by cubes independent of this variable.
            l_rest = mgr._or(
                mgr._and(frame[_L0], frame[_F0] ^ 1),
                mgr._and(frame[_L1], frame[_F1] ^ 1),
            )
            upper_rest = mgr._and(frame[_U0], frame[_U1])
            ret = resolve(l_rest, upper_rest)
            if ret is None:
                frames.append(
                    [0, l_rest, upper_rest, 0, 0, 0, 0, 0, 0, None, 0, None]
                )
        else:
            fd_edge, cubes_d = ret
            level = frame[_LEVEL]
            cover_edge = mgr._ite(
                mgr._mk(level, 0, 1),
                mgr._or(frame[_F1], fd_edge),
                mgr._or(frame[_F0], fd_edge),
            )
            cubes = (
                [((level, False),) + cube for cube in frame[_CUBES0]]
                + [((level, True),) + cube for cube in frame[_CUBES1]]
                + cubes_d
            )
            key = (frame[_LOW], frame[_UP])
            node_cache[key] = cover_edge
            cube_cache[key] = tuple(cubes)
            ret = (cover_edge, cubes)
            frames.pop()
    return ret


def isop(lower: Function, upper: Function) -> tuple[list[dict[str, bool]], Function]:
    """Minato–Morreale irredundant SOP between ``lower`` and ``upper``.

    Returns ``(cubes, realized)`` where ``realized`` is the BDD of the
    produced cover; it always satisfies ``lower <= realized <= upper``.
    """
    mgr = lower.mgr
    if upper.mgr is not mgr:
        raise ValueError("lower and upper bounds use different managers")
    if not lower <= upper:
        raise ValueError("isop requires lower <= upper")
    cover_edge, cubes = _isop_edges(mgr, lower.node, upper.node)
    names = mgr.var_names
    dict_cubes = [
        {names[level]: value for level, value in cube} for cube in cubes
    ]
    return dict_cubes, Function(mgr, cover_edge)


def cube_to_function(mgr: BDD, cube: dict[str, bool]) -> Function:
    """Build the BDD of a cube given as ``{name: polarity}``."""
    return mgr.cube(cube)


def transfer(function: Function, target: BDD) -> Function:
    """Rebuild ``function`` inside another manager, matching variables by name.

    Every variable in the source manager must be declared in ``target``,
    and the relative order of the shared variables must agree (the
    structural copy below preserves levels, so an order inversion would
    produce an unordered diagram).  Extra variables in ``target`` are
    simply unused.  This is the primitive behind batch decomposition over
    a single shared manager.
    """
    src = function.mgr
    if target is src:
        return function
    level_map: dict[int, int] = {}
    for name in src.var_names:
        try:
            level_map[src.level_of(name)] = target.level_of(name)
        except KeyError:
            raise ValueError(
                f"target manager does not declare variable {name!r}"
            ) from None
    mapped = [level_map[level] for level in sorted(level_map)]
    if mapped != sorted(mapped):
        raise ValueError(
            "variable orders of source and target managers are incompatible"
        )

    # Iterative post-order copy.  ``copied[i]`` is the target edge of the
    # *plain* (uncomplemented) function of source node index ``i``;
    # complements carried by edges transfer as a final bit flip.
    copied: dict[int, int] = {0: 0}
    src_level, src_low, src_high = src._level, src._low, src._high
    stack: list[tuple[int, bool]] = [(function.node >> 1, False)]
    while stack:
        index, expanded = stack.pop()
        if index in copied:
            continue
        low, high = src_low[index], src_high[index]
        if expanded:
            low_edge = copied[low >> 1] ^ (low & 1)
            high_edge = copied[high >> 1] ^ (high & 1)
            copied[index] = target._mk(
                level_map[src_level[index]], low_edge, high_edge
            )
        else:
            stack.append((index, True))
            stack.append((high >> 1, False))
            stack.append((low >> 1, False))
    return Function(target, copied[function.node >> 1] ^ (function.node & 1))


def count_nodes_dag(functions: list[Function]) -> int:
    """Number of distinct BDD nodes used by a set of functions (shared DAG).

    Counts distinct *edges* (canonical subfunctions), which matches the
    node count of the equivalent complement-free shared ROBDD.
    """
    if not functions:
        return 0
    mgr = functions[0].mgr
    seen: set[int] = set()
    stack = [f.node for f in functions]
    low_of, high_of = mgr._low, mgr._high
    while stack:
        edge = stack.pop()
        if edge in seen:
            continue
        seen.add(edge)
        index = edge >> 1
        if index:
            complement = edge & 1
            stack.append(low_of[index] ^ complement)
            stack.append(high_of[index] ^ complement)
    return len(seen)


__all__ = [
    "isop",
    "cube_to_function",
    "count_nodes_dag",
    "transfer",
    "TERMINAL_LEVEL",
]
