"""Derived BDD algorithms: irredundant sum-of-products extraction.

:func:`isop` implements the Minato–Morreale ISOP procedure.  Given a lower
bound ``L`` and an upper bound ``U`` (``L <= U``), it returns a list of
cubes whose union lies between the bounds and is an irredundant cover.
This is the canonical bridge from BDD representations of incompletely
specified functions to cube covers: ``isop(f.on, f.on | f.dc)`` seeds the
two-level minimizers in :mod:`repro.twolevel`.

Cubes are returned as ``{variable_name: bool}`` dictionaries, readily
convertible to :class:`repro.cover.Cube`.
"""

from __future__ import annotations

from repro.bdd.manager import TERMINAL_LEVEL, BDD, Function


def isop(lower: Function, upper: Function) -> tuple[list[dict[str, bool]], Function]:
    """Minato–Morreale irredundant SOP between ``lower`` and ``upper``.

    Returns ``(cubes, realized)`` where ``realized`` is the BDD of the
    produced cover; it always satisfies ``lower <= realized <= upper``.
    """
    mgr = lower.mgr
    if upper.mgr is not mgr:
        raise ValueError("lower and upper bounds use different managers")
    if not lower <= upper:
        raise ValueError("isop requires lower <= upper")
    cache: dict[tuple[int, int], tuple[tuple[tuple[int, bool], ...], ...]] = {}
    node_cache: dict[tuple[int, int], int] = {}

    def rec(low_node: int, up_node: int) -> tuple[int, list[tuple[tuple[int, bool], ...]]]:
        """Return (cover_bdd_node, cubes); cubes are tuples of (level, value)."""
        if low_node == 0:
            return 0, []
        if up_node == 1:
            return 1, [()]
        key = (low_node, up_node)
        if key in node_cache:
            return node_cache[key], list(cache[key])

        level = min(mgr._level[low_node], mgr._level[up_node])
        l0, l1 = mgr._branches(low_node, level)
        u0, u1 = mgr._branches(up_node, level)

        # Cubes that must contain the negative literal of this variable.
        f0_node, cubes0 = rec(mgr._and(l0, mgr._not(u1)), u0)
        # Cubes that must contain the positive literal of this variable.
        f1_node, cubes1 = rec(mgr._and(l1, mgr._not(u0)), u1)
        # Remaining onset handled by cubes independent of this variable.
        l_rest = mgr._or(
            mgr._and(l0, mgr._not(f0_node)), mgr._and(l1, mgr._not(f1_node))
        )
        fd_node, cubes_d = rec(l_rest, mgr._and(u0, u1))

        cover_node = mgr._ite(
            mgr._mk(level, 0, 1),
            mgr._or(f1_node, fd_node),
            mgr._or(f0_node, fd_node),
        )
        cubes = (
            [((level, False),) + cube for cube in cubes0]
            + [((level, True),) + cube for cube in cubes1]
            + cubes_d
        )
        node_cache[key] = cover_node
        cache[key] = tuple(cubes)
        return cover_node, cubes

    cover_node, cubes = rec(lower.node, upper.node)
    names = mgr.var_names
    dict_cubes = [
        {names[level]: value for level, value in cube} for cube in cubes
    ]
    return dict_cubes, Function(mgr, cover_node)


def cube_to_function(mgr: BDD, cube: dict[str, bool]) -> Function:
    """Build the BDD of a cube given as ``{name: polarity}``."""
    return mgr.cube(cube)


def transfer(function: Function, target: BDD) -> Function:
    """Rebuild ``function`` inside another manager, matching variables by name.

    Every variable in the source manager must be declared in ``target``,
    and the relative order of the shared variables must agree (the
    structural copy below preserves levels, so an order inversion would
    produce an unordered diagram).  Extra variables in ``target`` are
    simply unused.  This is the primitive behind batch decomposition over
    a single shared manager.
    """
    src = function.mgr
    if target is src:
        return function
    level_map: dict[int, int] = {}
    for name in src.var_names:
        try:
            level_map[src.level_of(name)] = target.level_of(name)
        except KeyError:
            raise ValueError(
                f"target manager does not declare variable {name!r}"
            ) from None
    mapped = [level_map[level] for level in sorted(level_map)]
    if mapped != sorted(mapped):
        raise ValueError(
            "variable orders of source and target managers are incompatible"
        )

    cache: dict[int, int] = {0: 0, 1: 1}

    def rec(node: int) -> int:
        cached = cache.get(node)
        if cached is not None:
            return cached
        result = target._mk(
            level_map[src._level[node]],
            rec(src._low[node]),
            rec(src._high[node]),
        )
        cache[node] = result
        return result

    return Function(target, rec(function.node))


def count_nodes_dag(functions: list[Function]) -> int:
    """Number of distinct BDD nodes used by a set of functions (shared DAG)."""
    if not functions:
        return 0
    mgr = functions[0].mgr
    seen: set[int] = set()
    stack = [f.node for f in functions]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node > 1:
            stack.append(mgr._low[node])
            stack.append(mgr._high[node])
    return len(seen)


__all__ = [
    "isop",
    "cube_to_function",
    "count_nodes_dag",
    "transfer",
    "TERMINAL_LEVEL",
]
