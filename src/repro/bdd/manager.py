"""ROBDD node manager and function handles.

The design follows the classic Brace–Rudell–Bryant construction:

* nodes live in parallel arrays (``level``, ``low``, ``high``) indexed by
  integer ids; ids ``0`` and ``1`` are the constant nodes;
* a *unique table* maps ``(level, low, high)`` to the node id, enforcing
  canonicity (two equal functions always share one node);
* all Boolean connectives reduce to the ternary ``ite`` operator with a
  computed-table cache.

Variable order is the order of :meth:`BDD.add_var` calls.  There is no
dynamic reordering — benchmark functions in this reproduction use their
natural variable order, as the paper's flow does.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

#: Level assigned to the two constant nodes; larger than any variable level.
TERMINAL_LEVEL = 1 << 30


class BDD:
    """Manager owning the unique table and operation caches."""

    def __init__(self, var_names: Iterable[str] = ()) -> None:
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # Parallel node arrays.  Nodes 0 / 1 are the constants.
        self._level: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def var_names(self) -> tuple[str, ...]:
        """Declared variable names, in BDD order (index 0 on top)."""
        return tuple(self._var_names)

    @property
    def n_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def add_var(self, name: str) -> "Function":
        """Declare a new variable below all existing ones and return it."""
        if name in self._var_index:
            raise ValueError(f"variable {name!r} already declared")
        index = len(self._var_names)
        self._var_names.append(name)
        self._var_index[name] = index
        return Function(self, self._mk(index, 0, 1))

    def var(self, name: str) -> "Function":
        """Return the projection function of a declared variable."""
        return Function(self, self._mk(self._var_index[name], 0, 1))

    def var_at(self, index: int) -> "Function":
        """Return the projection function of the variable at ``index``."""
        return Function(self, self._mk(index, 0, 1))

    def level_of(self, name: str) -> int:
        """Return the BDD level (order position) of variable ``name``."""
        return self._var_index[name]

    # ------------------------------------------------------------------
    # Constants and cubes
    # ------------------------------------------------------------------
    @property
    def false(self) -> "Function":
        """The constant-0 function."""
        return Function(self, 0)

    @property
    def true(self) -> "Function":
        """The constant-1 function."""
        return Function(self, 1)

    def cube(self, assignment: dict[str, int | bool]) -> "Function":
        """Build the conjunction of literals described by ``assignment``.

        ``{"x1": 1, "x3": 0}`` yields the function ``x1 & ~x3``.
        """
        node = 1
        levels = sorted(
            ((self._var_index[name], bool(value)) for name, value in assignment.items()),
            reverse=True,
        )
        for level, value in levels:
            node = self._mk(level, 0, node) if value else self._mk(level, node, 0)
        return Function(self, node)

    def minterm(self, minterm_index: int) -> "Function":
        """Build the single-minterm function for ``minterm_index``.

        Variable 0 is the most significant bit of the index (library-wide
        convention, see :mod:`repro.utils.bitops`).
        """
        n = self.n_vars
        node = 1
        for level in range(n - 1, -1, -1):
            bit = (minterm_index >> (n - 1 - level)) & 1
            node = self._mk(level, 0, node) if bit else self._mk(level, node, 0)
        return Function(self, node)

    # ------------------------------------------------------------------
    # Core node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._branches(f, level)
        g0, g1 = self._branches(g, level)
        h0, h1 = self._branches(h, level)
        result = self._mk(level, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _branches(self, node: int, level: int) -> tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    # Derived connectives -------------------------------------------------
    def _not(self, u: int) -> int:
        return self._ite(u, 0, 1)

    def _and(self, u: int, v: int) -> int:
        return self._ite(u, v, 0)

    def _or(self, u: int, v: int) -> int:
        return self._ite(u, 1, v)

    def _xor(self, u: int, v: int) -> int:
        return self._ite(u, self._not(v), v)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total number of live nodes in the manager (constants included)."""
        return len(self._level)

    def size(self, function: "Function") -> int:
        """Number of nodes reachable from ``function`` (constants included)."""
        seen: set[int] = set()
        stack = [function.node]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > 1:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def clear_caches(self) -> None:
        """Drop the operation caches (unique table is kept)."""
        self._ite_cache.clear()

    # ------------------------------------------------------------------
    # Quantification / substitution
    # ------------------------------------------------------------------
    def _cofactor(self, u: int, level: int, value: int) -> int:
        if self._level[u] > level:
            return u
        if self._level[u] == level:
            return self._high[u] if value else self._low[u]
        # Variable below the top of u: descend with a small memo.
        memo: dict[int, int] = {}

        def rec(node: int) -> int:
            if self._level[node] > level:
                return node
            if self._level[node] == level:
                return self._high[node] if value else self._low[node]
            cached = memo.get(node)
            if cached is not None:
                return cached
            result = self._mk(
                self._level[node], rec(self._low[node]), rec(self._high[node])
            )
            memo[node] = result
            return result

        return rec(u)

    def _restrict(self, u: int, assignment: dict[int, int]) -> int:
        if not assignment:
            return u
        memo: dict[int, int] = {}

        def rec(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level[node]
            if level in assignment:
                result = rec(self._high[node] if assignment[level] else self._low[node])
            else:
                result = self._mk(level, rec(self._low[node]), rec(self._high[node]))
            memo[node] = result
            return result

        return rec(u)

    def _exists(self, u: int, levels: frozenset[int]) -> int:
        memo: dict[int, int] = {}

        def rec(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level[node]
            low = rec(self._low[node])
            high = rec(self._high[node])
            if level in levels:
                result = self._or(low, high)
            else:
                result = self._mk(level, low, high)
            memo[node] = result
            return result

        return rec(u)

    def _compose(self, u: int, level: int, v: int) -> int:
        memo: dict[int, int] = {}

        def rec(node: int) -> int:
            if self._level[node] > level:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            node_level = self._level[node]
            if node_level == level:
                result = self._ite(v, self._high[node], self._low[node])
            else:
                result = self._ite(
                    self._mk(node_level, 0, 1),
                    rec(self._high[node]),
                    rec(self._low[node]),
                )
            memo[node] = result
            return result

        return rec(u)

    # ------------------------------------------------------------------
    # Counting and enumeration
    # ------------------------------------------------------------------
    def _satcount(self, u: int) -> int:
        n = self.n_vars
        memo: dict[int, int] = {}

        def effective_level(node: int) -> int:
            level = self._level[node]
            return n if level == TERMINAL_LEVEL else level

        def rec(node: int) -> int:
            # Number of satisfying assignments of variables at levels
            # >= effective_level(node).
            if node == 0:
                return 0
            if node == 1:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level[node]
            low, high = self._low[node], self._high[node]
            count = rec(low) << (effective_level(low) - level - 1)
            count += rec(high) << (effective_level(high) - level - 1)
            memo[node] = count
            return count

        return rec(u) << effective_level(u)

    def _iter_minterms(self, u: int) -> Iterator[int]:
        n = self.n_vars

        def rec(node: int, level: int, prefix: int) -> Iterator[int]:
            if node == 0:
                return
            if level == n:
                yield prefix
                return
            node_level = self._level[node]
            if node_level > level:
                # Free variable: expand both branches.
                yield from rec(node, level + 1, prefix << 1)
                yield from rec(node, level + 1, (prefix << 1) | 1)
            else:
                yield from rec(self._low[node], level + 1, prefix << 1)
                yield from rec(self._high[node], level + 1, (prefix << 1) | 1)

        return rec(u, 0, 0)

    def _support(self, u: int) -> set[int]:
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return levels

    def _eval(self, u: int, minterm_index: int) -> bool:
        n = self.n_vars
        node = u
        while node > 1:
            level = self._level[node]
            bit = (minterm_index >> (n - 1 - level)) & 1
            node = self._high[node] if bit else self._low[node]
        return node == 1


class Function:
    """Handle to a BDD node, with Boolean operator overloading.

    Handles compare equal iff they denote the same function (canonicity of
    the ROBDD guarantees this is a structural identity check).  The set
    view of a function — its on-set of minterms — supports ``&``, ``|``,
    ``^``, ``~``, and ``-`` (set difference), plus ``<=`` for implication
    (subset) tests.
    """

    __slots__ = ("mgr", "node")

    def __init__(self, mgr: BDD, node: int) -> None:
        self.mgr = mgr
        self.node = node

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and other.mgr is self.mgr
            and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.mgr), self.node))

    def __repr__(self) -> str:
        return f"<Function node={self.node} nodes={self.mgr.size(self)}>"

    # -- constants ----------------------------------------------------------
    @property
    def is_false(self) -> bool:
        """True iff this is the constant-0 function."""
        return self.node == 0

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-1 function."""
        return self.node == 1

    # -- connectives --------------------------------------------------------
    def _wrap(self, node: int) -> "Function":
        return Function(self.mgr, node)

    def _node_of(self, other: "Function | int | bool") -> int:
        if isinstance(other, Function):
            if other.mgr is not self.mgr:
                raise ValueError("mixing functions from different managers")
            return other.node
        return 1 if other else 0

    def __invert__(self) -> "Function":
        return self._wrap(self.mgr._not(self.node))

    def __and__(self, other: "Function | int | bool") -> "Function":
        return self._wrap(self.mgr._and(self.node, self._node_of(other)))

    __rand__ = __and__

    def __or__(self, other: "Function | int | bool") -> "Function":
        return self._wrap(self.mgr._or(self.node, self._node_of(other)))

    __ror__ = __or__

    def __xor__(self, other: "Function | int | bool") -> "Function":
        return self._wrap(self.mgr._xor(self.node, self._node_of(other)))

    __rxor__ = __xor__

    def __sub__(self, other: "Function | int | bool") -> "Function":
        """Set difference: ``f - g`` is ``f & ~g``."""
        return self._wrap(
            self.mgr._and(self.node, self.mgr._not(self._node_of(other)))
        )

    def implies(self, other: "Function") -> "Function":
        """The function ``~self | other``."""
        return ~self | other

    def equiv(self, other: "Function") -> "Function":
        """The function ``self XNOR other``."""
        return ~(self ^ other)

    def ite(self, when_true: "Function", when_false: "Function") -> "Function":
        """If-then-else with ``self`` as the condition."""
        return self._wrap(
            self.mgr._ite(self.node, self._node_of(when_true), self._node_of(when_false))
        )

    # -- ordering as sets ----------------------------------------------------
    def __le__(self, other: "Function") -> bool:
        """Subset test: True iff ``self`` implies ``other`` everywhere."""
        return (self - other).is_false

    def __ge__(self, other: "Function") -> bool:
        return (other - self).is_false

    def __lt__(self, other: "Function") -> bool:
        return self <= other and self != other

    def __gt__(self, other: "Function") -> bool:
        return self >= other and self != other

    def disjoint(self, other: "Function") -> bool:
        """True iff the two on-sets do not intersect."""
        return (self & other).is_false

    # -- structure -------------------------------------------------------------
    def support(self) -> tuple[str, ...]:
        """Names of the variables the function actually depends on."""
        names = self.mgr.var_names
        return tuple(names[level] for level in sorted(self.mgr._support(self.node)))

    def size(self) -> int:
        """Number of BDD nodes of this function."""
        return self.mgr.size(self)

    # -- evaluation / counting ---------------------------------------------------
    def __call__(self, minterm_index: int) -> bool:
        """Evaluate on a minterm index (variable 0 = most significant bit)."""
        return self.mgr._eval(self.node, minterm_index)

    def evaluate(self, assignment: dict[str, int | bool]) -> bool:
        """Evaluate on a full variable assignment given by name."""
        index = 0
        for name in self.mgr.var_names:
            index = (index << 1) | (1 if assignment[name] else 0)
        return self(index)

    def satcount(self) -> int:
        """Number of on-set minterms over all declared variables."""
        return self.mgr._satcount(self.node)

    def minterms(self) -> Iterator[int]:
        """Iterate on-set minterm indices in increasing order."""
        return self.mgr._iter_minterms(self.node)

    # -- cofactors / quantifiers ----------------------------------------------
    def cofactor(self, name: str, value: int | bool) -> "Function":
        """Shannon cofactor with respect to one variable."""
        return self._wrap(
            self.mgr._cofactor(self.node, self.mgr.level_of(name), 1 if value else 0)
        )

    def restrict(self, assignment: dict[str, int | bool]) -> "Function":
        """Simultaneous cofactor for several variables."""
        levels = {
            self.mgr.level_of(name): (1 if value else 0)
            for name, value in assignment.items()
        }
        return self._wrap(self.mgr._restrict(self.node, levels))

    def exists(self, names: Iterable[str]) -> "Function":
        """Existential quantification over ``names``."""
        levels = frozenset(self.mgr.level_of(name) for name in names)
        return self._wrap(self.mgr._exists(self.node, levels))

    def forall(self, names: Iterable[str]) -> "Function":
        """Universal quantification over ``names``."""
        return ~((~self).exists(names))

    def compose(self, name: str, replacement: "Function") -> "Function":
        """Substitute ``replacement`` for variable ``name``."""
        return self._wrap(
            self.mgr._compose(self.node, self.mgr.level_of(name), replacement.node)
        )
